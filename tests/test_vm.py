"""Engine equivalence: the register VM vs the reference tree-walker.

The VM must be observationally identical to the reference interpreter:
same return values, same memory contents, and **count-identical** per-block
profiles (the source of Figure 17/18 and Table 3), on every suite workload
and on targeted unit programs exercising phi-edge moves, GEP/pointer
arithmetic and native call dispatch in the bytecode compiler.
"""

import numpy as np
import pytest

from repro.errors import InterpreterError
from repro.frontend import compile_c
from repro.ir import parse_module
from repro.passes import optimize
from repro.runtime import (
    Interpreter,
    VirtualMachine,
    compile_workload,
    outputs_match,
    run_accelerated,
    run_original,
)
from repro.runtime.bytecode import sequence_moves
from repro.runtime.runner import _bind_arguments, new_engine
from repro.workloads import all_workloads, get_workload

WORKLOADS = [w.name for w in all_workloads()]

ENGINE_CLASSES = {"reference": Interpreter, "vm": VirtualMachine}


@pytest.fixture(scope="module")
def compiled_suite():
    """One compile+detect pass per workload, shared across tests."""
    cache = {}

    def get(name):
        if name not in cache:
            w = get_workload(name)
            cache[name] = (w, compile_workload(name, w.source))
        return cache[name]
    return get


def _execute(engine_cls, compiled, workload):
    engine = engine_cls(compiled.module)
    args, buffers = _bind_arguments(engine, compiled.module, workload.entry,
                                    workload.make_inputs(1))
    value = engine.call(workload.entry, args)
    for name, buffer in engine.globals.items():
        buffers.setdefault(name, buffer)
    return value, buffers, engine.profile


@pytest.mark.parametrize("name", WORKLOADS)
def test_vm_equivalent_on_suite(name, compiled_suite):
    """Outputs equal AND per-block dynamic counts identical, per workload."""
    workload, compiled = compiled_suite(name)
    ref_value, ref_bufs, ref_prof = _execute(Interpreter, compiled, workload)
    vm_value, vm_bufs, vm_prof = _execute(VirtualMachine, compiled, workload)
    if ref_value is None:
        assert vm_value is None
    else:
        assert np.allclose(ref_value, vm_value, equal_nan=True), name
    assert set(ref_bufs) == set(vm_bufs)
    for bname, buffer in ref_bufs.items():
        np.testing.assert_allclose(
            buffer.data, vm_bufs[bname].data, rtol=1e-12, atol=0,
            err_msg=f"{name}:{bname}")
    # Count identity, block by block (same module → same block ids).
    assert vm_prof.block_counts == ref_prof.block_counts, name
    assert vm_prof.block_sizes == ref_prof.block_sizes, name
    assert vm_prof.opcode_counts() == ref_prof.opcode_counts(), name


def test_cost_model_inputs_engine_independent(compiled_suite):
    """Simulated sequential time must not depend on profile dict order."""
    workload, compiled = compiled_suite("CG")
    ref = run_original(compiled, workload.entry, workload.make_inputs(1),
                       engine="reference")
    vm = run_original(compiled, workload.entry, workload.make_inputs(1),
                      engine="vm")
    assert ref.coverage == vm.coverage
    assert ref.sequential_seconds == vm.sequential_seconds


def test_accelerated_run_identical_across_engines():
    """API call-outs (OP_CALL_API) produce identical results and stats."""
    w = get_workload("spmv")
    ref = run_accelerated(compile_workload("spmv", w.source), w.entry,
                          w.make_inputs(1), engine="reference")
    vm = run_accelerated(compile_workload("spmv", w.source), w.entry,
                         w.make_inputs(1), engine="vm")
    assert outputs_match(ref, vm)
    assert ref.total_instructions == vm.total_instructions
    assert ([s.stats for s in ref.api_runtime.all_sites()]
            == [s.stats for s in vm.api_runtime.all_sites()])


def test_unknown_engine_rejected():
    w = get_workload("spmv")
    compiled = compile_workload("spmv", w.source)
    with pytest.raises(ValueError):
        run_original(compiled, w.entry, w.make_inputs(1), engine="bogus")
    assert isinstance(new_engine(compiled.module, None), VirtualMachine)


# ---------------------------------------------------------------------------
# Bytecode compiler units
# ---------------------------------------------------------------------------

def vm_for(src):
    m = compile_c(src)
    optimize(m)
    return m, VirtualMachine(m)


class TestPhiEdgeMoves:
    def test_swap_cycle_is_lost_copy_safe(self):
        # Two phis swapping each iteration form a move cycle on the back
        # edge; sequencing must go through a scratch slot.
        text = """
define i32 @swap(i32 %n) {
entry:
  br label %loop
loop:
  %a = phi i32 [ 1, %entry ], [ %b, %loop ]
  %b = phi i32 [ 2, %entry ], [ %a, %loop ]
  %i = phi i32 [ 0, %entry ], [ %next, %loop ]
  %next = add i32 %i, 1
  %c = icmp slt i32 %next, %n
  br i1 %c, label %loop, label %done
done:
  ret i32 %a
}
"""
        m = parse_module(text)
        assert VirtualMachine(m).call("swap", [3]) == 1
        assert VirtualMachine(m).call("swap", [2]) == 2
        assert VirtualMachine(m).call("swap", [3]) == \
            Interpreter(m).call("swap", [3])

    def test_sequence_moves_breaks_cycles(self):
        temp = [99]
        moves = sequence_moves([(0, 1), (1, 0)], lambda: temp[0])
        # Simulate: regs 0,1 = 'a','b'; swap must yield 'b','a'.
        regs = {0: "a", 1: "b", 99: None}
        for d, s in moves:
            regs[d] = regs[s]
        assert (regs[0], regs[1]) == ("b", "a")

    def test_sequence_moves_orders_chains(self):
        # 0<-1, 1<-2 must read 1 before overwriting it.
        moves = sequence_moves([(1, 2), (0, 1)],
                               lambda: pytest.fail("no temp needed"))
        regs = {0: "x", 1: "y", 2: "z"}
        for d, s in moves:
            regs[d] = regs[s]
        assert (regs[0], regs[1]) == ("y", "z")

    def test_self_moves_dropped(self):
        assert sequence_moves([(3, 3)], lambda: 0) == ()


class TestGepAndPointers:
    def test_nested_global_arrays(self):
        m, vm = vm_for("""
double g[3][4];
double f(int i, int j) {
  g[i][j] = 7.5;
  return g[i][j];
}
""")
        assert vm.call("f", [2, 3]) == 7.5
        assert vm.globals["g"].data[2 * 4 + 3] == 7.5

    def test_pointer_argument_arithmetic(self):
        src = """
double f(double *a, int n) {
  double s = 0.0;
  for (int i = 1; i < n; i++) s += a[i - 1] * a[i];
  return s;
}
"""
        m, vm = vm_for(src)
        m2 = compile_c(src)
        optimize(m2)
        it = Interpreter(m2)
        from repro.runtime import Buffer, Pointer
        data = np.arange(6.0)
        args_vm = [Pointer(Buffer.from_numpy("a", data.copy()), 0), 6]
        args_it = [Pointer(Buffer.from_numpy("a", data.copy()), 0), 6]
        assert vm.call("f", args_vm) == it.call("f", args_it)

    def test_alloca_array_locals(self):
        m, vm = vm_for("""
int f() {
  int a[8];
  for (int i = 0; i < 8; i++) a[i] = i * i;
  return a[5];
}
""")
        assert vm.call("f", []) == 25

    def test_out_of_bounds_raises_interpreter_error(self):
        m, vm = vm_for("""
double g[4];
double f(int i) { return g[i]; }
""")
        with pytest.raises(InterpreterError):
            vm.call("f", [100])


class TestNativeDispatch:
    def test_math_intrinsics(self):
        m, vm = vm_for("""
double f(double x) { return sqrt(x) + pow(x, 2.0) + fabs(0.0 - x); }
""")
        assert vm.call("f", [4.0]) == pytest.approx(2.0 + 16.0 + 4.0)

    def test_min_max_abs(self):
        m, vm = vm_for("int f(int a, int b) { return max(a, b) - min(a, b) + abs(0 - a); }")
        assert vm.call("f", [3, 7]) == 7 - 3 + 3

    def test_rand_matches_reference_engine(self):
        src = "int f() { int s = 0; for (int i = 0; i < 5; i++) s += rand() % 100; return s; }"
        m, vm = vm_for(src)
        m2 = compile_c(src)
        optimize(m2)
        assert vm.call("f", []) == Interpreter(m2).call("f", [])

    def test_recursion(self):
        m, vm = vm_for("""
int fib(int n) {
  if (n < 2) return n;
  return fib(n-1) + fib(n-2);
}
""")
        assert vm.call("fib", [10]) == 55

    def test_api_call_without_runtime_raises(self):
        text = """
declare double @repro.api.call0(double)

define double @f(double %x) {
entry:
  %r = call double @repro.api.call0(double %x)
  ret double %r
}
"""
        m = parse_module(text)
        with pytest.raises(InterpreterError):
            VirtualMachine(m).call("f", [1.0])


class TestVmRuntimeContract:
    def test_step_budget(self):
        m = compile_c("void f() { while (1) { } }")
        optimize(m)
        vm = VirtualMachine(m, max_steps=1000)
        with pytest.raises(InterpreterError):
            vm.call("f", [])

    def test_division_by_zero_raises(self):
        m, vm = vm_for("int f(int a) { return 10 / a; }")
        with pytest.raises(InterpreterError):
            vm.call("f", [0])

    def test_float_division_by_zero_is_inf(self):
        m, vm = vm_for("double f(double a) { return 1.0 / a; }")
        assert vm.call("f", [0.0]) == float("inf")

    def test_bind_global(self):
        m, vm = vm_for("""
double g[4];
double f() { return g[1] + g[2]; }
""")
        vm.bind_global("g", np.array([1.0, 2.0, 3.0, 4.0]))
        assert vm.call("f", []) == 5.0

    def test_profile_counts(self):
        m, vm = vm_for("""
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += i;
  return s;
}
""")
        vm.call("f", [10])
        counts = vm.profile.opcode_counts()
        assert counts["phi"] >= 20
        assert counts["icmp"] >= 10
        assert vm.profile.total_instructions() > 40

    def test_cannot_call_declaration(self):
        m = parse_module("declare double @ext(double)")
        with pytest.raises(InterpreterError):
            VirtualMachine(m).call("ext", [1.0])
