"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import DominatorTree
from repro.backends.sparse import csr_spmv, random_csr
from repro.frontend import compile_c
from repro.ir import ConstantInt, I32, parse_module, print_module, verify_module
from repro.passes import optimize
from repro.runtime import Interpreter
from repro.transform.kernels import (
    KBin,
    KConst,
    KParam,
    KSelect,
    evaluate,
)

# ---------------------------------------------------------------------------
# Expression compilation: compile random integer expressions to C, run both
# in Python and through the whole compiler+interpreter, compare.
# ---------------------------------------------------------------------------

_int_expr = st.recursive(
    st.one_of(
        st.integers(min_value=-50, max_value=50).map(lambda v: ("const", v)),
        st.sampled_from([("var", "a"), ("var", "b")]),
    ),
    lambda children: st.tuples(
        st.sampled_from(["+", "-", "*"]), children, children
    ).map(lambda t: ("bin", *t)),
    max_leaves=12,
)


def _to_c(node) -> str:
    kind = node[0]
    if kind == "const":
        return str(node[1])
    if kind == "var":
        return node[1]
    _, op, lhs, rhs = node
    return f"({_to_c(lhs)} {op} {_to_c(rhs)})"


def _to_py(node, env):
    kind = node[0]
    if kind == "const":
        return node[1]
    if kind == "var":
        return env[node[1]]
    _, op, lhs, rhs = node
    a, b = _to_py(lhs, env), _to_py(rhs, env)
    return {"+": a + b, "-": a - b, "*": a * b}[op]


@settings(max_examples=40, deadline=None)
@given(_int_expr, st.integers(-100, 100), st.integers(-100, 100))
def test_expression_compilation_matches_python(expr, a, b):
    expected = _to_py(expr, {"a": a, "b": b})
    if abs(expected) >= 2**31:
        return  # stays within i32 in this harness
    src = f"int f(int a, int b) {{ return {_to_c(expr)}; }}"
    module = compile_c(src)
    optimize(module)
    assert Interpreter(module).call("f", [a, b]) == expected


# ---------------------------------------------------------------------------
# IR printer/parser round trip over generated straight-line code.
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
                min_size=1, max_size=10),
       st.integers(-10, 10))
def test_ir_roundtrip(opcodes, seed):
    lines = ["define i32 @f(i32 %a, i32 %b) {", "entry:"]
    prev = "%a"
    for i, op in enumerate(opcodes):
        operand = "%b" if i % 2 == 0 else str(seed)
        lines.append(f"  %v{i} = {op} i32 {prev}, {operand}")
        prev = f"%v{i}"
    lines.append(f"  ret i32 {prev}")
    lines.append("}")
    text = "\n".join(lines)
    m1 = parse_module(text)
    verify_module(m1)
    printed = print_module(m1)
    m2 = parse_module(printed)
    verify_module(m2)
    assert print_module(m2) == printed


# ---------------------------------------------------------------------------
# Dominator tree vs naive reachability definition.
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                min_size=1, max_size=14))
def test_dominators_match_naive(edges):
    """a dominates b iff removing a disconnects b from the entry."""
    n = 8
    succ = {i: sorted({d for s, d in edges if s == i and d != i})
            for i in range(n)}

    # Build an IR function with this block graph (entry = block 0).
    lines = ["define void @f(i1 %c) {"]
    for i in range(n):
        lines.append(f"b{i}:")
        targets = succ[i]
        if not targets:
            lines.append("  ret void")
        elif len(targets) == 1:
            lines.append(f"  br label %b{targets[0]}")
        else:
            lines.append(f"  br i1 %c, label %b{targets[0]}, "
                         f"label %b{targets[1]}")
    lines.append("}")
    f = parse_module("\n".join(lines)).get_function("f")
    tree = DominatorTree.block_level(f)
    blocks = {b.name: b for b in f.blocks}

    def reachable(avoid):
        seen = set()
        stack = [0]
        while stack:
            node = stack.pop()
            if node in seen or node == avoid:
                continue
            seen.add(node)
            stack.extend(t for t in succ[node][:2])
        return seen

    reach_all = reachable(avoid=None if False else -1)
    for b in range(n):
        if b not in reach_all:
            continue
        for a in range(n):
            if a not in reach_all:
                continue
            naive = a == b or (b not in reachable(avoid=a))
            fast = tree.dominates(blocks[f"b{a}"], blocks[f"b{b}"])
            assert fast == naive, (a, b)


# ---------------------------------------------------------------------------
# CSR SPMV against dense matvec.
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.integers(1, 20), st.integers(1, 6), st.integers(0, 1000))
def test_csr_spmv_matches_dense(rows, nnz_per_row, seed):
    rp, ci, vals = random_csr(rows, rows, nnz_per_row, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.uniform(-1, 1, rows)
    dense = np.zeros((rows, rows))
    for r in range(rows):
        for k in range(rp[r], rp[r + 1]):
            dense[r, ci[k]] += vals[k]
    np.testing.assert_allclose(
        csr_spmv(rp.astype(np.int64), ci, vals, x), dense @ x, atol=1e-10)


# ---------------------------------------------------------------------------
# Kernel expression evaluator: scalar vs vectorised agreement.
# ---------------------------------------------------------------------------

_kexpr = st.recursive(
    st.one_of(
        st.floats(-10, 10, allow_nan=False).map(KConst),
        st.sampled_from([KParam(0), KParam(1)]),
    ),
    lambda children: st.one_of(
        st.tuples(st.sampled_from(["fadd", "fsub", "fmul"]), children,
                  children).map(lambda t: KBin(*t)),
    ),
    max_leaves=10,
)


@settings(max_examples=40, deadline=None)
@given(_kexpr, st.lists(st.floats(-5, 5, allow_nan=False),
                        min_size=4, max_size=4))
def test_kernel_eval_scalar_matches_vector(expr, values):
    xs = np.array(values[:2])
    ys = np.array(values[2:])
    vector = np.broadcast_to(np.asarray(evaluate(expr, [xs, ys], [])), (2,))
    for i in range(2):
        scalar = evaluate(expr, [xs[i], ys[i]], [])
        assert math.isclose(float(vector[i]), float(scalar),
                            rel_tol=1e-12, abs_tol=1e-12)


# ---------------------------------------------------------------------------
# Reduction detection is stable across loop bounds and array contents.
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(st.integers(1, 4))
def test_reduction_detection_parametric(width):
    from repro.idioms import detect_idioms

    terms = " + ".join(f"x[i] * {k}.0" for k in range(1, width + 1))
    src = f"""
double f(int n, double *x) {{
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += {terms};
  return s;
}}
"""
    m = compile_c(src)
    optimize(m)
    assert detect_idioms(m).by_idiom() == {"Reduction": 1}
