"""End-to-end equivalence over the ten exploitable benchmarks.

For every benchmark the paper accelerates, the transformed program
(idioms replaced by API calls) must compute exactly what the original
does — the reproduction's strongest soundness check.
"""

import numpy as np
import pytest

from repro.runtime import (
    compile_workload,
    outputs_match,
    run_accelerated,
    run_original,
)
from repro.workloads import dominant_workloads, get_workload

DOMINANT = [w.name for w in dominant_workloads()]


@pytest.mark.parametrize("name", DOMINANT)
def test_accelerated_outputs_match_original(name):
    w = get_workload(name)
    original = run_original(compile_workload(name, w.source), w.entry,
                            w.make_inputs(1))
    accelerated = run_accelerated(compile_workload(name, w.source), w.entry,
                                  w.make_inputs(1))
    assert outputs_match(original, accelerated), name


@pytest.mark.parametrize("name", DOMINANT)
def test_transformation_removes_idiom_code(name):
    """The replaced loops disappear: interpreted work collapses."""
    w = get_workload(name)
    original = run_original(compile_workload(name, w.source), w.entry,
                            w.make_inputs(1))
    accelerated = run_accelerated(compile_workload(name, w.source), w.entry,
                                  w.make_inputs(1))
    # The accelerated run must interpret strictly fewer instructions in
    # proportion to the idioms' coverage.
    assert accelerated.total_instructions < original.total_instructions
    residual = accelerated.total_instructions / original.total_instructions
    assert residual < 1.05 * (1.0 - original.coverage) + 0.05, name


@pytest.mark.parametrize("name", DOMINANT)
def test_every_match_yields_a_call_site(name):
    w = get_workload(name)
    compiled = compile_workload(name, w.source)
    expected_sites = compiled.report.total()
    accelerated = run_accelerated(compile_workload(name, w.source), w.entry,
                                  w.make_inputs(1))
    assert len(accelerated.api_runtime.all_sites()) == expected_sites


def test_site_statistics_accumulate():
    """Dynamic stats feed the cost model: nonzero after execution."""
    w = get_workload("spmv")
    accelerated = run_accelerated(compile_workload("spmv", w.source),
                                  w.entry, w.make_inputs(1))
    site = accelerated.api_runtime.all_sites()[0]
    assert site.stats["calls"] == 3          # reps=3 outer repetitions
    assert site.stats["elements"] > 0
    assert site.stats["bytes"] > 0


def test_nondominant_workloads_still_detect_and_run():
    """The eleven low-coverage benchmarks execute and report correctly."""
    for w in [w for w in map(get_workload, ("BT", "FT", "bfs", "sad"))]:
        compiled = compile_workload(w.name, w.source)
        result = run_original(compiled, w.entry, w.make_inputs(1))
        assert result.total_instructions > 1000
        assert 0.0 <= result.coverage <= 0.5
