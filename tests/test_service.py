"""Tests for the serving layer: the LRU/generational byte-budgeted
store, the latency helpers, warm-detector residency, cross-module
``detect_many`` with in-flight dedupe, the in-process
:class:`DetectionService` (micro-batching, concurrent tenants), the TCP
daemon and its wire format, and the ``$REPRO_WORKERS`` harness default."""

import json
import os
import threading
import time

import pytest

from repro.cache import STORE_VERSION, ArtifactStore
from repro.errors import IDLError
from repro.experiments.timing import percentile, summarize_latencies
from repro.frontend import compile_c
from repro.idioms import (
    DetectionSession,
    IdiomDetector,
    InflightLedger,
    detect_idioms,
    report_fingerprint,
)
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.passes import optimize
from repro.service import (
    DetectionDaemon,
    DetectionService,
    ServiceClient,
    ServiceConfig,
    decode_report,
    encode_report,
    report_wire_fingerprint,
)

SRC = """
double dot(double* a, double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) { s = s + a[i] * b[i]; }
  return s;
}
void hist(int* bins, int* keys, int n) {
  for (int i = 0; i < n; i++) { bins[keys[i]] = bins[keys[i]] + 1; }
}
"""
#: The same module with one function edited (the per-tenant-edit shape).
SRC_EDITED = SRC.replace("0.0", "1.0")


def compiled(src=SRC, name="t"):
    module = compile_c(src, name)
    optimize(module)
    return module


def module_text(src=SRC, name="t"):
    return print_module(compiled(src, name))


# ---------------------------------------------------------------------------
# Store: byte budget, eviction policies, v1 migration
# ---------------------------------------------------------------------------

def put_sized(store, key, approx_bytes):
    store.put(key, {"kind": "t", "pad": "x" * approx_bytes})


class TestStoreBudget:
    def test_lru_evicts_oldest_and_respects_budget(self, tmp_path):
        store = ArtifactStore(str(tmp_path), budget_bytes=700)
        keys = [f"{i:x}{'0' * 15}" for i in range(5)]
        for i, key in enumerate(keys):
            put_sized(store, key, 150)
            time.sleep(0.01)
        assert store.total_bytes() <= 700
        assert store.stats.evictions > 0
        # The oldest keys are gone — and a clean miss, never an error.
        assert store.get(keys[0]) is None
        assert store.get(keys[-1]) is not None
        assert store.stats.bytes_stored == store.total_bytes()

    def test_budget_invariant_after_every_put(self, tmp_path):
        store = ArtifactStore(str(tmp_path), budget_bytes=500)
        for i in range(20):
            put_sized(store, f"{i:x}{'a' * 15}", 120)
            assert store.total_bytes() <= 500

    def test_access_refreshes_lru_rank(self, tmp_path):
        store = ArtifactStore(str(tmp_path), budget_bytes=1100)
        keys = [f"{i:x}{'b' * 15}" for i in range(4)]
        for key in keys:
            put_sized(store, key, 150)
            time.sleep(0.01)
        assert store.stats.evictions == 0
        # Touch the oldest; the evictions that follow must spare it.
        assert store.get(keys[0]) is not None
        time.sleep(0.01)
        put_sized(store, "f" * 16, 150)
        put_sized(store, "e" * 16, 150)
        assert store.stats.evictions > 0
        assert store.get(keys[0]) is not None
        assert store.get(keys[1]) is None

    def test_generational_evicts_never_read_first(self, tmp_path):
        store = ArtifactStore(str(tmp_path), budget_bytes=800,
                              eviction="generational")
        old = "a" * 16
        put_sized(store, old, 150)
        assert store.get(old) is not None  # tenured: read after write
        nursery = [f"{i:x}{'c' * 15}" for i in range(3)]
        for key in nursery:
            time.sleep(0.01)
            put_sized(store, key, 150)
        put_sized(store, "d" * 16, 150)
        # The never-read nursery entries went first, although the
        # tenured entry is older by write time.
        assert store.get(old) is not None
        assert store.stats.evictions > 0

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(str(tmp_path), eviction="fifo")

    def test_v1_entry_is_hit_and_migrated(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = "ab" * 8
        store.put(key, {"kind": "t", "x": 1})
        path = store._path(key)
        with open(path) as fh:
            payload = json.load(fh)
        payload["version"] = 1
        payload.pop("meta", None)
        with open(path, "w") as fh:
            json.dump(payload, fh)
        fresh = ArtifactStore(str(tmp_path))
        got = fresh.get(key)
        assert got is not None and got["x"] == 1
        with open(path) as fh:
            migrated = json.load(fh)
        assert migrated["version"] == STORE_VERSION
        assert "meta" in migrated

    def test_index_survives_restart(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        for i in range(3):
            put_sized(store, f"{i:x}{'d' * 15}", 100)
        # A fresh instance rebuilds the index from a stat walk: it sees
        # the pre-existing entries and evicts them to meet its budget.
        fresh = ArtifactStore(str(tmp_path), budget_bytes=1)
        put_sized(fresh, "e" * 16, 100)
        assert fresh.total_bytes() <= 1
        assert fresh.stats.evictions >= 4


# ---------------------------------------------------------------------------
# Timing helpers
# ---------------------------------------------------------------------------

class TestLatencyHelpers:
    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 95) == pytest.approx(95.05)
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_summarize(self):
        summary = summarize_latencies([0.1, 0.2, 0.3, 0.4])
        assert summary["count"] == 4
        assert summary["mean_s"] == pytest.approx(0.25)
        assert summary["max_s"] == pytest.approx(0.4)
        assert summary["p50_s"] == pytest.approx(0.25)
        empty = summarize_latencies([])
        assert empty["count"] == 0 and empty["p95_s"] == 0.0


# ---------------------------------------------------------------------------
# Residency: warm detector, no per-request recompiles
# ---------------------------------------------------------------------------

class TestResidency:
    def test_repeated_detects_reuse_forest_and_store(self, tmp_path):
        module = compiled()
        detector = IdiomDetector(cache=str(tmp_path)).warmup()
        forest = detector.compiler.forest_for(
            tuple(detector.idioms), memo=True)
        baseline = detector.detect(module)
        fp = report_fingerprint(baseline, by_identity=False)
        for _ in range(3):
            session = DetectionSession(detector)
            report = session.detect(module)
            assert session.cache_misses == 0
            assert session.solved_functions == 0
            assert report_fingerprint(report, by_identity=False) == fp
            assert report.stats.as_dict() == baseline.stats.as_dict()
        # warmup() + detects never rebuilt the forest.
        assert detector.compiler.forest_for(
            tuple(detector.idioms), memo=True) is forest

    def test_warmup_is_idempotent(self):
        detector = IdiomDetector().warmup()
        forest = detector.compiler.forest_for(
            tuple(detector.idioms), memo=True)
        detector.warmup()
        assert detector.compiler.forest_for(
            tuple(detector.idioms), memo=True) is forest


# ---------------------------------------------------------------------------
# detect_many: cross-module fan-out with dedupe
# ---------------------------------------------------------------------------

class TestDetectMany:
    @pytest.mark.parametrize("workers,mode",
                             [(1, "thread"), (2, "thread"), (2, "process")])
    def test_identical_to_per_module_detect(self, workers, mode):
        modules = [compiled(name="a"), compiled(name="b"),
                   compiled(SRC_EDITED, name="c")]
        direct = [detect_idioms(compiled(src, name))
                  for src, name in ((SRC, "a"), (SRC, "b"),
                                    (SRC_EDITED, "c"))]
        session = DetectionSession(IdiomDetector(), workers=workers,
                                   mode=mode)
        reports = session.detect_many(modules)
        assert len(reports) == 3
        for got, want in zip(reports, direct):
            assert report_wire_fingerprint(got) == \
                report_wire_fingerprint(want)
            assert got.stats.as_dict() == want.stats.as_dict()
        # 6 functions requested; identical pairs solved once: dot+hist
        # solved for module a, replayed for b; c's edited dot solved,
        # its unchanged hist replayed.
        assert session.solved_functions == 3
        assert session.dedupe_hits == 3

    def test_dedupe_disabled_solves_everything(self):
        modules = [compiled(name="a"), compiled(name="b")]
        session = DetectionSession(IdiomDetector())
        session.detect_many(modules, dedupe=False)
        assert session.solved_functions == 4
        assert session.dedupe_hits == 0

    def test_store_serves_across_detect_many_calls(self, tmp_path):
        detector = IdiomDetector(cache=str(tmp_path))
        first = DetectionSession(detector)
        first.detect_many([compiled(name="a"),
                           compiled(SRC_EDITED, name="b")])
        assert first.solved_functions > 0
        second = DetectionSession(detector)
        reports = second.detect_many([compiled(name="a"),
                                      compiled(SRC_EDITED, name="b")])
        assert second.solved_functions == 0
        assert second.cache_hits == 4
        assert all(r.total() > 0 for r in reports)

    def test_concurrent_sessions_share_inflight(self):
        ledger = InflightLedger()
        detector = IdiomDetector().warmup()
        modules = [compiled(name="a"), compiled(name="b")]
        results: dict = {}

        def run(tag, module):
            session = DetectionSession(detector)
            results[tag] = (session,
                            session.detect_many([module],
                                                inflight=ledger))

        threads = [threading.Thread(target=run, args=(tag, module))
                   for tag, module in zip("ab", modules)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        (sa, ra), (sb, rb) = results["a"], results["b"]
        assert report_wire_fingerprint(ra[0]) == \
            report_wire_fingerprint(rb[0])
        # Every function was either solved once or replayed from the
        # other session's in-flight future — never solved twice AND
        # replayed (the accounting is exhaustive either way).
        solved = sa.solved_functions + sb.solved_functions
        replayed = sa.inflight_hits + sb.inflight_hits
        assert solved + replayed == 4
        assert solved >= 2
        # The ledger drains once fan-outs complete: publish pops.
        assert ledger.pending() == 0


class TestInflightLedger:
    def test_claim_publish_protocol(self):
        ledger = InflightLedger()
        owner, future = ledger.claim("k")
        assert owner
        again, same = ledger.claim("k")
        assert not again and same is future
        ledger.publish("k", {"x": 1})
        assert future.result(timeout=1) == {"x": 1}
        assert ledger.pending() == 0
        # Idempotent: the finally-backstop publish after the real one.
        ledger.publish("k", None)

    def test_waiter_blocks_until_publish(self):
        ledger = InflightLedger()
        _, future = ledger.claim("k")
        seen = []

        def wait():
            seen.append(future.result(timeout=5))

        thread = threading.Thread(target=wait)
        thread.start()
        ledger.publish("k", {"ok": True})
        thread.join(timeout=5)
        assert seen == [{"ok": True}]


# ---------------------------------------------------------------------------
# DetectionService: micro-batching, tenants, parse cache
# ---------------------------------------------------------------------------

class TestDetectionService:
    def test_concurrent_tenants_batched_and_identical(self, tmp_path):
        text = module_text()
        edited = module_text(SRC_EDITED, "t")
        want = report_wire_fingerprint(detect_idioms(parse_module(text)))
        want_edited = report_wire_fingerprint(
            detect_idioms(parse_module(edited)))
        config = ServiceConfig(cache_dir=str(tmp_path),
                               batch_window_s=0.25)
        with DetectionService(config) as service:
            futures = [service.submit(text, tenant=f"t{i}")
                       for i in range(4)]
            futures.append(service.submit(edited, tenant="editor"))
            results = [f.result(timeout=120) for f in futures]
            stats = service.stats()
        for result in results[:4]:
            assert report_wire_fingerprint(result.report) == want
        assert report_wire_fingerprint(results[4].report) == want_edited
        # One window caught all five requests.
        assert stats["batches"] == 1
        assert stats["requests"] == 5
        # Identical texts share one parsed module and one report object.
        assert results[0].report is results[1].report
        assert stats["module_dedupe_hits"] > 0
        # The edited module's unchanged function deduped against the
        # shared one inside the same fan-out.
        assert stats["batch_dedupe_hits"] >= 1
        assert stats["dedupe_ratio"] > 0.5
        assert stats["errors"] == 0
        assert stats["latency"]["count"] == 5

    def test_sequential_requests_separate_batches(self):
        text = module_text()
        config = ServiceConfig(batch_window_s=0.001)
        with DetectionService(config) as service:
            service.detect(text)
            service.detect(text)
            stats = service.stats()
        assert stats["batches"] == 2
        # Second request reuses the parsed module, but with no store
        # configured each batch re-solves: the batches are independent.
        assert stats["parse_cache"]["hits"] == 1
        assert stats["module_dedupe_hits"] == 0  # different batches
        assert stats["solved_functions"] == 4

    def test_store_survives_service_restart(self, tmp_path):
        text = module_text()
        config = ServiceConfig(cache_dir=str(tmp_path))
        with DetectionService(config) as service:
            service.detect(text)
        with DetectionService(config) as service:
            service.detect(text)
            stats = service.stats()
        assert stats["solved_functions"] == 0
        assert stats["store_hits"] == 2

    def test_submit_after_close_refused(self):
        service = DetectionService(ServiceConfig())
        service.start()
        service.close()
        with pytest.raises(IDLError):
            service.submit(module_text())

    def test_bad_source_type_rejected(self):
        with DetectionService(ServiceConfig()) as service:
            with pytest.raises(IDLError):
                service.submit(42)

    def test_eviction_under_tiny_budget_never_errors(self, tmp_path):
        config = ServiceConfig(cache_dir=str(tmp_path), budget_bytes=256)
        text = module_text()
        edited = module_text(SRC_EDITED, "t")
        want = report_wire_fingerprint(detect_idioms(parse_module(text)))
        with DetectionService(config) as service:
            for _ in range(3):
                result = service.detect(text)
                assert report_wire_fingerprint(result.report) == want
                service.detect(edited)
            stats = service.stats()
        assert stats["errors"] == 0
        assert stats["store"]["evictions"] > 0
        assert stats["store"]["bytes_stored"] <= 256


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------

class TestWire:
    def test_report_round_trip_is_json_safe_and_identical(self):
        text = module_text()
        module = parse_module(text)
        report = detect_idioms(module)
        payload = json.loads(json.dumps(encode_report(report)))
        decoded = decode_report(payload, module)
        # by_identity=False: decoding against the same module rebinds
        # instructions/arguments to the identical objects; constants are
        # rebuilt, which the structural value keys equate.
        assert report_fingerprint(decoded, by_identity=False) == \
            report_fingerprint(report, by_identity=False)
        assert decoded.stats.as_dict() == report.stats.as_dict()
        assert decoded.total() == report.total()
        # Shared per-match stats objects survive the round trip pooled.
        stats_ids = {id(m.stats) for m in decoded.matches
                     if m.stats is not None}
        want_ids = {id(m.stats) for m in report.matches
                    if m.stats is not None}
        assert len(stats_ids) == len(want_ids)

    def test_wire_fingerprint_is_cross_parse_stable(self):
        text = module_text()
        a = detect_idioms(parse_module(text))
        b = detect_idioms(parse_module(text))
        assert report_wire_fingerprint(a) == report_wire_fingerprint(b)
        edited = detect_idioms(parse_module(module_text(SRC_EDITED, "t")))
        assert report_wire_fingerprint(a) != report_wire_fingerprint(edited)


# ---------------------------------------------------------------------------
# Daemon over a real socket
# ---------------------------------------------------------------------------

class TestDaemon:
    def test_detect_stats_ping_shutdown(self):
        text = module_text()
        want = report_wire_fingerprint(detect_idioms(parse_module(text)))
        daemon = DetectionDaemon(port=0)
        thread = daemon.serve_in_thread()
        host, port = daemon.address
        try:
            with ServiceClient(host, port) as client:
                assert client.ping()
                report = client.detect_report(text, tenant="net")
                assert report_wire_fingerprint(report) == want
                stats = client.stats()
                assert stats["requests"] == 1
                assert client.shutdown()["shutting_down"]
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            daemon.server_close()
            daemon.service.close()

    def test_malformed_request_is_error_not_crash(self):
        daemon = DetectionDaemon(port=0)
        thread = daemon.serve_in_thread()
        host, port = daemon.address
        try:
            with ServiceClient(host, port) as client:
                with pytest.raises(IDLError):
                    client.request({"op": "detect"})  # no module field
                with pytest.raises(IDLError):
                    client.request({"op": "nonsense"})
                assert client.ping()  # connection still alive
        finally:
            daemon.shutdown()
            thread.join(timeout=10)
            daemon.server_close()
            daemon.service.close()


# ---------------------------------------------------------------------------
# Harness env defaults
# ---------------------------------------------------------------------------

class TestWorkersDefault:
    def test_repro_workers_env(self, monkeypatch):
        from repro.experiments.harness import default_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "zebra")
        assert default_workers() == 1
