"""Tests for the reliability layer: deterministic fault injection,
supervised detection sessions (retry, degradation, deadlines, crash
respawn), crash-safe concurrent cache writes, backend quarantine with
guaranteed fallback, and the JIT tier's fault containment."""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.backends.api import ApiRuntime
from repro.backends.registry import default_registry
from repro.cache import ArtifactStore
from repro.errors import InjectedFault, ReproError, SolveTimeout
from repro.frontend import compile_c
from repro.idioms import DetectionSession, IdiomDetector, report_fingerprint
from repro.idl.solver import SolverStats
from repro.passes import optimize
from repro.reliability import faults
from repro.reliability.faults import FaultPlan, FaultSpec, plan_from_spec
from repro.reliability.quarantine import Quarantine
from repro.reliability.supervisor import (
    FunctionOutcome,
    RetryPolicy,
    SessionOutcomes,
    Supervisor,
)
from repro.runtime.jit import JitVirtualMachine
from repro.runtime.runner import (
    _bind_arguments,
    compile_workload,
    outputs_match,
    run_original,
    run_transformed,
)
from repro.transform.replace import Transformer
from repro.workloads import all_workloads

SRC = """
double dot(int n, double *a, double *b) {
  double s = 0.0;
  for (int i = 0; i < n; i++) s += a[i] * b[i];
  return s;
}
double asum(int n, double *a) {
  double s = 0.0;
  for (int i = 0; i < n; i++) s += a[i];
  return s;
}
void histo(int n, double *x, double *q) {
  for (int i = 0; i < n; i++) {
    int k = (int) x[i];
    q[k] = q[k] + 1.0;
  }
}
"""


def compiled(src=SRC, name="m"):
    module = compile_c(src, name)
    optimize(module)
    return module


@pytest.fixture(autouse=True)
def _clean_plan():
    """No fault plan leaks into or out of any test."""
    faults.install_plan(None)
    yield
    faults.install_plan(None)


def fingerprint(report):
    return report_fingerprint(report, by_identity=False)


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_unknown_seam_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec(site="store.readd", kind="exception")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec(site="store.read", kind="explode")

    def test_occurrence_addressing(self):
        plan = FaultPlan([{"site": "worker.solve", "kind": "exception",
                           "at": [1]}])
        assert plan.fire("worker.solve", "f") is None
        with pytest.raises(InjectedFault):
            plan.fire("worker.solve", "g")
        assert plan.fire("worker.solve", "h") is None
        assert [e["occurrence"] for e in plan.fired] == [1]
        assert plan.fired[0]["key"] == "g"

    def test_counters_are_per_seam(self):
        plan = FaultPlan([{"site": "store.read", "kind": "exception",
                           "at": [0]}])
        assert plan.fire("store.write") is None  # other seam's counter
        with pytest.raises(InjectedFault):
            plan.fire("store.read")

    def test_key_filter(self):
        plan = FaultPlan([{"site": "worker.solve", "kind": "exception",
                           "at": [0, 1], "key": "target"}])
        assert plan.fire("worker.solve", "other") is None
        with pytest.raises(InjectedFault):
            plan.fire("worker.solve", "the_target_fn")

    def test_epoch_scoping(self):
        plan = FaultPlan([{"site": "worker.solve", "kind": "exception",
                           "at": [0, 1, 2], "epochs": [0]}])
        with pytest.raises(InjectedFault):
            plan.fire("worker.solve")
        plan.epoch = 1  # the supervisor bumps after a retry
        assert plan.fire("worker.solve") is None

    def test_empty_epochs_means_every_epoch(self):
        plan = FaultPlan([{"site": "worker.solve", "kind": "exception",
                           "at": [0, 1], "epochs": []}])
        plan.epoch = 7
        with pytest.raises(InjectedFault):
            plan.fire("worker.solve")

    def test_rate_is_seed_deterministic(self):
        def fired_pattern(seed):
            plan = FaultPlan([{"site": "store.read", "kind": "exception",
                               "at": [], "rate": 0.5}], seed=seed)
            out = []
            for _ in range(200):
                try:
                    plan.fire("store.read")
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        first, again = fired_pattern(3), fired_pattern(3)
        assert first == again
        assert 0 < sum(first) < 200
        assert fired_pattern(4) != first

    def test_torn_is_returned_not_raised(self):
        plan = FaultPlan([{"site": "store.write", "kind": "torn",
                           "at": [0]}])
        directive = plan.fire("store.write", "k")
        assert isinstance(directive, FaultSpec) and directive.kind == "torn"

    def test_hang_returns_after_sleeping(self):
        plan = FaultPlan([{"site": "worker.solve", "kind": "hang",
                           "at": [0], "seconds": 0.01}])
        assert plan.fire("worker.solve") is None
        assert plan.fired[0]["kind"] == "hang"

    def test_crash_degrades_to_exception_outside_worker(self):
        faults.mark_worker(False)
        plan = FaultPlan([{"site": "worker.solve", "kind": "crash",
                           "at": [0]}])
        with pytest.raises(InjectedFault, match="crash"):
            plan.fire("worker.solve")

    def test_spec_roundtrip(self, tmp_path):
        plan = FaultPlan([FaultSpec("store.read", "exception", at=(2,),
                                    key="ab", epochs=(0, 1))], seed=9)
        rebuilt = plan_from_spec(plan.as_spec())
        assert rebuilt.seed == 9
        assert rebuilt.specs[0] == plan.specs[0]
        rebuilt = plan_from_spec(json.dumps(plan.as_spec()))
        assert rebuilt.specs[0] == plan.specs[0]
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.as_spec()))
        rebuilt = plan_from_spec(f"@{path}")
        assert rebuilt.specs[0] == plan.specs[0]

    def test_maybe_fire_is_noop_without_plan(self):
        faults.install_plan(None)
        assert faults.maybe_fire("store.read", "k") is None

    def test_install_and_clear(self):
        faults.install_plan({"specs": [{"site": "store.read",
                                        "kind": "exception", "at": [0]}]})
        with pytest.raises(InjectedFault):
            faults.maybe_fire("store.read")
        faults.install_plan(None)
        assert faults.maybe_fire("store.read") is None


# ---------------------------------------------------------------------------
# Supervisor ladder
# ---------------------------------------------------------------------------

class Fn:
    def __init__(self, name):
        self.name = name


def batch_all(functions):
    return [list(functions)]


class TestSupervisor:
    def test_serial_retries_transient(self):
        calls = {"n": 0}

        def solve_one(function, epoch=0):
            calls["n"] += 1
            if calls["n"] == 1:
                raise InjectedFault("flaky")
            return (function.name, "row")

        outcomes = SessionOutcomes()
        sup = Supervisor(RetryPolicy(backoff_s=0.0), outcomes,
                         mode="serial")
        rows = sup.run([Fn("f")], solve_one, batch_all)
        assert rows["f"] == ("f", "row")
        assert calls["n"] == 2
        assert sup.meta["f"]["faults"] == ["flaky"]
        assert outcomes.session_faults == ["flaky"]

    def test_serial_exhaustion_reraises(self):
        def solve_one(function, epoch=0):
            raise InjectedFault("always")

        sup = Supervisor(RetryPolicy(max_retries=1, backoff_s=0.0),
                         SessionOutcomes(), mode="serial")
        with pytest.raises(InjectedFault):
            sup.run([Fn("f")], solve_one, batch_all)

    def test_deterministic_error_propagates_unretried(self):
        calls = {"n": 0}

        def solve_one(function, epoch=0):
            calls["n"] += 1
            raise ValueError("workload bug")

        sup = Supervisor(RetryPolicy(backoff_s=0.0), SessionOutcomes(),
                         mode="serial")
        with pytest.raises(ValueError):
            sup.run([Fn("f")], solve_one, batch_all)
        assert calls["n"] == 1

    def test_thread_tier_degrades_to_serial(self):
        def solve_one(function, epoch=0):
            # Fails through every thread-tier attempt (epochs 0..2 with
            # max_retries=2); the serial tier's epoch-3 call succeeds.
            if epoch < 3:
                raise InjectedFault(f"epoch {epoch}")
            return (function.name, "row")

        outcomes = SessionOutcomes()
        sup = Supervisor(RetryPolicy(max_retries=2, backoff_s=0.0),
                         outcomes, mode="thread", workers=2)
        rows = sup.run([Fn("f"), Fn("g")], solve_one, batch_all)
        assert set(rows) == {"f", "g"}
        assert sup.meta["f"]["tier"] == "serial"
        assert sup.meta["f"]["degraded"] is True
        assert len(outcomes.session_faults) >= 3

    def test_interrupt_propagates(self):
        def solve_one(function, epoch=0):
            raise KeyboardInterrupt()

        sup = Supervisor(RetryPolicy(backoff_s=0.0), SessionOutcomes(),
                         mode="thread", workers=2)
        with pytest.raises(KeyboardInterrupt):
            sup.run([Fn("f")], solve_one, batch_all)

    def test_batch_timeout_scales_with_size(self):
        policy = RetryPolicy(deadline_s=2.0, grace_s=1.0)
        assert policy.batch_timeout(3) == pytest.approx(7.0)
        assert RetryPolicy().batch_timeout(3) is None

    def test_outcome_bookkeeping(self):
        outcomes = SessionOutcomes()
        outcomes.record(FunctionOutcome("f", "ok", "thread"))
        outcomes.record(FunctionOutcome("g", "retried", "thread",
                                        attempts=2, faults=("boom",)))
        assert outcomes.counts() == {"ok": 1, "retried": 1}
        assert [o.function for o in outcomes.ordered(["g", "f"])] == \
            ["g", "f"]
        d = outcomes.as_dict()
        assert d["counts"]["retried"] == 1
        assert d["functions"][1]["faults"] == ["boom"]


# ---------------------------------------------------------------------------
# Supervised detection sessions
# ---------------------------------------------------------------------------

class TestSessionReliability:
    def test_thread_fault_retried_report_identical(self):
        module = compiled()
        baseline = fingerprint(IdiomDetector().detect(module))
        faults.install_plan({"specs": [{"site": "worker.solve",
                                        "kind": "exception", "at": [0],
                                        "epochs": [0]}]})
        session = DetectionSession(IdiomDetector(), workers=2,
                                   mode="thread")
        report = session.detect(module)
        assert fingerprint(report) == baseline
        assert report.outcomes is session.outcomes
        counts = session.outcomes.counts()
        assert counts.get("retried", 0) >= 1
        assert session.outcomes.session_faults  # the handled injection

    def test_serial_fault_retried_report_identical(self):
        module = compiled()
        baseline = fingerprint(IdiomDetector().detect(module))
        faults.install_plan({"specs": [{"site": "worker.solve",
                                        "kind": "exception", "at": [0],
                                        "epochs": [0]}]})
        report = DetectionSession(IdiomDetector()).detect(module)
        assert fingerprint(report) == baseline

    def test_process_worker_crash_respawned(self):
        module = compiled()
        baseline = fingerprint(IdiomDetector().detect(module))
        faults.install_plan({"specs": [{"site": "worker.solve",
                                        "kind": "crash", "at": [0],
                                        "epochs": [0]}]})
        session = DetectionSession(IdiomDetector(), workers=2,
                                   mode="process")
        report = session.detect(module)
        assert fingerprint(report) == baseline
        assert any("respawned" in note or "died" in note
                   for note in session.outcomes.session_faults)

    def test_poisoned_spawn_recovered(self):
        module = compiled()
        baseline = fingerprint(IdiomDetector().detect(module))
        faults.install_plan({"specs": [{"site": "worker.spawn",
                                        "kind": "exception", "at": [0],
                                        "epochs": [0]}]})
        session = DetectionSession(IdiomDetector(), workers=2,
                                   mode="process")
        assert fingerprint(session.detect(module)) == baseline

    def test_all_ok_outcomes_on_clean_run(self):
        module = compiled()
        session = DetectionSession(IdiomDetector())
        session.detect(module)
        statuses = {o.status for o in session.outcomes.records.values()}
        assert statuses == {"ok"}

    def test_deadline_yields_partial_and_skips_cache(self, tmp_path):
        # CG's driver loop solves for >4096 ticks, enough for the
        # sampled wall clock to observe an already-expired deadline.
        workload = next(w for w in all_workloads() if w.name == "CG")
        module = compile_c(workload.source, workload.name)
        optimize(module)
        detector = IdiomDetector(cache=str(tmp_path))
        session = DetectionSession(detector, deadline_s=0.0)
        report = session.detect(module)
        timed_out = [o for o in session.outcomes.records.values()
                     if o.status == "timed-out-partial"]
        assert any(o.function == "run" for o in timed_out)
        assert report.stats.timed_out
        # Every function appears in the report exactly once regardless.
        assert {o.function for o in session.outcomes.records.values()} \
            == {f.name for f in module.functions.values()
                if not f.is_declaration()}
        # Partial results must not be served as truth later: the timed
        # out functions miss on the next pass, the rest hit.
        rerun = DetectionSession(detector)
        rerun.detect(module)
        assert rerun.cache_misses == len(timed_out)
        assert rerun.cache_hits > 0

    def test_solver_deadline_trips_on_sampled_tick(self):
        stats = SolverStats(max_steps=10_000_000)
        stats.arm_deadline(-1.0)  # already expired
        with pytest.raises(SolveTimeout):
            for _ in range(4096):
                stats.tick()
        assert stats.timed_out
        merged = SolverStats(max_steps=1).merge(stats)
        assert merged.timed_out

    def test_deadline_not_in_cache_payload(self):
        # deadline_at/timed_out are runtime-only: the cache payload
        # shape (and thus every content address) must not change.
        stats = SolverStats(max_steps=100)
        assert "deadline_at" not in stats.as_dict()
        assert "timed_out" not in stats.as_dict()


# ---------------------------------------------------------------------------
# Crash-safe store
# ---------------------------------------------------------------------------

KEY = "ab" + "0" * 62
KEY2 = "cd" + "0" * 62


def _writer(args):
    directory, worker, rounds = args
    store = ArtifactStore(directory)
    for i in range(rounds):
        key = f"{(worker + i) % 4:02x}" + "0" * 62
        if not store.put(key, {"kind": "stress", "worker": worker,
                               "round": i}):
            return False
    return True


class TestStoreReliability:
    def test_tmp_names_are_unique_and_cleaned(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        for i in range(5):
            assert store.put(KEY, {"kind": "detection", "round": i})
        leftovers = [n for n in os.listdir(store._path(KEY).rsplit("/", 1)[0])
                     if n.endswith(".tmp")]
        assert leftovers == []
        assert store.get(KEY)["round"] == 4

    def test_zero_byte_entry_is_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY, {"kind": "detection"})
        with open(store._path(KEY), "w"):
            pass
        assert store.get(KEY) is None
        assert store.stats.corrupt == 1
        assert not os.path.exists(store._path(KEY))

    def test_truncated_entry_is_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY, {"kind": "detection", "matches": list(range(50))})
        path = store._path(KEY)
        with open(path) as fh:
            data = fh.read()
        with open(path, "w") as fh:
            fh.write(data[:len(data) // 2])
        assert store.get(KEY) is None
        assert store.stats.corrupt == 1

    def test_unlinked_mid_read_is_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY, {"kind": "detection"})
        # The read seam stands in for the file vanishing between the
        # existence check and the open (a concurrent eviction).
        faults.install_plan({"specs": [{"site": "store.read",
                                        "kind": "exception", "at": [0]}]})
        assert store.get(KEY) is None
        faults.install_plan(None)
        assert store.get(KEY) is not None  # entry itself was untouched

    def test_injected_write_failure_is_counted_not_raised(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        faults.install_plan({"specs": [{"site": "store.write",
                                        "kind": "exception", "at": [0]}]})
        assert store.put(KEY, {"kind": "detection"}) is False
        assert store.stats.write_errors == 1
        assert store.get(KEY) is None

    def test_torn_write_reads_back_as_corrupt_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        faults.install_plan({"specs": [{"site": "store.write",
                                        "kind": "torn", "at": [0]}]})
        assert store.put(KEY, {"kind": "detection",
                               "payload": list(range(100))}) is False
        faults.install_plan(None)
        assert os.path.exists(store._path(KEY))  # the torn final file
        assert store.get(KEY) is None
        assert store.stats.corrupt == 1
        # The slot recovers: a clean rewrite is served normally.
        assert store.put(KEY, {"kind": "detection", "ok": True})
        assert store.get(KEY)["ok"] is True

    def test_durable_mode_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path), durable=True)
        assert store.put(KEY, {"kind": "detection", "fsynced": True})
        assert store.get(KEY)["fsynced"] is True

    def test_cross_process_writer_stress(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(4) as pool:
            ok = pool.map(_writer, [(str(tmp_path), w, 10)
                                    for w in range(4)])
        assert all(ok)
        reader = ArtifactStore(str(tmp_path))
        for slot in range(4):
            payload = reader.get(f"{slot:02x}" + "0" * 62)
            assert payload is not None and payload["kind"] == "stress"
        assert reader.stats.corrupt == 0


# ---------------------------------------------------------------------------
# Quarantine and guaranteed fallback
# ---------------------------------------------------------------------------

class TestQuarantine:
    def test_threshold(self):
        q = Quarantine(threshold=3)
        assert not q.record_failure("sparse", "sparse_matrix_op", "e1")
        assert not q.record_failure("sparse", "sparse_matrix_op", "e2")
        assert q.record_failure("sparse", "sparse_matrix_op", "e3")
        assert q.is_quarantined("sparse", "sparse_matrix_op")
        assert not q.is_quarantined("sparse", "matrix_op")
        assert q.quarantined() == [("sparse", "sparse_matrix_op")]

    def test_registry_filters_quarantined_backends(self):
        q = Quarantine(threshold=1)
        q.record_failure("lift", "scalar_reduction", "boom")
        names = [c.backend for c in default_registry().contracts_for(
            "scalar_reduction", quarantine=q)]
        assert "lift" not in names
        assert "parallel-cpu" in names

    def test_transformer_falls_back_past_quarantined_backend(self):
        module = compiled()
        report = IdiomDetector().detect(module)
        runtime = ApiRuntime()
        runtime.quarantine = Quarantine(threshold=1)
        runtime.quarantine.record_failure("lift", "scalar_reduction", "x")
        applied = Transformer(module, runtime).apply(list(report.matches))
        reductions = [t.site for t in applied
                      if t.site.category == "scalar_reduction"]
        assert reductions
        assert all(s.backend == "parallel-cpu" for s in reductions)

    def test_sole_backend_quarantined_rejects_with_reason(self):
        workload = next(w for w in all_workloads() if w.name == "CG")
        module = compile_c(workload.source, workload.name)
        optimize(module)
        report = IdiomDetector().detect(module)
        runtime = ApiRuntime()
        runtime.quarantine = Quarantine(threshold=1)
        runtime.quarantine.record_failure("sparse", "sparse_matrix_op",
                                          "x")
        transformer = Transformer(module, runtime)
        transformer.apply(list(report.matches))
        rejected = [r for r in transformer.rejected
                    if r.match.category == "sparse_matrix_op"]
        assert rejected
        assert any("quarantined" in r.reason for r in rejected)


def _guarded_cg():
    workload = next(w for w in all_workloads() if w.name == "CG")
    compiled_w = compile_workload(workload.name, workload.source,
                                  verify=False)
    original = run_original(compiled_w, workload.entry,
                            workload.make_inputs(1))
    runtime = ApiRuntime()
    Transformer(compiled_w.module, runtime).apply(
        list(compiled_w.report.matches))
    guarded = [s for s in runtime.all_sites() if s.guarded]
    assert guarded, "CG must produce at least one guarded site"
    return workload, compiled_w, runtime, guarded[0], original


class TestGuardedDispatchFallback:
    def test_failing_handler_rolls_back_and_falls_back(self):
        workload, compiled_w, runtime, site, original = _guarded_cg()

        real_handler = site.handler

        def sabotaged(args, engine):
            # Partially clobber the output buffer, then die: the
            # rollback must erase the damage before the original loop
            # replays.
            for index in site.writes:
                buffer = getattr(args[index], "buffer", None)
                if buffer is not None:
                    buffer.data[...] = 1e30
            raise RuntimeError("backend fell over")

        site.handler = sabotaged
        try:
            faulted = run_transformed(compiled_w, workload.entry,
                                      workload.make_inputs(1), runtime)
        finally:
            site.handler = real_handler
        assert outputs_match(original, faulted)
        assert runtime.dispatch_failures
        record = runtime.dispatch_failures[0]
        assert record["callee"] == site.callee
        assert "fell over" in record["error"]
        assert site.stats["dispatch_failures"] >= 3
        assert runtime.quarantine.is_quarantined(site.backend,
                                                 site.category)

    def test_injected_dispatch_fault_contained(self):
        workload, compiled_w, runtime, site, original = _guarded_cg()
        faults.install_plan({"specs": [{"site": "backend.dispatch",
                                        "kind": "exception", "at": [],
                                        "rate": 1.0,
                                        "key": site.callee}]})
        faulted = run_transformed(compiled_w, workload.entry,
                                  workload.make_inputs(1), runtime)
        assert outputs_match(original, faulted)
        assert runtime.dispatch_failures

    def test_quarantined_site_skips_handler(self):
        workload, compiled_w, runtime, site, original = _guarded_cg()
        for i in range(runtime.quarantine.threshold):
            runtime.quarantine.record_failure(site.backend, site.category,
                                              f"e{i}")
        calls = {"n": 0}
        real_handler = site.handler

        def counting(args, engine):
            calls["n"] += 1
            return real_handler(args, engine)

        site.handler = counting
        try:
            skipped = run_transformed(compiled_w, workload.entry,
                                      workload.make_inputs(1), runtime)
        finally:
            site.handler = real_handler
        assert calls["n"] == 0
        assert site.stats["quarantine_skips"] >= 1
        assert outputs_match(original, skipped)


# ---------------------------------------------------------------------------
# JIT tier fault containment
# ---------------------------------------------------------------------------

class TestJitReliability:
    def _run(self, module, entry, inputs):
        engine = JitVirtualMachine(module)
        args, buffers = _bind_arguments(engine, module, entry, inputs)
        value = engine.call(entry, args)
        return engine, value, buffers

    def test_injected_compile_fault_degrades_to_vm(self):
        inputs = {"n": 64, "a": np.arange(64, dtype=np.float64),
                  "b": np.ones(64)}
        clean_engine, clean, _ = self._run(compiled(), "dot", dict(inputs))
        faults.install_plan({"specs": [{"site": "jit.compile",
                                        "kind": "exception", "at": [],
                                        "rate": 1.0}]})
        engine, value, _ = self._run(compiled(), "dot", dict(inputs))
        assert value == clean
        records = {r["function"]: r for r in engine.outcome_records()}
        assert records["dot"]["status"] == "uncompilable"
        clean_records = {r["function"]: r
                         for r in clean_engine.outcome_records()}
        assert clean_records["dot"]["status"] == "specialized"

    def test_codegen_defect_replays_surfaced(self):
        engine = JitVirtualMachine(compiled())
        engine.codegen_defect_replays["dot"] = 2
        records = {r["function"]: r for r in engine.outcome_records()}
        assert records["dot"]["status"] == "blacklisted-replayed"
        assert records["dot"]["codegen_defect_replays"] == 2


# ---------------------------------------------------------------------------
# End-to-end: detection under faults stays bit-identical (the
# bench_faults acceptance property, on one module)
# ---------------------------------------------------------------------------

def test_store_faults_leave_detection_identical(tmp_path):
    module = compiled()
    baseline = fingerprint(IdiomDetector().detect(module))
    detector = IdiomDetector(cache=str(tmp_path))
    faults.install_plan({"specs": [
        {"site": "store.write", "kind": "torn", "at": [0]},
        {"site": "store.write", "kind": "exception", "at": [1]},
    ]})
    assert fingerprint(DetectionSession(detector).detect(module)) == \
        baseline
    faults.install_plan(None)
    # The store healed: the next pass re-writes and then serves cleanly.
    assert fingerprint(DetectionSession(detector).detect(module)) == \
        baseline
    warm = DetectionSession(detector)
    assert fingerprint(warm.detect(module)) == baseline
    assert warm.cache_misses == 0
