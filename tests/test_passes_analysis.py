"""Tests for optimisation passes and IR analyses."""

import pytest

from repro.analysis import (
    DominatorTree,
    FunctionAnalyses,
    InstructionCFG,
    LoopInfo,
    has_dataflow_edge,
    may_alias,
)
from repro.frontend import compile_c
from repro.ir import parse_module, print_function, verify_module
from repro.passes import (
    eliminate_dead_code,
    fold_constants,
    optimize,
    promote_allocas,
)


def compiled(src):
    m = compile_c(src)
    optimize(m)
    return m


class TestMem2Reg:
    def test_locals_promoted(self):
        m = compiled("int f(int a) { int x = a; int y = x + 1; return y; }")
        f = m.get_function("f")
        assert not any(i.opcode == "alloca" for i in f.instructions())
        assert not any(i.opcode == "load" for i in f.instructions())

    def test_loop_phi_created(self):
        m = compiled("""
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += i;
  return s;
}
""")
        f = m.get_function("f")
        phis = [i for i in f.instructions() if i.opcode == "phi"]
        assert len(phis) == 2  # iterator and accumulator

    def test_arrays_not_promoted(self):
        m = compiled("int f() { int a[4]; a[0] = 3; return a[0]; }")
        f = m.get_function("f")
        # Array alloca persists (forwarding may remove the load).
        assert any(i.opcode == "alloca" for i in f.instructions())


class TestDCE:
    def test_dead_phi_cycles_removed(self):
        # c is dead across the outer loop: naive use-count DCE keeps the
        # phi cycle, mark-sweep removes it.
        m = compiled("""
void f(int n, double *out) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      double c = 0.0;
      c = c + 1.0;
    }
    out[i] = 1.0;
  }
}
""")
        f = m.get_function("f")
        fadds = [i for i in f.instructions() if i.opcode == "fadd"]
        assert not fadds


class TestConstFold:
    def test_folding(self):
        m = compiled("int f() { return 2 * 3 + 4; }")
        f = m.get_function("f")
        ret = f.blocks[0].terminator
        from repro.ir import ConstantInt

        assert isinstance(ret.value, ConstantInt)
        assert ret.value.value == 10

    def test_division_by_zero_not_folded(self):
        m = compile_c("int f() { return 1 / 0; }")
        for fn in m.functions.values():
            fold_constants(fn)  # must not raise
        assert any(i.opcode == "sdiv"
                   for i in m.get_function("f").instructions())


class TestCSE:
    def test_duplicate_geps_merged(self):
        m = compiled("""
void f(int n, double *a) {
  for (int i = 0; i < n; i++)
    a[i] = a[i] + 1.0;
}
""")
        f = m.get_function("f")
        geps = [i for i in f.instructions() if i.opcode == "gep"]
        assert len(geps) == 1

    def test_repeated_loads_merged(self):
        m = compiled("""
double f(double *a) { return a[0] * a[0]; }
""")
        f = m.get_function("f")
        loads = [i for i in f.instructions() if i.opcode == "load"]
        assert len(loads) == 1


class TestLICMAndPromotion:
    def test_invariant_bound_hoisted(self):
        m = compiled("""
void f(int n, int *bounds, double *a) {
  for (int j = 0; j < n; j++)
    for (int k = 0; k < bounds[j]; k++)
      a[k] = a[k] * 0.5;
}
""")
        f = m.get_function("f")
        # The bounds[j] load must not sit in the inner loop header.
        info = LoopInfo(f)
        inner = [l for l in info.loops if l.depth == 2][0]
        header_loads = [i for i in inner.header.instructions
                        if i.opcode == "load"]
        assert not header_loads

    def test_accumulator_promoted_to_phi(self):
        m = compiled("""
double g[4];
void f(int n, double *a) {
  g[0] = 0.0;
  for (int i = 0; i < n; i++)
    g[0] = g[0] + a[i];
}
""")
        f = m.get_function("f")
        info = LoopInfo(f)
        assert info.loops, "loop survived"
        header_phis = info.loops[0].header.phis()
        assert len(header_phis) == 2  # iterator + promoted accumulator


class TestDominators:
    def _diamond(self):
        return parse_module("""
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  ret i32 0
}
""").get_function("f")

    def test_block_dominance(self):
        f = self._diamond()
        tree = DominatorTree.block_level(f)
        blocks = {b.name: b for b in f.blocks}
        assert tree.dominates(blocks["entry"], blocks["join"])
        assert not tree.dominates(blocks["t"], blocks["join"])
        assert tree.idom(blocks["join"]) is blocks["entry"]

    def test_post_dominance(self):
        f = self._diamond()
        tree = DominatorTree.block_level(f, post=True)
        blocks = {b.name: b for b in f.blocks}
        assert tree.dominates(blocks["join"], blocks["entry"])
        assert not tree.dominates(blocks["t"], blocks["entry"])

    def test_instruction_level(self):
        f = self._diamond()
        an = FunctionAnalyses(f)
        entry_br = f.blocks[0].terminator
        ret = f.blocks[-1].terminator
        assert an.dom.dominates(entry_br, ret)
        assert an.postdom.dominates(ret, entry_br)


class TestLoops:
    def test_nest_structure(self):
        m = compiled("""
void f(int n, double *a) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      a[i] = a[i] + (double) j;
}
""")
        info = LoopInfo(m.get_function("f"))
        assert len(info.loops) == 2
        depths = sorted(l.depth for l in info.loops)
        assert depths == [1, 2]
        inner = [l for l in info.loops if l.depth == 2][0]
        assert inner.parent is not None

    def test_induction_and_bounds(self):
        m = compiled("""
int f(int n) {
  int s = 0;
  for (int i = 2; i < n; i++) s += i;
  return s;
}
""")
        info = LoopInfo(m.get_function("f"))
        loop = info.loops[0]
        assert loop.induction_phi() is not None
        bounds = loop.trip_bounds()
        assert bounds is not None
        from repro.ir import ConstantInt

        assert isinstance(bounds[0], ConstantInt) and bounds[0].value == 2


class TestAlias:
    def test_distinct_globals_no_alias(self):
        m = compiled("""
double a[4]; double b[4];
void f() { a[0] = b[0]; }
""")
        f = m.get_function("f")
        loads = [i for i in f.instructions() if i.opcode == "load"]
        stores = [i for i in f.instructions() if i.opcode == "store"]
        assert not may_alias(loads[0].pointer, stores[0].pointer)

    def test_arguments_may_alias(self):
        m = compiled("void f(double *a, double *b) { a[0] = b[0]; }")
        f = m.get_function("f")
        loads = [i for i in f.instructions() if i.opcode == "load"]
        stores = [i for i in f.instructions() if i.opcode == "store"]
        assert may_alias(loads[0].pointer, stores[0].pointer)
