"""Placement-as-a-service: the ``plan`` request kind through the
service batcher and the daemon wire protocol. The micro-batch window IS
the contention domain — requests that arrive together are jointly
placed against shared device and link queues."""

import pytest

from repro.backends.api import ApiCallSite, ApiRuntime
from repro.errors import IDLError
from repro.frontend import compile_c
from repro.ir.printer import print_module
from repro.passes import optimize
from repro.platform.placement import PlacementRequest
from repro.service import (
    DetectionDaemon,
    DetectionService,
    PlanResult,
    ServiceClient,
    ServiceConfig,
    decode_plan_request,
    encode_plan_request,
)


def _request(label="", calls=8, elements=4e6, flops=40, nbytes=32e6):
    runtime = ApiRuntime()
    site = runtime.new_site("Stencil1D", "stencil",
                            lambda args, engine: None)
    site.stats = {"calls": calls, "elements": elements,
                  "flops_per_element": flops, "bytes": nbytes}
    return PlacementRequest([site], host_seconds=0.001, label=label)


class TestServicePlanPath:
    def test_cobatched_requests_share_one_joint_plan(self):
        config = ServiceConfig(batch_window_s=0.25)
        with DetectionService(config) as service:
            futures = [service.submit_plan(_request(f"t{i}"),
                                           tenant=f"t{i}")
                       for i in range(4)]
            results = [f.result(timeout=120) for f in futures]
            stats = service.stats()
        assert all(isinstance(r, PlanResult) for r in results)
        # One window caught all four; they were planned together.
        assert stats["plan_batches"] == 1
        assert stats["plan_requests"] == 4
        shared = results[0].plan
        assert all(r.plan is shared for r in results)
        assert shared.strategy == "joint"
        assert sorted(r.index for r in results) == [0, 1, 2, 3]
        for i, result in enumerate(results):
            assert result.tenant == f"t{i}"
            assert result.latency_s >= 0.0
            assert result.completion_s > 0.0
            assert set(result.assignment) == {0}
            assert set(result.locations()) == {0}

    def test_plan_and_detect_coexist_in_one_batch(self):
        module = compile_c(
            "double dot(double* a, double* b, int n) {\n"
            "  double s = 0.0;\n"
            "  for (int i = 0; i < n; i++) { s = s + a[i] * b[i]; }\n"
            "  return s;\n}\n", "t")
        optimize(module)
        text = print_module(module)
        config = ServiceConfig(batch_window_s=0.25)
        with DetectionService(config) as service:
            detect = service.submit(text, tenant="d")
            plan = service.submit_plan(_request(), tenant="p")
            report = detect.result(timeout=120)
            placed = plan.result(timeout=120)
            stats = service.stats()
        assert report.report.module_name
        assert placed.completion_s > 0.0
        assert stats["plan_requests"] == 1
        # Both kinds share the admission path and its counter.
        assert stats["requests"] == 2

    def test_sync_convenience(self):
        with DetectionService(ServiceConfig(batch_window_s=0.001)) \
                as service:
            result = service.plan(_request(), tenant="solo")
        assert isinstance(result, PlanResult)
        assert result.index == 0
        assert len(result.plan.requests) == 1


class TestPlanWire:
    def test_round_trip(self):
        runtime = ApiRuntime()
        site = runtime.new_site("Reduction", "scalar_reduction",
                                lambda args, engine: None, reads=(0,))
        site.stats = {"calls": 3, "elements": 3e6,
                      "flops_per_element": 2, "bytes": 24e6}
        original = PlacementRequest(
            [site], [(0, ((1001, 8e6, "r"),))],
            host_seconds=0.25, scale=2.0, greedy_lazy=False, label="CG")
        clone = decode_plan_request(encode_plan_request(original))
        assert clone.host_seconds == 0.25
        assert clone.scale == 2.0
        assert clone.greedy_lazy is False
        assert clone.label == "CG"
        assert clone.events == [(0, ((1001, 8e6, "r"),))]
        [decoded] = clone.sites
        assert isinstance(decoded, ApiCallSite)
        assert decoded.call_id == 0
        assert decoded.category == "scalar_reduction"
        assert decoded.stats == site.stats
        assert decoded.handler is None  # handlers never cross the wire

    def test_malformed_payload_rejected(self):
        with pytest.raises(IDLError):
            decode_plan_request({"sites": [{"idiom": "x"}]})  # no call_id
        with pytest.raises(IDLError):
            decode_plan_request({})


class TestPlanDaemon:
    def test_plan_over_the_wire(self):
        daemon = DetectionDaemon(port=0)
        thread = daemon.serve_in_thread()
        host, port = daemon.address
        try:
            with ServiceClient(host, port) as client:
                answer = client.plan(_request("net"), tenant="net")
                assert set(answer["assignment"]) == {"0"}
                assert "@" in answer["assignment"]["0"]
                assert answer["completion_ms"] > 0.0
                assert answer["batch"]["requests"] == 1
                assert answer["batch"]["strategy"] == "joint"
                assert answer["batch"]["sum_completion_ms"] >= \
                    answer["completion_ms"] - 1e-9
                with pytest.raises(IDLError):
                    client.request({"op": "plan"})  # no request field
                with pytest.raises(IDLError):
                    client.request({"op": "plan",
                                    "request": {"sites": [{}]}})
                assert client.ping()  # still alive after bad requests
        finally:
            daemon.shutdown()
            thread.join(timeout=10)
            daemon.server_close()
            daemon.service.close()
