"""Tests for compiled execution plans, SolverStats/SolveLimits threading,
and the parallel DetectionSession (plan → execute → schedule stack)."""

import pytest

from repro.errors import IDLError
from repro.frontend import compile_c
from repro.idioms import (
    DETECTOR_LIMITS,
    DetectionSession,
    IdiomDetector,
    TOP_LEVEL_IDIOMS,
    load_library,
)
from repro.idl import (
    AndPlan,
    CollectPlan,
    IdiomCompiler,
    LMemo,
    OrPlan,
    SolveLimits,
    value_key,
)
from repro.idl.atoms import COST_NOT_READY
from repro.idl.plan import COST_MEMO
from repro.passes import optimize
from repro.workloads import all_workloads

#: Small functions that exercise every top-level idiom class.
SNIPPETS = {
    "reduction": """
double f(int n, double *a) {
  double s = 0.0;
  for (int i = 0; i < n; i++) s += a[i] * 2.0;
  return s;
}
""",
    "histogram": """
void f(int n, double *x, double *q) {
  for (int i = 0; i < n; i++) {
    int b = (int) x[i];
    q[b] = q[b] + 1.0;
  }
}
""",
    "spmv": """
void f(int m, double *a, int *rs, int *ci, double *z, double *r) {
  for (int j = 0; j < m; j++) {
    double d = 0.0;
    for (int k = rs[j]; k < rs[j+1]; k++)
      d = d + a[k] * z[ci[k]];
    r[j] = d;
  }
}
""",
    "gemm": """
void f(int n, double *a, double *b, double *c) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      double s = 0.0;
      for (int k = 0; k < n; k++)
        s = s + a[i + k*n] * b[j + k*n];
      c[i + j*n] = s;
    }
}
""",
    "stencil": """
void f(int n, double *in, double *out) {
  for (int i = 1; i < n - 1; i++)
    out[i] = (in[i-1] + in[i+1]) * 0.5;
}
""",
}


def compiled(src, name="m"):
    m = compile_c(src, name)
    optimize(m)
    return m


def solution_keys(solutions):
    return {tuple((k, value_key(v)) for k, v in sorted(sol.items()))
            for sol in solutions}


# The shared bit-identity digest (re-exported for test_forest's import).
from repro.idioms import report_fingerprint  # noqa: E402


@pytest.fixture(scope="module")
def library_compilers():
    plan = IdiomCompiler()
    load_library(plan)
    legacy = IdiomCompiler(memo_specs=frozenset())
    load_library(legacy)
    return plan, legacy


class TestPlanCompilation:
    @pytest.mark.parametrize("snippet", sorted(SNIPPETS))
    def test_plan_matches_dynamic_order_results(self, snippet,
                                                library_compilers):
        """Plan-driven solving enumerates the same solution sets as the
        seed's dynamic ordering, for every library idiom."""
        plan_idl, legacy_idl = library_compilers
        module = compiled(SNIPPETS[snippet])
        for function in module.functions.values():
            for idiom in TOP_LEVEL_IDIOMS:
                fast = plan_idl.match(function, idiom)
                seed = legacy_idl.match(function, idiom,
                                        ordering="dynamic", memo=False,
                                        indexed=False)
                assert solution_keys(fast) == solution_keys(seed), \
                    f"{idiom} diverged on snippet {snippet}"

    def test_plan_shape_for_reduction(self, library_compilers):
        """The compiled plan is an ordered conjunction: the memoized For
        reference leads, every step is statically ready, and the collect
        carries a nested body sub-plan."""
        plan_idl, _ = library_compilers
        plan = plan_idl.plan_for("Reduction")
        assert isinstance(plan, AndPlan)
        assert all(s.cost < COST_NOT_READY for s in plan.steps)
        assert isinstance(plan.steps[0].node, LMemo)
        assert plan.steps[0].cost == COST_MEMO
        collects = [s for s in plan.steps if isinstance(s, CollectPlan)]
        assert collects and collects[0].body is not None
        # Costs never jump straight to a scan before any generator ran.
        assert plan.steps[1].cost <= plan.steps[0].cost or \
            plan.steps[1].cost < COST_NOT_READY

    def test_or_branches_get_sub_plans(self, library_compilers):
        plan_idl, _ = library_compilers
        plan = plan_idl.plan_for("VectorRead")
        assert isinstance(plan, OrPlan)
        assert len(plan.branches) == 3
        assert all(isinstance(b, AndPlan) for b in plan.branches)

    def test_plan_is_cached(self, library_compilers):
        plan_idl, _ = library_compilers
        assert plan_idl.plan_for("Reduction") is \
            plan_idl.plan_for("Reduction")

    def test_memoized_for_solved_once_per_function(self):
        """All seven idioms share one cached For solution set (per-idiom
        plan mode: every feasible idiom replays the same memo entry)."""
        module = compiled(SNIPPETS["reduction"])
        detector = IdiomDetector(ordering="plan")
        session = DetectionSession(detector)
        report = session.detect(module)
        assert report.by_idiom() == {"Reduction": 1}
        analyses = session.analyses["f"]
        assert "For()" in analyses.memo_solutions
        assert report.stats.memo_misses == 1
        assert report.stats.memo_hits >= len(TOP_LEVEL_IDIOMS) - 1

    def test_forest_skips_infeasible_idioms_entirely(self):
        """Forest mode solves only feasible idioms: the reduction snippet
        has no store, so every idiom but Reduction is skipped before the
        solver runs — same matches, fewer memo replays."""
        module = compiled(SNIPPETS["reduction"])
        detector = IdiomDetector()  # ordering="forest" is the default
        assert detector.ordering == "forest"
        session = DetectionSession(detector)
        report = session.detect(module)
        assert report.by_idiom() == {"Reduction": 1}
        assert report.stats.feasibility_skips == len(TOP_LEVEL_IDIOMS) - 1
        assert report.stats.memo_misses == 1
        assert session.analyses["f"].subquery_cache

    def test_plan_reduces_search_steps(self):
        module = compiled(SNIPPETS["spmv"])
        fast = IdiomDetector().detect(module)
        seed = IdiomDetector(ordering="dynamic", memo=False,
                             indexed=False).detect(module)
        assert fast.by_idiom() == seed.by_idiom()
        assert fast.stats.ticks * 2 <= seed.stats.ticks


class TestSolverStats:
    def test_stuck_branch_counted(self):
        idl = IdiomCompiler()
        idl.load("""
Constraint Unsolvable
( {a} is add instruction and
  {b} is not the same as {a} )
End
""")
        module = compiled("int f(int a, int b) { return a + b; }")
        function = module.get_function("f")
        solutions, stats = idl.match_with_stats(function, "Unsolvable")
        assert solutions == []
        assert stats.stuck_branches > 0

    def test_stats_surfaced_through_matches_and_report(self):
        module = compiled(SNIPPETS["histogram"])
        report = IdiomDetector().detect(module)
        assert report.total() == 1
        assert report.stats.ticks > 0
        for match in report.matches:
            assert match.stats is not None and match.stats.ticks > 0
        # The report aggregates all solves, not just the matching ones.
        assert report.stats.ticks > max(m.stats.ticks
                                        for m in report.matches) - 1

    def test_step_budget_enforced(self):
        module = compiled(SNIPPETS["gemm"])
        detector = IdiomDetector(limits=SolveLimits(max_steps=10))
        with pytest.raises(IDLError, match="exceeded"):
            detector.detect(module)


class TestSolveLimits:
    def test_detector_defaults_to_shared_config(self):
        detector = IdiomDetector()
        assert detector.limits == DETECTOR_LIMITS
        assert detector.max_solutions == DETECTOR_LIMITS.max_solutions

    def test_max_solutions_forwarded_to_solver(self):
        idl = IdiomCompiler()
        idl.load("Constraint AnyMul ( {m} is mul instruction ) End")
        module = compiled("int f(int a) { return (a*2) * (a*3) * (a*4); }")
        function = module.get_function("f")
        everything = idl.match(function, "AnyMul")
        capped = idl.match(function, "AnyMul",
                           limits=SolveLimits(max_solutions=2))
        assert len(everything) > 2
        assert len(capped) == 2

    def test_override_helper(self):
        limits = SolveLimits().with_overrides(max_solutions=7)
        assert limits.max_solutions == 7
        assert limits.max_steps == SolveLimits().max_steps


class TestMatchModule:
    def test_reuses_provided_function_analyses(self):
        idl = IdiomCompiler()
        idl.load("Constraint AnyAdd ( {a} is add instruction ) End")
        module = compiled("int f(int a) { return a + 1; }"
                          "int g(int a) { return a + 2; }")
        analyses = {}
        first = idl.match_module(module, "AnyAdd", analyses=analyses)
        assert sorted(analyses) == ["f", "g"]
        kept = dict(analyses)
        second = idl.match_module(module, "AnyAdd", analyses=analyses)
        assert all(analyses[k] is kept[k] for k in kept)
        assert len(first) == len(second) == 2


@pytest.fixture(scope="module")
def suite_modules():
    """Every NAS + Parboil workload, compiled once for this test module."""
    return {w.name: compiled(w.source, w.name) for w in all_workloads()}


class TestDetectionSession:
    @pytest.mark.parametrize(
        "name", [w.name for w in all_workloads()])
    def test_parallel_equals_sequential(self, name, suite_modules):
        """A thread-pool session yields the identical DetectionReport
        (same matches, same deterministic merge order) on every NAS +
        Parboil workload."""
        module = suite_modules[name]
        detector = IdiomDetector()
        sequential = DetectionSession(detector).detect(module)
        parallel = DetectionSession(detector, workers=4).detect(module)
        assert report_fingerprint(parallel) == \
            report_fingerprint(sequential)
        assert parallel.stats == sequential.stats

    def test_worker_counts_do_not_change_order(self, suite_modules):
        module = suite_modules["CG"]
        detector = IdiomDetector()
        reports = [DetectionSession(detector, workers=n).detect(module)
                   for n in (1, 2, 5)]
        fingerprints = [report_fingerprint(r) for r in reports]
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_process_mode_equals_sequential(self, suite_modules):
        """Process workers detect on a textual IR round-trip; decoded
        matches reference the parent module's IR objects."""
        module = suite_modules["histo"]
        detector = IdiomDetector()
        sequential = DetectionSession(detector).detect(module)
        parallel = DetectionSession(detector, workers=2,
                                    mode="process").detect(module)
        # Instructions decode to the parent's objects (identity);
        # constants are recreated, so compare them structurally.
        assert report_fingerprint(parallel, by_identity=False) == \
            report_fingerprint(sequential, by_identity=False)
        for match in parallel.matches:
            assert match.function is module.functions[match.function.name]

    def test_process_mode_rejects_custom_compilers(self):
        """A custom compiler with mode='process' fails at session
        construction — before any work, even at workers=1 (where the old
        lazy check never fired and the standard library was silently
        assumed)."""
        idl = IdiomCompiler()
        load_library(idl)
        detector = IdiomDetector(compiler=idl)
        for workers in (1, 2):
            with pytest.raises(IDLError, match="process-mode"):
                DetectionSession(detector, workers=workers, mode="process")

    def test_unknown_mode_rejected(self):
        with pytest.raises(IDLError, match="unknown detection mode"):
            DetectionSession(IdiomDetector(), workers=2, mode="fibers")

    def test_detect_idioms_worker_passthrough(self):
        from repro.idioms import detect_idioms

        module = compiled(SNIPPETS["reduction"])
        assert detect_idioms(module, workers=2).by_idiom() == \
            detect_idioms(module).by_idiom()
