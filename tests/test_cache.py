"""Tests for the content-addressed artifact cache: the store's failure
semantics, fingerprint/canonical-print determinism (including across
processes with different PYTHONHASHSEED — the warm-start-across-sessions
requirement), analysis summaries, and cold/warm bit-identity of detection
reports with per-function invalidation."""

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.analysis.info import AnalysisSummary, FunctionAnalyses
from repro.cache import (
    STORE_VERSION,
    ArtifactStore,
    DetectionCache,
    detection_config_signature,
    function_fingerprint,
    globals_signature,
    summary_fingerprint,
)
from repro.errors import IDLError
from repro.frontend import compile_c
from repro.idioms import (
    DetectionSession,
    IdiomDetector,
    detect_idioms,
    report_fingerprint,
)
from repro.ir.instructions import BinaryOperator
from repro.ir.parser import parse_module
from repro.ir.printer import (
    canonical_names,
    print_function,
    print_function_canonical,
    print_module,
)
from repro.ir.values import const_int
from repro.passes import optimize
from repro.passes.pipeline import pipeline_signature
from repro.workloads import all_workloads

SRC = """
double f(int n, double *a) {
  double s = 0.0;
  for (int i = 0; i < n; i++) s += a[i] * 2.0;
  return s;
}
void g(int n, double *x, double *q) {
  for (int i = 0; i < n; i++) {
    int k = (int) x[i];
    q[k] = q[k] + 1.0;
  }
}
"""

#: Same structure as SRC, every identifier renamed — canonical printing
#: must erase the difference.
SRC_RENAMED = """
double f(int count, double *vec) {
  double total = 0.0;
  for (int j = 0; j < count; j++) total += vec[j] * 2.0;
  return total;
}
void g(int count, double *inp, double *hist) {
  for (int j = 0; j < count; j++) {
    int bin = (int) inp[j];
    hist[bin] = hist[bin] + 1.0;
  }
}
"""


def compiled(src=SRC, name="m"):
    module = compile_c(src, name)
    optimize(module)
    return module


def mutate(function, tag=1):
    """A dead but fingerprint-changing edit (same as bench_cache's)."""
    dead = BinaryOperator("add", const_int(0), const_int(tag))
    dead.name = function.unique_name("editbump")
    function.blocks[0].insert(0, dead)


# ---------------------------------------------------------------------------
# ArtifactStore
# ---------------------------------------------------------------------------

KEY = "ab" + "0" * 62


class TestArtifactStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.put(KEY, {"kind": "detection", "matches": []})
        payload = store.get(KEY)
        assert payload["kind"] == "detection"
        assert payload["version"] == STORE_VERSION
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_absent_key_is_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.get(KEY) is None
        assert store.stats.misses == 1

    def test_corrupt_entry_is_miss_never_error(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY, {"kind": "detection"})
        path = store._path(KEY)
        with open(path, "w") as fh:
            fh.write("{ not json")
        assert store.get(KEY) is None
        assert store.stats.corrupt == 1
        assert not os.path.exists(path)  # bad entries are dropped

    def test_version_mismatch_is_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY, {"kind": "detection"})
        path = store._path(KEY)
        with open(path, "w") as fh:
            json.dump({"kind": "detection", "version": STORE_VERSION + 1},
                      fh)
        assert store.get(KEY) is None
        assert store.stats.corrupt == 1

    def test_non_dict_payload_is_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY, {"kind": "detection"})
        with open(store._path(KEY), "w") as fh:
            json.dump([1, 2, 3], fh)
        assert store.get(KEY) is None

    def test_malformed_key_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.get("../../etc/passwd")
        with pytest.raises(ValueError):
            store.put("zz", {})

    def test_unwritable_root_degrades_to_no_op(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a plain file where the store root should be")
        store = ArtifactStore(str(blocker))
        assert store.put(KEY, {"kind": "detection"}) is False
        assert store.stats.write_errors == 1

    def test_entry_count(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.entry_count() == 0
        store.put(KEY, {})
        store.put("cd" + "1" * 62, {})
        assert store.entry_count() == 2


# ---------------------------------------------------------------------------
# Canonical printing + fingerprints
# ---------------------------------------------------------------------------

class TestCanonicalPrint:
    def test_identical_builds_print_identically(self):
        assert print_module(compiled()) == print_module(compiled())

    def test_canonical_form_is_name_independent(self):
        m1, m2 = compiled(SRC), compiled(SRC_RENAMED)
        for name in ("f", "g"):
            a = print_function_canonical(m1.functions[name])
            b = print_function_canonical(m2.functions[name])
            assert a == b
            # ... and the plain printed forms really did differ.
            assert print_function(m1.functions[name]) != \
                print_function(m2.functions[name])

    def test_canonical_names_cover_locals_only(self):
        f = compiled().functions["f"]
        names = canonical_names(f)
        assert sorted(set(names.values()))[:2] == ["a0", "a1"]
        # Renames never leak into the default printed form.
        assert print_function(f) == print_function(f, None)

    def test_structural_change_changes_canonical_form(self):
        m1, m2 = compiled(), compiled()
        mutate(m2.functions["f"])
        assert print_function_canonical(m1.functions["f"]) != \
            print_function_canonical(m2.functions["f"])

    @pytest.mark.parametrize("seed", ["0", "4242"])
    def test_print_deterministic_across_hash_seeds(self, seed):
        """The canonical text (and so every content address) must not
        depend on the interpreter's hash randomisation — warm starts
        happen in a different process than the one that populated."""
        script = (
            "from repro.frontend import compile_c\n"
            "from repro.passes import optimize\n"
            "from repro.ir.printer import print_module, "
            "print_function_canonical\n"
            "from repro.workloads import get_workload\n"
            "for name in ('CG', 'histo'):\n"
            "    w = get_workload(name)\n"
            "    m = compile_c(w.source, w.name)\n"
            "    optimize(m)\n"
            "    print(print_module(m))\n"
            "    for f in m.functions.values():\n"
            "        if not f.is_declaration():\n"
            "            print(print_function_canonical(f))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH="src" + os.pathsep +
                   os.environ.get("PYTHONPATH", ""))
        out = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True,
            text=True, cwd=os.path.dirname(os.path.dirname(__file__)))
        assert out.returncode == 0, out.stderr
        digest = hashlib.sha256(out.stdout.encode()).hexdigest()
        # Same digest under both seeds and in this process.
        if not hasattr(TestCanonicalPrint, "_seed_digest"):
            TestCanonicalPrint._seed_digest = digest
        assert digest == TestCanonicalPrint._seed_digest

    @pytest.mark.parametrize(
        "workload", all_workloads(), ids=lambda w: w.name)
    def test_print_parse_print_fixed_point(self, workload):
        """print → parse → print is a fixed point for every function of
        every suite workload — the property that lets content hashes
        speak for IR structure (and process-mode detection trust its
        structural locators)."""
        module = compile_c(workload.source, workload.name)
        optimize(module)
        text = print_module(module)
        reparsed = parse_module(text, workload.name)
        assert print_module(reparsed) == text
        for name, function in module.functions.items():
            twin = reparsed.functions[name]
            assert print_function_canonical(twin) == \
                print_function_canonical(function)


class TestFingerprints:
    def test_same_structure_same_fingerprint(self):
        m1, m2 = compiled(SRC), compiled(SRC_RENAMED)
        assert function_fingerprint(m1.functions["f"], "cfg") == \
            function_fingerprint(m2.functions["f"], "cfg")

    def test_ir_edit_changes_fingerprint(self):
        m1, m2 = compiled(), compiled()
        mutate(m2.functions["f"])
        assert function_fingerprint(m1.functions["f"], "cfg") != \
            function_fingerprint(m2.functions["f"], "cfg")

    def test_config_keys_are_disjoint(self):
        f = compiled().functions["f"]
        assert function_fingerprint(f, "cfg-a") != \
            function_fingerprint(f, "cfg-b")

    def test_globals_enter_the_fingerprint(self):
        base = "define i64 @f(i64 %x) {\nentry:\n  ret i64 %x\n}\n"
        m1 = parse_module(base)
        m2 = parse_module("@tab = global [4 x double]\n\n" + base)
        optimize(m1), optimize(m2)
        assert globals_signature(m1) != globals_signature(m2)
        assert function_fingerprint(m1.functions["f"], "cfg") != \
            function_fingerprint(m2.functions["f"], "cfg")
        # ... but summaries are body-keyed (their facts don't read
        # globals), so they survive the declaration change.
        assert summary_fingerprint(m1.functions["f"]) == \
            summary_fingerprint(m2.functions["f"])

    def test_detector_config_signature_inputs(self):
        base = detection_config_signature(
            "lib", ("Reduction",), 100, 1000, "forest", True, True, "pp")
        assert base == detection_config_signature(
            "lib", ("Reduction",), 100, 1000, "forest", True, True, "pp")
        for changed in (
            detection_config_signature(
                "lib2", ("Reduction",), 100, 1000, "forest", True, True,
                "pp"),
            detection_config_signature(
                "lib", ("Reduction", "GEMM"), 100, 1000, "forest", True,
                True, "pp"),
            detection_config_signature(
                "lib", ("Reduction",), 101, 1000, "forest", True, True,
                "pp"),
            detection_config_signature(
                "lib", ("Reduction",), 100, 1000, "plan", True, True,
                "pp"),
            detection_config_signature(
                "lib", ("Reduction",), 100, 1000, "forest", False, True,
                "pp"),
            detection_config_signature(
                "lib", ("Reduction",), 100, 1000, "forest", True, True,
                "pp2"),
        ):
            assert changed != base

    def test_library_signature_tracks_loaded_sources(self):
        d1, d2 = IdiomDetector(), IdiomDetector()
        assert d1.compiler.library_signature() == \
            d2.compiler.library_signature()
        assert d1.config_signature() == d2.config_signature()
        d2.compiler.load(
            "Constraint Extra ( {x} is add instruction ) End")
        assert d1.compiler.library_signature() != \
            d2.compiler.library_signature()

    def test_pipeline_signature_names_every_pass(self):
        sig = pipeline_signature()
        assert "promote_allocas" in sig and "simplify_cfg" in sig


# ---------------------------------------------------------------------------
# Analysis summaries
# ---------------------------------------------------------------------------

class TestAnalysisSummary:
    def test_summary_roundtrip(self):
        f = compiled().functions["f"]
        summary = FunctionAnalyses(f).summary()
        again = AnalysisSummary.from_dict(summary.as_dict())
        assert again == summary
        assert summary.max_loop_depth == 1
        assert "phi" in summary.opcodes
        assert summary.opcodes == tuple(sorted(summary.opcodes))

    def test_adopt_summary_skips_recomputation(self):
        f = compiled().functions["f"]
        summary = FunctionAnalyses(f).summary()
        adopted = FunctionAnalyses(f)
        adopted.adopt_summary(summary)
        assert adopted.opcode_set == frozenset(summary.opcodes)
        assert adopted.max_loop_depth == summary.max_loop_depth
        # ... without ever having built loop info.
        assert adopted._loops is None


# ---------------------------------------------------------------------------
# End-to-end detection caching
# ---------------------------------------------------------------------------

def warm_fp(report):
    # Constants decoded from the wire format are fresh objects; compare
    # structurally (instructions still compare by identity inside).
    return report_fingerprint(report, by_identity=False)


class TestDetectionCache:
    def test_cold_and_warm_reports_bit_identical(self, tmp_path):
        module = compiled()
        cold = IdiomDetector().detect(module)
        det = IdiomDetector(cache=str(tmp_path))
        populate = det.detect(module)
        session = DetectionSession(det)
        warm = session.detect(module)
        assert warm_fp(cold) == warm_fp(populate) == warm_fp(warm)
        assert cold.stats.as_dict() == warm.stats.as_dict()
        assert session.cache_hits == 2 and session.cache_misses == 0
        # Warm matches reference the live IR, not copies.
        assert all(m.function is module.functions[m.function.name]
                   for m in warm.matches)

    @pytest.mark.parametrize("workers,mode",
                             [(2, "thread"), (2, "process")])
    def test_warm_through_worker_pools(self, tmp_path, workers, mode):
        module = compiled()
        cold = IdiomDetector().detect(module)
        det = IdiomDetector(cache=str(tmp_path))
        DetectionSession(det, workers=workers, mode=mode).detect(module)
        session = DetectionSession(det, workers=workers, mode=mode)
        warm = session.detect(module)
        assert session.cache_misses == 0
        assert warm_fp(warm) == warm_fp(cold)

    def test_editing_one_function_resolves_only_it(self, tmp_path):
        module = compiled()
        det = IdiomDetector(cache=str(tmp_path))
        det.detect(module)
        mutate(module.functions["g"])
        session = DetectionSession(det)
        warm = session.detect(module)
        assert session.cache_hits == 1
        assert session.cache_misses == 1
        assert warm_fp(warm) == warm_fp(IdiomDetector().detect(module))
        # The re-solved entry lands, so the next run is fully warm.
        session = DetectionSession(det)
        session.detect(module)
        assert session.cache_misses == 0

    def test_per_match_stats_survive_the_round_trip(self, tmp_path):
        """Plan/dynamic orderings attach per-(function, idiom) solve
        stats to each match; a warm report must restore them, not hand
        every match the function aggregate."""
        module = compiled()
        cold = IdiomDetector(ordering="plan").detect(module)
        det = IdiomDetector(ordering="plan", cache=str(tmp_path))
        det.detect(module)
        warm = DetectionSession(det).detect(module)
        assert [m.stats.as_dict() for m in cold.matches] == \
            [m.stats.as_dict() for m in warm.matches]
        assert [m.stats.max_steps for m in cold.matches] == \
            [m.stats.max_steps for m in warm.matches]
        # Distinct idioms of one function really do carry distinct
        # stats, so the assertion above is not vacuous.
        per_match = {tuple(sorted(m.stats.as_dict().items()))
                     for m in cold.matches}
        assert len(per_match) > 1

    def test_forest_stats_sharing_survives_round_trip(self, tmp_path):
        """Forest-mode matches of one function share a single stats
        object; the interned stats pool must preserve that sharing, not
        just the values."""
        module = compiled("""
        double h(int n, double *x, double *q) {
          double s = 0.0;
          for (int i = 0; i < n; i++) {
            int k = (int) x[i];
            q[k] = q[k] + 1.0;
            s = s + x[i];
          }
          return s;
        }
        """)
        cold = IdiomDetector().detect(module)
        assert len(cold.matches) >= 2
        assert len({id(m.stats) for m in cold.matches}) == 1
        det = IdiomDetector(cache=str(tmp_path))
        det.detect(module)
        warm = DetectionSession(det).detect(module)
        assert len({id(m.stats) for m in warm.matches}) == 1
        assert warm.matches[0].stats.as_dict() == \
            cold.matches[0].stats.as_dict()

    def test_cache_accepts_pathlib_paths(self, tmp_path):
        module = compiled()
        det = IdiomDetector(cache=tmp_path)  # a Path, not a str
        det.detect(module)
        session = DetectionSession(det)
        session.detect(module)
        assert session.cache_misses == 0

    def test_undecodable_entry_is_unlinked(self, tmp_path):
        """An entry that parses as JSON but fails match decoding must be
        dropped from disk, not re-parsed (and re-failed) forever."""
        module = compiled()
        det = IdiomDetector(cache=str(tmp_path))
        cold = det.detect(module)
        key = det.cache.function_key(module.functions["f"],
                                     globals_signature(module))
        path = det.cache.store._path(key)
        with open(path) as fh:
            payload = json.load(fh)
        payload["matches"] = [["Reduction", [["x", ["i", 99, 99]]], None]]
        with open(path, "w") as fh:
            json.dump(payload, fh)
        session = DetectionSession(det)
        warm = session.detect(module)
        assert session.cache_misses == 1
        assert warm_fp(warm) == warm_fp(cold)
        assert not os.path.exists(path) or \
            json.load(open(path))["matches"] != payload["matches"]

    def test_corrupt_entry_is_resolved_not_raised(self, tmp_path):
        module = compiled()
        det = IdiomDetector(cache=str(tmp_path))
        cold = det.detect(module)
        key = det.cache.function_key(module.functions["f"],
                                     globals_signature(module))
        with open(det.cache.store._path(key), "w") as fh:
            fh.write("garbage")
        session = DetectionSession(det)
        warm = session.detect(module)
        assert session.cache_misses == 1
        assert warm_fp(warm) == warm_fp(cold)

    def test_config_change_does_not_hit_other_entries(self, tmp_path):
        module = compiled()
        full = IdiomDetector(cache=str(tmp_path))
        full.detect(module)
        narrow = IdiomDetector(idioms=["Reduction"],
                               cache=str(tmp_path))
        session = DetectionSession(narrow)
        report = session.detect(module)
        assert session.cache_misses == 2  # nothing served across configs
        assert {m.idiom for m in report.matches} <= {"Reduction"}
        cold = IdiomDetector(idioms=["Reduction"]).detect(module)
        assert warm_fp(report) == warm_fp(cold)

    def test_renamed_module_is_served_from_cache(self, tmp_path):
        """Content addressing, not name addressing: a structurally
        identical module warms from another module's entries."""
        det = IdiomDetector(cache=str(tmp_path))
        det.detect(compiled(SRC))
        renamed = compiled(SRC_RENAMED, name="other")
        session = DetectionSession(det)
        warm = session.detect(renamed)
        assert session.cache_misses == 0
        assert warm_fp(warm) == \
            warm_fp(IdiomDetector().detect(renamed))

    def test_warm_start_from_another_process(self, tmp_path):
        """The cross-session story: a different process (different hash
        seed) populates the store; this process warm-starts from it."""
        script = (
            "import sys\n"
            "from repro.frontend import compile_c\n"
            "from repro.passes import optimize\n"
            "from repro.idioms import IdiomDetector\n"
            "module = compile_c(sys.stdin.read(), 'm')\n"
            "optimize(module)\n"
            "IdiomDetector(cache=sys.argv[1]).detect(module)\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="1234",
                   PYTHONPATH="src" + os.pathsep +
                   os.environ.get("PYTHONPATH", ""))
        out = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)], env=env,
            input=SRC, capture_output=True, text=True,
            cwd=os.path.dirname(os.path.dirname(__file__)))
        assert out.returncode == 0, out.stderr
        module = compiled()
        det = IdiomDetector(cache=str(tmp_path))
        session = DetectionSession(det)
        warm = session.detect(module)
        assert session.cache_misses == 0
        assert warm_fp(warm) == warm_fp(IdiomDetector().detect(module))

    def test_detect_idioms_convenience(self, tmp_path):
        module = compiled()
        first = detect_idioms(module, cache_dir=str(tmp_path))
        second = detect_idioms(module, cache_dir=str(tmp_path))
        assert warm_fp(first) == warm_fp(second)
        assert ArtifactStore(str(tmp_path)).entry_count() > 0

    def test_loading_idl_after_construction_rebinds_the_cache(
            self, tmp_path):
        """The cache signature must track the live compiler state: IDL
        loaded after the detector was built may not be served stale
        entries keyed for the old library."""
        module = compiled()
        det = IdiomDetector(cache=str(tmp_path))
        det.detect(module)
        before = det.cache.config_signature
        det.compiler.load(
            "Constraint Extra ( {x} is add instruction ) End")
        assert det.cache.config_signature != before
        session = DetectionSession(det)
        session.detect(module)
        assert session.cache_misses == 2  # nothing served across libraries

    def test_detector_rejects_foreign_cache_objects(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(IDLError):
            IdiomDetector(cache=DetectionCache(store, "stale-signature"))

    def test_summaries_are_persisted_and_adoptable(self, tmp_path):
        module = compiled()
        det = IdiomDetector(cache=str(tmp_path))
        det.detect(module)
        summary = det.cache.load_summary(module.functions["f"])
        assert summary is not None
        assert summary == FunctionAnalyses(module.functions["f"]).summary()


class TestRunnerAndBench:
    def test_compile_workload_cache_dir(self, tmp_path):
        from repro.idioms.scheduler import encode_solution
        from repro.runtime.runner import compile_workload

        def wire_fp(report):
            # The two runs compile separate module instances, so compare
            # via the structural wire format, not object identity.
            return [(m.idiom, m.function.name,
                     encode_solution(m.solution, m.function))
                    for m in report.matches]

        w = next(x for x in all_workloads() if x.name == "histo")
        first = compile_workload(w.name, w.source,
                                 cache_dir=str(tmp_path))
        second = compile_workload(w.name, w.source,
                                  cache_dir=str(tmp_path))
        assert wire_fp(first.report) == wire_fp(second.report)
        assert ArtifactStore(str(tmp_path)).entry_count() > 0

    def test_bench_cache_smoke(self, tmp_path):
        from repro.experiments import bench_cache

        result = bench_cache.run_benchmark(
            ["histo", "sgemm"], cache_dir=str(tmp_path), rounds=2,
            full=False)
        assert result["suite"]["match_sets_identical"]
        assert result["edit_session"]["only_mutated_resolved"]
        for cell in result["matrix"].values():
            assert cell["identical"]
        assert bench_cache.check_regression(result, max_ratio=100.0) == []
