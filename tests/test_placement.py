"""Registry, residency planner, runtime tracker, and rejection paths."""

import pickle

import numpy as np
import pytest

from repro.backends import blas, sparse
from repro.backends.api import (
    API_DESCRIPTORS,
    OPENMP_RT,
    ApiDescriptor,
    ApiRuntime,
    FrozenMap,
)
from repro.backends.registry import BackendRegistry, default_registry
from repro.errors import BackendError, PlacementError
from repro.platform import CPU, GPU, MACHINES
from repro.platform.placement import (
    HOST,
    PlacementRequest,
    ResidencyState,
    SitePlacement,
    evaluate_assignment,
    evaluate_concurrent,
    plan_concurrent,
    plan_module,
)
from repro.runtime import (
    compile_workload,
    outputs_identical,
    run_accelerated,
    run_original,
)
from repro.runtime.memory import Buffer, Pointer


# ---------------------------------------------------------------------------
# Descriptor immutability (process-pool safety)
# ---------------------------------------------------------------------------

class TestDescriptorImmutability:
    def test_efficiency_is_frozen(self):
        d = API_DESCRIPTORS["MKL"]
        assert isinstance(d.efficiency, FrozenMap)
        with pytest.raises(TypeError):
            d.efficiency["matrix_op"] = 1.0
        with pytest.raises(Exception):
            d.launch_overhead_us = 0.0

    def test_descriptor_is_hashable(self):
        d = ApiDescriptor("X", "library", ("cpu",), {"stencil": 0.5})
        assert hash(d) == hash(
            ApiDescriptor("X", "library", ("cpu",), {"stencil": 0.5}))
        assert len({d, API_DESCRIPTORS["MKL"], API_DESCRIPTORS["MKL"]}) == 2

    def test_descriptor_pickles(self):
        """Safe to ship to process-pool detection workers."""
        d = API_DESCRIPTORS["cuSPARSE"]
        clone = pickle.loads(pickle.dumps(d))
        assert clone == d
        assert hash(clone) == hash(d)
        assert clone.supports("gpu", "sparse_matrix_op")

    def test_frozen_map_mapping_api(self):
        m = FrozenMap({"a": 1, "b": 2})
        assert m["a"] == 1 and m.get("c", 7) == 7
        assert set(m) == {"a", "b"} and len(m) == 2
        assert pickle.loads(pickle.dumps(m)) == m


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_default_entries(self):
        registry = default_registry()
        assert registry.names() == ["blas", "sparse", "halide", "lift",
                                    "fft", "parallel-cpu"]

    def test_contracts_by_category(self):
        registry = default_registry()
        assert [c.backend for c in registry.contracts_for("stencil")] == \
            ["halide", "lift", "parallel-cpu"]
        spmv = registry.contracts_for("sparse_matrix_op")[0]
        assert spmv.kernels["spmv"] is sparse.csr_spmv
        gemm = registry.contracts_for("matrix_op")[0]
        assert gemm.kernels["matmul_tt"] is blas.matmul_tt

    def test_allowed_filtering(self):
        registry = default_registry()
        apis = {d.name for d in registry.apis_for("scalar_reduction", "cpu")}
        assert apis == {"Halide", "Lift", "OpenMP"}
        only = registry.apis_for("scalar_reduction", "cpu",
                                 allowed=["lift"])
        assert [d.name for d in only] == ["Lift"]
        with pytest.raises(BackendError):
            registry.entries(allowed=["nope"])

    def test_new_backends_stay_out_of_table3_columns(self):
        """API_DESCRIPTORS reproduces the paper's Table 3 columns; the
        planner-only APIs are reachable through the registry alone."""
        assert set(API_DESCRIPTORS) == {
            "MKL", "cuBLAS", "clBLAS", "CLBlast", "cuSPARSE", "clSPARSE",
            "libSPMV", "Halide", "Lift"}
        registry_apis = {d.name for d in default_registry().descriptors()}
        assert registry_apis == set(API_DESCRIPTORS) | {
            "OpenMP", "FFTW", "cuFFT"}

    def test_duplicate_registration_rejected(self):
        registry = BackendRegistry()
        blas.register_backend(registry)
        with pytest.raises(BackendError):
            blas.register_backend(registry)


# ---------------------------------------------------------------------------
# Residency model
# ---------------------------------------------------------------------------

class TestResidencyState:
    def test_resident_reads_are_free(self):
        state = ResidencyState()
        assert state.access("gpu", 1, 100, "r") == [("gpu", 100)]
        assert state.access("gpu", 1, 100, "r") == []

    def test_interleaved_writer_forces_recharge(self):
        """The exact accounting the lazy ``bytes/calls`` fallback misses:
        a host-side write between two device reads invalidates the
        device copy, so the second read pays the transfer again."""
        state = ResidencyState()
        assert state.access("gpu", 1, 100, "r") == [("gpu", 100)]
        assert state.access(HOST, 1, 100, "w") == []
        assert state.access("gpu", 1, 100, "r") == [("gpu", 100)]

    def test_device_write_invalidates_host(self):
        state = ResidencyState()
        state.access("gpu", 1, 100, "rw")
        assert state.device_only() == {1: "gpu"}
        assert state.access(HOST, 1, 100, "r") == [("gpu", 100)]
        assert state.device_only() == {}

    def test_device_to_device_stages_through_host(self):
        state = ResidencyState()
        state.access("gpu", 1, 100, "w")
        moves = state.access("igpu", 1, 100, "r")
        assert moves == [("gpu", 100), ("igpu", 100)]


def _synthetic_runtime():
    """Two sites ping-ponging over one shared buffer: site 0 reads it,
    site 1 writes it, three rounds."""
    runtime = ApiRuntime()
    handler = lambda args, engine: None  # noqa: E731
    reader = runtime.new_site("Reduction", "scalar_reduction", handler,
                              reads=(0,))
    writer = runtime.new_site("Stencil1D", "stencil", handler,
                              reads=(0,), writes=(1,))
    reader.stats = {"calls": 3, "elements": 3e6, "flops_per_element": 2,
                    "bytes": 24e6}
    writer.stats = {"calls": 3, "elements": 3e6, "flops_per_element": 4,
                    "bytes": 48e6}
    shared, other = 1001, 1002
    events = []
    for _ in range(3):
        events.append((reader.call_id, ((shared, 8e6, "r"),)))
        events.append((writer.call_id, ((other, 8e6, "r"),
                                        (shared, 8e6, "w"))))
    return runtime, events


class TestPlanner:
    def test_planner_never_worse_than_greedy(self):
        runtime, events = _synthetic_runtime()
        sites = runtime.all_sites()
        greedy = plan_module(sites, events, strategy="greedy",
                             host_seconds=0.01)
        for strategy in ("beam", "exhaustive"):
            plan = plan_module(sites, events, strategy=strategy,
                               host_seconds=0.01)
            assert plan.total_s <= greedy.total_s * (1 + 1e-12), strategy

    def test_exhaustive_is_optimal(self):
        """Exhaustive equals a hand-rolled brute force over the space."""
        import itertools

        from repro.platform.placement import candidate_placements

        runtime, events = _synthetic_runtime()
        sites = runtime.all_sites()
        cands = [candidate_placements(s) for s in sites]
        best = None
        for combo in itertools.product(*cands):
            assignment = {s.call_id: p for s, p in zip(sites, combo)}
            plan = evaluate_assignment(sites, events, assignment)
            if best is None or plan.total_s < best:
                best = plan.total_s
        exhaustive = plan_module(sites, events, strategy="exhaustive")
        assert exhaustive.total_s == pytest.approx(best, rel=1e-12)

    def test_residency_vs_legacy_lazy_accounting(self):
        """With an interleaved writer, the exact model charges the reader
        every round; the legacy lazy division charges it once."""
        runtime, events = _synthetic_runtime()
        sites = runtime.all_sites()
        lift = API_DESCRIPTORS["Lift"]
        assignment = {0: SitePlacement(lift, GPU),
                      1: SitePlacement(OPENMP_RT, CPU)}
        plan = evaluate_assignment(sites, events, assignment)
        reader = plan.placed[0]
        assert reader.transfer_events == 3  # recharged after every write
        from repro.platform.cost import site_cost
        lazy = site_cost(sites[0], lift, GPU, lazy_transfers=True)
        assert reader.transfer_s > lazy.transfer_s  # fallback undercharges

    def test_backends_restriction(self):
        runtime, events = _synthetic_runtime()
        sites = runtime.all_sites()
        plan = plan_module(sites, events, strategy="beam",
                           backends=["parallel-cpu"])
        assert {p.placement.api.name for p in plan.placed} == {"OpenMP"}
        with pytest.raises((PlacementError, BackendError)):
            plan_module(sites, events, strategy="beam", backends=["fft"])

    def test_empty_sites(self):
        plan = plan_module([], [], strategy="beam", host_seconds=0.5)
        assert plan.total_s == 0.5 and plan.placed == []

    def test_plan_annotates_sites(self):
        runtime, events = _synthetic_runtime()
        sites = runtime.all_sites()
        plan = plan_module(sites, events, strategy="beam")
        for site in sites:
            assert site.placement is plan.assignment()[site.call_id]

    def test_exhaustive_degradation_is_labelled(self):
        """Over-large spaces fall back to beam — and say so, rather than
        claiming the optimum was enumerated."""
        runtime, events = _synthetic_runtime()
        sites = runtime.all_sites()
        plan = plan_module(sites, events, strategy="exhaustive",
                           exhaustive_limit=1)
        assert plan.strategy == "beam"
        small = plan_module(sites, events, strategy="exhaustive")
        assert small.strategy == "exhaustive"


class TestRuntimeTracker:
    def test_measured_transfers_match_model(self):
        """Live tracking under a placement reproduces the simulation."""
        runtime = ApiRuntime()
        handler = lambda args, engine: None  # noqa: E731
        reader = runtime.new_site("Reduction", "scalar_reduction", handler,
                                  reads=(0,))
        writer = runtime.new_site("Stencil1D", "stencil", handler,
                                  writes=(0,))
        buffer = Buffer.from_numpy("shared", np.zeros(1000))
        pointer = Pointer(buffer, 0)
        runtime.set_placement({reader.call_id: "gpu",
                               writer.call_id: "host"})
        for _ in range(3):
            runtime.dispatch(reader.callee, [pointer], None)
            runtime.dispatch(writer.callee, [pointer], None)
        # Host write invalidates the GPU copy every round: 3 uploads.
        assert reader.stats["measured_xfer_events"] == 3
        assert reader.stats["measured_xfer_bytes"] == 3 * buffer.nbytes
        # And the recorded event log replays to the same transfer count.
        lift = API_DESCRIPTORS["Lift"]
        omp = OPENMP_RT
        plan = evaluate_assignment(
            runtime.all_sites(), runtime.events,
            {reader.call_id: SitePlacement(lift, GPU),
             writer.call_id: SitePlacement(omp, CPU)})
        assert plan.placed[0].transfer_events == 3


# ---------------------------------------------------------------------------
# Transformer rejection paths: the original loop must survive, bit-exact
# ---------------------------------------------------------------------------

class TestRejectionPaths:
    def test_escaping_value_leaves_loop_intact(self):
        src = """
double esc(int n, double *x) {
  double t = 0.0;
  double u = 0.0;
  for (int i = 0; i < n; i++) {
    t = t + x[i];
    u = t * 2.0;
  }
  return u;
}
"""
        rng = np.random.default_rng(11)
        x = rng.uniform(-1, 1, 40)
        w1 = compile_workload("t", src)
        assert w1.report.total() >= 1  # the reduction is still matched
        r1 = run_original(w1, "esc", {"n": 40, "x": x})
        w2 = compile_workload("t", src)
        r2 = run_accelerated(w2, "esc", {"n": 40, "x": x})
        assert r2.rejected and "escapes" in r2.rejected[0].reason
        assert not r2.api_runtime.all_sites()
        # The loop ran unmodified: identical dynamic work, identical bits.
        assert r2.total_instructions == r1.total_instructions
        assert outputs_identical(r1, r2)

    def test_aliasing_guard_trip_falls_back_to_loop(self):
        src = """
void sm(int n, double *out, double *in) {
  for (int i = 1; i < n; i++)
    out[i] = 0.25*in[i-1] + 0.5*in[i] + 0.25*in[i+1];
}
void drive(int n, double *a, double *b) {
  sm(n, a, b);
  sm(n, a, a);
}
"""
        rng = np.random.default_rng(12)
        inputs = {"n": 62, "a": rng.uniform(0, 1, 64),
                  "b": rng.uniform(0, 1, 64)}
        w1 = compile_workload("t", src)
        r1 = run_original(w1, "drive", dict(inputs))
        w2 = compile_workload("t", src)
        r2 = run_accelerated(w2, "drive", dict(inputs))
        sites = r2.api_runtime.all_sites()
        assert len(sites) == 1
        guards = [s for s in r2.api_runtime.sites.values()
                  if s.kind == "guard"]
        assert len(guards) == 1  # multi-versioned, original loop retained
        # First call (distinct buffers) took the fast path; the aliased
        # second call tripped the guard and ran the original loop.
        assert sites[0].stats["calls"] == 1
        assert outputs_identical(r1, r2)

    def test_guard_fast_path_when_no_aliasing(self):
        src = """
void sm(int n, double *out, double *in) {
  for (int i = 1; i < n; i++)
    out[i] = 0.5*in[i-1] + 0.5*in[i+1];
}
void drive(int n, double *a, double *b) {
  sm(n, a, b);
  sm(n, b, a);
}
"""
        rng = np.random.default_rng(13)
        inputs = {"n": 30, "a": rng.uniform(0, 1, 32),
                  "b": rng.uniform(0, 1, 32)}
        w2 = compile_workload("t", src)
        r2 = run_accelerated(w2, "drive", dict(inputs))
        assert r2.api_runtime.all_sites()[0].stats["calls"] == 2

    def test_backends_flag_limits_lowering(self):
        src = """
double s(int n, double *x) {
  double t = 0.0;
  for (int i = 0; i < n; i++) t = t + x[i];
  return t;
}
"""
        x = np.linspace(-1, 1, 50)
        w1 = compile_workload("t", src)
        r1 = run_original(w1, "s", {"n": 50, "x": x})
        # No backend in scope lowers scalar reductions: rejected, intact.
        w2 = compile_workload("t", src)
        r2 = run_accelerated(w2, "s", {"n": 50, "x": x},
                             backends=["blas", "sparse"])
        assert r2.rejected and not r2.api_runtime.all_sites()
        assert outputs_identical(r1, r2)
        # The parallel-cpu fallback contract can lower it alone.
        w3 = compile_workload("t", src)
        r3 = run_accelerated(w3, "s", {"n": 50, "x": x},
                             backends=["parallel-cpu"])
        sites = r3.api_runtime.all_sites()
        assert [s.backend for s in sites] == ["parallel-cpu"]
        assert outputs_identical(r1, r3) or \
            np.allclose(r1.value, r3.value)


# ---------------------------------------------------------------------------
# CLI + benchmark smoke
# ---------------------------------------------------------------------------

class TestCliAndBench:
    def test_list_flag(self, capsys):
        from repro.experiments.harness import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "parallel-cpu" in out and "fft" in out
        assert "Placement strategies" in out
        assert "Execution tiers" in out
        vm_line = next(line for line in out.splitlines()
                       if line.strip().startswith("vm "))
        assert "(default)" in vm_line
        jit_line = next(line for line in out.splitlines()
                        if line.strip().startswith("jit "))
        assert "profile-guided" in jit_line

    def test_bench_offload_invariants_on_subset(self):
        from repro.experiments.bench_offload import (
            check_invariants,
            run_benchmark,
        )

        result = run_benchmark(["spmv", "histo"])
        assert check_invariants(result) == []
        rows = result["workloads"]
        assert rows["spmv"]["planner_ms"] <= rows["spmv"]["greedy_ms"]
        assert rows["histo"]["engines_bit_identical"]

    def test_placement_experiment(self):
        from repro.experiments import harness

        ev = harness.evaluate_workload(
            [w for w in __import__("repro.workloads", fromlist=["x"])
             .all_workloads() if w.name == "spmv"][0])
        greedy, planner = harness.workload_plans(ev, "beam")
        assert planner.total_s <= greedy.total_s * (1 + 1e-12)
        assert planner.placed and planner.placed[0].placement.api.name


# ---------------------------------------------------------------------------
# Multi-request (contention-aware) placement
# ---------------------------------------------------------------------------

class TestConcurrentPlacement:
    @staticmethod
    def _requests(n, host_seconds=0.01):
        requests = []
        for _ in range(n):
            runtime, events = _synthetic_runtime()
            requests.append(PlacementRequest(
                runtime.all_sites(), events, host_seconds=host_seconds))
        return requests

    def test_evaluate_concurrent_is_deterministic(self):
        requests = self._requests(3)
        assignments = [plan_module(r.sites, r.events,
                                   host_seconds=r.host_seconds).assignment()
                       for r in requests]
        a = evaluate_concurrent(requests, assignments)
        b = evaluate_concurrent(requests, assignments)
        assert a.completions == b.completions
        assert a.wait_s == b.wait_s
        assert a.sum_completion_s == b.sum_completion_s

    def test_shared_device_serialises(self):
        """Identical single-site requests pinned on one device queue up:
        each later tenant waits at least as long as the one before it."""
        lift = API_DESCRIPTORS["Lift"]
        requests = []
        for _ in range(4):
            runtime = ApiRuntime()
            site = runtime.new_site("Stencil1D", "stencil",
                                    lambda args, engine: None)
            site.stats = {"calls": 1, "elements": 1e6,
                          "flops_per_element": 4, "bytes": 8e6}
            requests.append(PlacementRequest([site]))
        assignments = [{0: SitePlacement(lift, GPU)} for _ in requests]
        plan = evaluate_concurrent(requests, assignments)
        assert plan.wait_s[0] == 0.0
        for earlier, later in zip(plan.wait_s, plan.wait_s[1:]):
            assert later >= earlier
        assert plan.wait_s[-1] > 0.0
        assert sorted(plan.completions) == plan.completions
        # The same work spread across cpu copies shares nothing.
        omp = {0: SitePlacement(OPENMP_RT, CPU)}
        spread = evaluate_concurrent(requests, [omp] * len(requests))
        assert spread.wait_s == [0.0] * len(requests)

    def test_joint_never_worse_than_independent(self):
        requests = self._requests(4)
        independent = [plan_module(r.sites, r.events,
                                   host_seconds=r.host_seconds).assignment()
                       for r in requests]
        solo = evaluate_concurrent(requests, independent)
        joint = plan_concurrent(requests, independent=independent)
        assert joint.strategy == "joint"
        assert joint.sum_completion_s <= \
            solo.sum_completion_s * (1 + 1e-12)
        assert len(joint.assignments) == len(requests)
        assert joint.makespan_s <= solo.makespan_s * (1 + 1e-9) or \
            joint.sum_completion_s < solo.sum_completion_s

    def test_joint_spreads_contended_tenants(self):
        """When every tenant's solo-optimal device is the same one, the
        joint planner moves someone: under contention the batch finishes
        strictly sooner than everyone-queues-for-their-favourite."""
        lift = API_DESCRIPTORS["Lift"]
        requests = []
        for _ in range(6):
            runtime = ApiRuntime()
            site = runtime.new_site("Stencil1D", "stencil",
                                    lambda args, engine: None)
            site.stats = {"calls": 8, "elements": 4e6,
                          "flops_per_element": 40, "bytes": 32e6}
            requests.append(PlacementRequest([site]))
        pinned = [{0: SitePlacement(lift, GPU)} for _ in requests]
        queued = evaluate_concurrent(requests, pinned)
        joint = plan_concurrent(requests)
        assert joint.sum_completion_s <= queued.sum_completion_s
        locations = {loc for i in range(len(requests))
                     for loc in joint.locations(i).values()}
        if joint.sum_completion_s < queued.sum_completion_s:
            assert len(locations) > 1  # actually spread out

    def test_mismatched_lengths_rejected(self):
        requests = self._requests(2)
        with pytest.raises(PlacementError):
            evaluate_concurrent(requests, [{}])
