"""Measured cost calibration: profile round-trips, persistence,
fingerprint guards, the probe harness, and the cost-model fallback
contract (static constants only where the profile is silent)."""

import json
import os

import pytest

from repro.backends.api import ApiCallSite, ApiDescriptor
from repro.cache import ArtifactStore
from repro.errors import CalibrationError
from repro.platform.calibrate import (
    CalibrationProfile,
    Calibrator,
    EFFICIENCY_FLOOR,
    PROFILE_VERSION,
    load_profile,
    machine_identity,
    profile_store_key,
    read_profile_json,
    registry_signature,
    save_profile,
    write_profile_json,
)
from repro.platform.cost import (
    DEFAULT_EFFICIENCY,
    OPENCL,
    OPENMP,
    best_api_cost,
    effective_efficiency,
    launch_overhead_us,
    reference_time,
    site_cost,
    transfer_link,
)
from repro.platform.machine import CPU, GPU, MACHINES
from repro.platform.placement import scaled_stats, site_at_scale


def _site(category="matrix_op", calls=4, elements=1000, flops=2.0,
          nbytes=16000):
    site = ApiCallSite(0, "idiom", category, None)
    site.stats = {"calls": calls, "elements": elements,
                  "flops_per_element": flops, "bytes": nbytes}
    return site


def _profile(**overrides):
    base = dict(
        machine_id=machine_identity(),
        registry_signature=registry_signature(),
        created_at=123.0,
        host={"gemm_gflops": 40.0},
        category_fraction={"matrix_op": 0.5},
        efficiency={"cuBLAS|matrix_op|gpu": 0.31, "MKL|matrix_op|cpu": 0.5},
        launch_us={"cuBLAS|gpu": 20.0},
        link_gbs={"gpu": 4.0},
        link_latency_us={"gpu": 30.0},
        scalar_ns={"load": 2.4, "fmul": 1.5},
        probes={"copy_gbs": 4.0},
    )
    base.update(overrides)
    return CalibrationProfile(**base)


# ---------------------------------------------------------------------------
# Profile serialisation and persistence
# ---------------------------------------------------------------------------

def test_profile_dict_roundtrip():
    profile = _profile()
    clone = CalibrationProfile.from_dict(profile.as_dict())
    assert clone == profile
    assert clone.efficiency_for("cuBLAS", "matrix_op", "gpu") == 0.31
    assert clone.efficiency_for("cuBLAS", "matrix_op", "cpu") is None
    assert clone.launch_us_for("cuBLAS", "gpu") == 20.0
    assert clone.launch_us_for("MKL", "cpu") is None
    assert clone.link_for("gpu") == (4.0, 30.0)
    assert clone.link_for("igpu") is None


def test_profile_version_and_shape_guards():
    payload = _profile().as_dict()
    payload["profile_version"] = PROFILE_VERSION + 1
    with pytest.raises(CalibrationError):
        CalibrationProfile.from_dict(payload)
    with pytest.raises(CalibrationError):
        CalibrationProfile.from_dict({"profile_version": PROFILE_VERSION})
    with pytest.raises(CalibrationError):
        CalibrationProfile.from_dict("not a dict")


def test_store_roundtrip_and_corruption(tmp_path):
    store = ArtifactStore(str(tmp_path))
    profile = _profile()
    assert save_profile(profile, store)
    loaded = load_profile(store)
    assert loaded == profile

    # Corrupt the stored entry in place: load degrades to a miss.
    key = profile_store_key(profile.machine_id,
                            profile.registry_signature)
    [path] = [os.path.join(root, name)
              for root, _, names in os.walk(tmp_path)
              for name in names if key[:8] in name]
    with open(path, "w") as fh:
        fh.write("{ torn write")
    assert load_profile(ArtifactStore(str(tmp_path))) is None


def test_store_rejects_stale_signature(tmp_path):
    """An entry whose recorded signature disagrees with the current
    registry reads back as None — never as stale parameters."""
    store = ArtifactStore(str(tmp_path))
    signature = registry_signature()
    stale = _profile(registry_signature="0" * 64)
    store.put(profile_store_key(machine_identity(), signature),
              {"profile": stale.as_dict()})
    assert load_profile(store) is None


def test_json_file_roundtrip(tmp_path):
    path = str(tmp_path / "prof.json")
    profile = _profile()
    write_profile_json(profile, path)
    assert read_profile_json(path) == profile
    with open(path) as fh:
        assert json.load(fh)["profile"]["machine_id"] == profile.machine_id

    with open(path, "w") as fh:
        fh.write("not json")
    assert read_profile_json(path) is None
    with pytest.raises(CalibrationError):
        read_profile_json(path, strict=True)
    with pytest.raises(CalibrationError):
        read_profile_json(str(tmp_path / "missing.json"), strict=True)


def test_registry_signature_tracks_constants():
    base = registry_signature()
    assert base == registry_signature()  # deterministic
    altered = dict(MACHINES)
    altered["gpu"] = GPU.__class__(
        name="gpu", description=GPU.description,
        peak_gflops=GPU.peak_gflops + 1,
        mem_bandwidth_gbs=GPU.mem_bandwidth_gbs,
        transfer_gbs=GPU.transfer_gbs,
        transfer_latency_us=GPU.transfer_latency_us, cores=GPU.cores)
    assert registry_signature(machines=altered) != base


# ---------------------------------------------------------------------------
# The measuring harness
# ---------------------------------------------------------------------------

def test_fast_calibrator_produces_sane_profile():
    profile = Calibrator(fast=True, repeats=1).run()
    assert profile.machine_id == machine_identity()
    assert profile.matches(registry_signature())
    for category, fraction in profile.category_fraction.items():
        assert 0.0 < fraction <= 1.0, category
    assert profile.efficiency, "no efficiencies derived"
    for key, eff in profile.efficiency.items():
        assert EFFICIENCY_FLOOR <= eff <= 1.0, key
    for device in ("igpu", "gpu"):
        gbs, latency = profile.link_for(device)
        assert gbs > 0 and latency > 0
    assert profile.scalar_ns is not None
    assert all(v >= 0 for v in profile.scalar_ns.values())
    assert any(v > 0 for v in profile.scalar_ns.values())
    # Profiles persist through the store they were measured for.
    assert profile.sequential_seconds({"load": 1000}) > 0


# ---------------------------------------------------------------------------
# Cost-model fallback contract
# ---------------------------------------------------------------------------

def test_default_efficiency_is_shared_prior():
    assert DEFAULT_EFFICIENCY == 0.3
    site = _site(category="spectral_op")
    api = ApiDescriptor("X", "library", ("cpu",), {"matrix_op": 0.9}, 5.0)
    assert effective_efficiency(site, api, CPU) == DEFAULT_EFFICIENCY


def test_profile_overrides_with_static_fallback():
    site = _site()
    cublas = ApiDescriptor("cuBLAS", "library", ("gpu",),
                           {"matrix_op": 0.92}, 8.0)
    profile = _profile()
    assert effective_efficiency(site, cublas, GPU) == 0.92
    assert effective_efficiency(site, cublas, GPU, profile) == 0.31
    assert launch_overhead_us(cublas, GPU, profile) == 20.0
    # The profile covers no cpu link; host memory stays infinite.
    assert transfer_link(CPU, profile) == (float("inf"), 0.0)
    assert transfer_link(GPU, profile) == (4.0, 30.0)
    assert transfer_link(GPU) == (GPU.transfer_gbs,
                                  GPU.transfer_latency_us)


def test_site_cost_lazy_vs_eager_transfer():
    """Regression for the collapsed transfer branch: eager charges every
    call's latency and the full byte volume; lazy charges the resident
    per-call division plus one upload+download latency bracket."""
    calls, nbytes = 4, 16000.0
    site = _site(calls=calls, nbytes=nbytes)
    api = ApiDescriptor("X", "library", ("gpu",), {"matrix_op": 0.5}, 8.0)
    eager = site_cost(site, api, GPU, lazy_transfers=False)
    lazy = site_cost(site, api, GPU, lazy_transfers=True)
    link = GPU.transfer_gbs * 1e9
    assert eager.transfer_s == pytest.approx(
        nbytes / link + calls * GPU.transfer_latency_us * 1e-6)
    assert lazy.transfer_s == pytest.approx(
        nbytes / calls / link + 2 * GPU.transfer_latency_us * 1e-6)
    assert lazy.transfer_s < eager.transfer_s
    # Same breakdown otherwise: the branch only changes transfer.
    assert eager.compute_s == lazy.compute_s
    assert eager.launch_s == lazy.launch_s
    # Host memory never pays transfer, under either policy.
    api_cpu = ApiDescriptor("Y", "library", ("cpu",),
                            {"matrix_op": 0.5}, 8.0)
    assert site_cost(site, api_cpu, CPU, lazy_transfers=False).transfer_s \
        == 0.0
    assert site_cost(site, api_cpu, CPU, lazy_transfers=True).transfer_s \
        == 0.0


def test_best_api_cost_tie_breaks_to_earliest():
    site = _site()
    a = ApiDescriptor("A", "library", ("cpu",), {"matrix_op": 0.5}, 5.0)
    b = ApiDescriptor("B", "library", ("cpu",), {"matrix_op": 0.5}, 5.0)
    best_ab = best_api_cost(site, [a, b], CPU)
    best_ba = best_api_cost(site, [b, a], CPU)
    assert best_ab[0] is a
    assert best_ba[0] is b
    assert best_ab[1].total_s == best_ba[1].total_s
    # No applicable API -> None, not an arbitrary pick.
    gpu_only = ApiDescriptor("G", "library", ("gpu",),
                             {"matrix_op": 0.9}, 8.0)
    assert best_api_cost(site, [gpu_only], CPU) is None


def test_reference_time_amdahl():
    seq = 10.0
    half = reference_time(seq, 0.5, OPENMP)
    assert half == pytest.approx(5.0 + 5.0 / OPENMP.base_factor)
    # Coverage is clamped into [0, 1].
    assert reference_time(seq, 2.0, OPENMP) == \
        pytest.approx(seq / OPENMP.base_factor)
    assert reference_time(seq, -1.0, OPENMP) == pytest.approx(seq)
    # whole_program ignores coverage; algorithmic_factor compounds.
    whole = reference_time(seq, 0.1, OPENCL, whole_program=True,
                           algorithmic_factor=2.0)
    assert whole == pytest.approx(seq / (OPENCL.base_factor * 2.0))


def test_site_at_scale_and_scaled_stats():
    matrix = _site(category="matrix_op", elements=1000, nbytes=8000)
    stats = scaled_stats(matrix, 8.0)
    assert stats["elements"] == pytest.approx(8000)
    assert stats["bytes"] == pytest.approx(8000 * 8.0 ** (2.0 / 3.0))
    linear = _site(category="stencil", elements=1000, nbytes=8000)
    assert scaled_stats(linear, 8.0)["bytes"] == pytest.approx(64000)

    assert site_at_scale(matrix, 1.0) is matrix  # identity at scale 1
    clone = site_at_scale(matrix, 8.0)
    assert clone is not matrix
    assert clone.call_id == matrix.call_id
    assert clone.category == matrix.category
    assert clone.stats["elements"] == pytest.approx(8000)
    assert matrix.stats["elements"] == 1000  # original untouched
