"""Unit tests for the IR substrate: types, values, instructions, parsing."""

import pytest

from repro.errors import IRError, VerificationError
from repro.ir import (
    F32,
    F64,
    I1,
    I32,
    I64,
    ArrayType,
    BasicBlock,
    BinaryOperator,
    BranchInst,
    ConstantFloat,
    ConstantInt,
    Function,
    FunctionType,
    GEPInst,
    ICmpInst,
    IntType,
    IRBuilder,
    LoadInst,
    Module,
    PhiInst,
    PointerType,
    RetInst,
    StoreInst,
    parse_module,
    parse_type,
    print_module,
    ptr,
    verify_module,
)


class TestTypes:
    def test_interning(self):
        assert IntType(32) is I32
        assert PointerType(F64) is PointerType(F64)
        assert ArrayType(4, F32) is ArrayType(4, F32)

    def test_type_strings(self):
        assert str(I32) == "i32"
        assert str(ptr(F64)) == "double*"
        assert str(ArrayType(4, ArrayType(8, F32))) == "[4 x [8 x float]]"

    def test_parse_type_roundtrip(self):
        for ty in (I1, I32, I64, F32, F64, ptr(F64), ptr(ptr(I32)),
                   ArrayType(3, ArrayType(5, F64)), ptr(ArrayType(7, I32))):
            assert parse_type(str(ty)) is ty

    def test_invalid_types(self):
        with pytest.raises(IRError):
            IntType(0)
        with pytest.raises(IRError):
            parse_type("banana")

    def test_int_bounds(self):
        assert I32.min_value() == -(2**31)
        assert I32.max_value() == 2**31 - 1
        assert I1.min_value() == 0


class TestConstants:
    def test_int_wrapping(self):
        assert ConstantInt(I32, 2**31).value == -(2**31)
        assert ConstantInt(I32, -1).value == -1
        assert ConstantInt(I1, 3).value == 1

    def test_equality(self):
        assert ConstantInt(I32, 5) == ConstantInt(I32, 5)
        assert ConstantInt(I32, 5) != ConstantInt(I64, 5)
        assert ConstantFloat(F64, 0.5) == ConstantFloat(F64, 0.5)

    def test_zero_detection(self):
        assert ConstantInt(I32, 0).is_zero()
        assert ConstantFloat(F64, 0.0).is_zero()
        assert not ConstantInt(I32, 1).is_zero()


class TestUseLists:
    def test_operand_tracking(self):
        a = ConstantInt(I32, 1)
        b = ConstantInt(I32, 2)
        add = BinaryOperator("add", a, b)
        assert add.lhs is a and add.rhs is b
        assert any(u.user is add for u in a.uses)

    def test_replace_all_uses(self):
        m = Module()
        f = m.create_function("f", FunctionType(I32, [I32, I32]))
        bb = f.append_block("entry")
        b = IRBuilder(bb)
        add = b.add(f.args[0], f.args[1])
        mul = b.mul(add, f.args[0])
        b.ret(mul)
        add.replace_all_uses_with(f.args[1])
        assert mul.lhs is f.args[1]
        assert not add.uses

    def test_erase_with_uses_fails(self):
        m = Module()
        f = m.create_function("f", FunctionType(I32, [I32]))
        bb = f.append_block("entry")
        b = IRBuilder(bb)
        add = b.add(f.args[0], f.args[0])
        b.ret(add)
        with pytest.raises(IRError):
            add.erase_from_parent()


class TestInstructions:
    def test_type_mismatch_rejected(self):
        with pytest.raises(IRError):
            BinaryOperator("add", ConstantInt(I32, 1), ConstantInt(I64, 1))
        with pytest.raises(IRError):
            BinaryOperator("fadd", ConstantInt(I32, 1), ConstantInt(I32, 1))

    def test_icmp_type(self):
        cmp = ICmpInst("slt", ConstantInt(I32, 1), ConstantInt(I32, 2))
        assert cmp.type is I1

    def test_store_type_check(self):
        m = Module()
        f = m.create_function("f", FunctionType(F64, [ptr(F64)]))
        bb = f.append_block("entry")
        b = IRBuilder(bb)
        with pytest.raises(IRError):
            StoreInst(ConstantInt(I32, 1), f.args[0])

    def test_gep_result_type(self):
        m = Module()
        arr = ArrayType(8, ArrayType(4, F64))
        f = m.create_function("f", FunctionType(F64, [ptr(arr)]))
        bb = f.append_block("entry")
        b = IRBuilder(bb)
        zero = ConstantInt(I64, 0)
        g1 = b.gep(f.args[0], [zero, zero])
        assert g1.type is ptr(ArrayType(4, F64))
        g2 = b.gep(g1, [zero, zero])
        assert g2.type is ptr(F64)

    def test_phi_incoming(self):
        m = Module()
        f = m.create_function("f", FunctionType(I32, [I32]))
        b0 = f.append_block("a")
        b1 = f.append_block("b")
        IRBuilder(b0).br(b1)
        phi = PhiInst(I32)
        phi.add_incoming(f.args[0], b0)
        assert phi.incoming_value_for(b0) is f.args[0]
        with pytest.raises(IRError):
            phi.incoming_value_for(b1)

    def test_branch_targets(self):
        m = Module()
        f = m.create_function("f", FunctionType(I32, []))
        b0, b1, b2 = (f.append_block(n) for n in "abc")
        cond = ConstantInt(I1, 1)
        br = BranchInst(cond, b1, b2)
        assert br.is_conditional()
        assert br.targets() == [b1, b2]


EXAMPLE = """
define i32 @example(i32 %a, i32 %b, i32 %c) {
entry:
  %1 = mul i32 %a, %b
  %2 = mul i32 %c, %a
  %3 = add i32 %1, %2
  ret i32 %3
}
"""


class TestParserPrinter:
    def test_roundtrip_example(self):
        m1 = parse_module(EXAMPLE)
        verify_module(m1)
        text = print_module(m1)
        m2 = parse_module(text)
        verify_module(m2)
        assert print_module(m2) == text

    def test_forward_references(self):
        text = """
define i32 @loop(i32 %n) {
entry:
  br label %hdr
hdr:
  %i = phi i32 [ 0, %entry ], [ %next, %hdr2 ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %hdr2, label %done
hdr2:
  %next = add i32 %i, 1
  br label %hdr
done:
  ret i32 %i
}
"""
        m = parse_module(text)
        verify_module(m)
        f = m.get_function("loop")
        assert len(f.blocks) == 4

    def test_undefined_value_rejected(self):
        with pytest.raises(IRError):
            parse_module("""
define i32 @f() {
entry:
  ret i32 %nope
}
""")

    def test_globals(self):
        m = parse_module("@g = global [4 x double]\n" + EXAMPLE)
        assert "g" in m.globals
        assert m.globals["g"].value_type is ArrayType(4, F64)


class TestVerifier:
    def test_missing_terminator(self):
        m = Module()
        f = m.create_function("f", FunctionType(I32, [I32]))
        bb = f.append_block("entry")
        IRBuilder(bb).add(f.args[0], f.args[0])
        with pytest.raises(VerificationError):
            verify_module(m)

    def test_use_before_def_rejected(self):
        m = Module()
        f = m.create_function("f", FunctionType(I32, [I32]))
        bb = f.append_block("entry")
        b = IRBuilder(bb)
        a1 = b.add(f.args[0], f.args[0])
        a2 = b.add(a1, f.args[0])
        b.ret(a2)
        # Manually break def-before-use ordering.
        bb.remove(a1)
        bb.insert(1, a1)
        with pytest.raises(VerificationError):
            verify_module(m)
