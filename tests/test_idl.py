"""Tests for the IDL language: parsing, lowering, solving, natives."""

import pytest

from repro.errors import IDLError, ParseError
from repro.frontend import compile_c
from repro.idl import IdiomCompiler, parse_idl, parse_var_text
from repro.idl.ast import Num, Sym
from repro.idl.lowering import LAnd, LAtom, LOr, Lowerer, Registry
from repro.passes import optimize

FACTORIZATION = """
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend} ) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend} ) )
End
"""


class TestIDLParser:
    def test_factorization_parses(self):
        specs = parse_idl(FACTORIZATION)
        assert specs[0].name == "FactorizationOpportunity"

    def test_var_text(self):
        ref = parse_var_text("kernel.input[i]")
        assert len(ref.components) == 2
        assert ref.components[1].index == Sym("i")

    def test_var_range(self):
        ref = parse_var_text("read[0..4]")
        assert ref.is_range()

    def test_atoms(self):
        src = """
Constraint T
( {a} is integer constant zero and
  {b} is not the same as {a} and
  {a} has data flow to {b} and
  {c} reaches phi node {a} from {b} and
  {a} strictly control flow dominates {b} and
  {b} control flow post dominates {a} and
  all control flow from {a} to {b} passes through {c} )
End
"""
        spec = parse_idl(src)[0]
        assert spec.name == "T"

    def test_inheritance_with_params(self):
        src = """
Constraint T
( inherits Other(N=3)
  with {x} as {y} at {base} )
End
"""
        spec = parse_idl(src)[0]
        inh = spec.constraint
        assert inh.name == "Other"
        assert inh.params["N"] == Num(3)
        assert inh.base is not None

    def test_quantifiers(self):
        src = """
Constraint T
( ( {v[i]} is add instruction ) for all i = 0 .. 2 and
  ( {w[j]} is mul instruction ) for some j = 0 .. 1 )
End
"""
        parse_idl(src)

    def test_bad_syntax(self):
        with pytest.raises(ParseError):
            parse_idl("Constraint X ( {a} is banana instruction ) End")


class TestLowering:
    def test_forall_expands_to_conjunction(self):
        reg = Registry()
        for s in parse_idl("""
Constraint T
( ( {v[i]} is add instruction ) for all i = 0 .. 2 )
End
"""):
            reg.add_spec(s)
        lowered = Lowerer(reg).lower_spec("T")
        assert isinstance(lowered, LAnd)
        assert len(lowered.children) == 3
        assert lowered.children[0].vars == ["v[0]"]

    def test_forsome_expands_to_disjunction(self):
        reg = Registry()
        for s in parse_idl("""
Constraint T
( ( {v[i]} is add instruction ) for some i = 0 .. 1 )
End
"""):
            reg.add_spec(s)
        lowered = Lowerer(reg).lower_spec("T")
        assert isinstance(lowered, LOr)
        assert len(lowered.children) == 2

    def test_rename_and_rebase(self):
        reg = Registry()
        for s in parse_idl("""
Constraint Inner
( {x} is add instruction and {y} is mul instruction )
End
Constraint T
( inherits Inner with {outer_x} as {x} at {pre} )
End
"""):
            reg.add_spec(s)
        lowered = Lowerer(reg).lower_spec("T")
        names = sorted(lowered.free_vars())
        assert names == ["outer_x", "pre.y"]

    def test_nested_rebase_composes(self):
        reg = Registry()
        for s in parse_idl("""
Constraint A
( {v} is add instruction )
End
Constraint B
( inherits A at {inner} )
End
Constraint T
( inherits B at {outer} )
End
"""):
            reg.add_spec(s)
        lowered = Lowerer(reg).lower_spec("T")
        assert lowered.free_vars() == {"outer.inner.v"}

    def test_if_selects_branch(self):
        reg = Registry()
        for s in parse_idl("""
Constraint T
( if N = 1 then {a} is add instruction
  else {a} is mul instruction endif
) End
"""):
            reg.add_spec(s)
        low1 = Lowerer(reg).lower_spec("T", {"N": 1})
        low2 = Lowerer(reg).lower_spec("T", {"N": 2})
        assert low1.extra["opcode"] == "add"
        assert low2.extra["opcode"] == "mul"

    def test_and_flattening(self):
        reg = Registry()
        for s in parse_idl("""
Constraint T
( ( {a} is add instruction and {b} is mul instruction ) and
  {c} is sub instruction )
End
"""):
            reg.add_spec(s)
        lowered = Lowerer(reg).lower_spec("T")
        assert isinstance(lowered, LAnd)
        assert all(isinstance(c, LAtom) for c in lowered.children)
        assert len(lowered.children) == 3


class TestSolver:
    def _function(self, src="int example(int a, int b, int c) "
                  "{ int d = a; return (a*b) + (c*d); }"):
        m = compile_c(src)
        optimize(m)
        return m.get_function("example")

    def test_factorization_paper_example(self):
        """The paper's Figure 3 result, reproduced exactly."""
        idl = IdiomCompiler()
        idl.load(FACTORIZATION)
        sols = idl.match(self._function(), "FactorizationOpportunity")
        assert len(sols) == 1
        sol = sols[0]
        assert sol["factor"].name == "a"
        assert sol["sum"].opcode == "add"
        assert sol["left_addend"].opcode == "mul"
        assert sol["right_addend"].opcode == "mul"

    def test_no_match_when_no_shared_factor(self):
        idl = IdiomCompiler()
        idl.load(FACTORIZATION)
        f = self._function("int example(int a, int b, int c, int e) "
                           "{ return (a*b) + (c*e); }")
        assert idl.match(f, "FactorizationOpportunity") == []

    def test_all_solutions_enumerated(self):
        idl = IdiomCompiler()
        idl.load("""
Constraint AnyMul
( {m} is mul instruction )
End
""")
        f = self._function("int example(int a) { return (a*a) * (a*2); }")
        sols = idl.match(f, "AnyMul")
        assert len(sols) == 3

    def test_unknown_constraint(self):
        idl = IdiomCompiler()
        with pytest.raises(IDLError):
            idl.compile("Nonexistent")

    def test_negative_constraint(self):
        idl = IdiomCompiler()
        idl.load("""
Constraint DistinctMuls
( {a} is mul instruction and
  {b} is mul instruction and
  {a} is not the same as {b} )
End
""")
        f = self._function("int example(int a) { return (a*2) + (a*3); }")
        sols = idl.match(f, "DistinctMuls")
        assert len(sols) == 2  # ordered pairs (m1,m2), (m2,m1)


class TestNatives:
    def test_kernel_function_pure(self):
        from repro.idioms import load_library

        idl = IdiomCompiler()
        load_library(idl)
        src = """
double f(int n, double *a) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += a[i] * 2.0;
  return s;
}
"""
        m = compile_c(src)
        optimize(m)
        sols = idl.match(m.get_function("f"), "Reduction")
        assert len(sols) == 1
        # kernel.input = [read, old accumulator]
        assert "kernel.input[1]" in sols[0]

    def test_kernel_rejects_unregistered_loads(self):
        from repro.idioms import load_library

        idl = IdiomCompiler()
        load_library(idl)
        # Indirect read a[b[i]] is not a collected VectorRead.
        src = """
double f(int n, double *a, int *b) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += a[b[i]];
  return s;
}
"""
        m = compile_c(src)
        optimize(m)
        assert idl.match(m.get_function("f"), "Reduction") == []
