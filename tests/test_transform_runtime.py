"""Integration tests: transformation correctness (original == accelerated)."""

import numpy as np
import pytest

from repro.backends.sparse import csr_from_dense, csr_spmv, random_csr
from repro.runtime import (
    compile_workload,
    outputs_match,
    run_accelerated,
    run_original,
)


def roundtrip(name, src, entry, inputs):
    w1 = compile_workload(name, src)
    r1 = run_original(w1, entry, inputs)
    w2 = compile_workload(name, src)
    r2 = run_accelerated(w2, entry, inputs)
    return r1, r2


class TestReductionTransform:
    def test_sum(self):
        src = """
double s(int n, double *x) {
  double t = 0.0;
  for (int i = 0; i < n; i++) t += x[i];
  return t;
}
"""
        x = np.linspace(-1, 1, 50)
        r1, r2 = roundtrip("t", src, "s", {"n": 50, "x": x})
        assert outputs_match(r1, r2)
        assert r2.total_instructions < r1.total_instructions / 5

    def test_dot(self):
        src = """
double s(int n, double *x, double *y) {
  double t = 0.0;
  for (int i = 0; i < n; i++) t += x[i] * y[i];
  return t;
}
"""
        rng = np.random.default_rng(0)
        inputs = {"n": 40, "x": rng.uniform(-1, 1, 40),
                  "y": rng.uniform(-1, 1, 40)}
        r1, r2 = roundtrip("t", src, "s", inputs)
        assert outputs_match(r1, r2)

    def test_max(self):
        src = """
double s(int n, double *x) {
  double best = -1.0e30;
  for (int i = 0; i < n; i++)
    best = x[i] > best ? x[i] : best;
  return best;
}
"""
        rng = np.random.default_rng(1)
        inputs = {"n": 33, "x": rng.uniform(-5, 5, 33)}
        r1, r2 = roundtrip("t", src, "s", inputs)
        assert outputs_match(r1, r2)

    def test_conditional_sum(self):
        src = """
double s(int n, double *x) {
  double t = 0.0;
  for (int i = 0; i < n; i++) {
    if (x[i] > 0.0) t += x[i];
  }
  return t;
}
"""
        rng = np.random.default_rng(2)
        inputs = {"n": 64, "x": rng.uniform(-1, 1, 64)}
        r1, r2 = roundtrip("t", src, "s", inputs)
        assert outputs_match(r1, r2)

    def test_empty_range(self):
        src = """
double s(int n, double *x) {
  double t = 5.0;
  for (int i = 0; i < n; i++) t += x[i];
  return t;
}
"""
        r1, r2 = roundtrip("t", src, "s", {"n": 0, "x": np.zeros(1)})
        assert outputs_match(r1, r2)
        assert r1.value == 5.0


class TestHistogramTransform:
    def test_count(self):
        src = """
void h(int n, int *key, int *bin) {
  for (int i = 0; i < n; i++)
    bin[key[i]] = bin[key[i]] + 1;
}
"""
        rng = np.random.default_rng(3)
        inputs = {"n": 200,
                  "key": rng.integers(0, 16, 200, dtype=np.int32),
                  "bin": np.zeros(16, dtype=np.int32)}
        r1, r2 = roundtrip("t", src, "h", inputs)
        assert outputs_match(r1, r2)

    def test_weighted_conditional(self):
        src = """
void h(int n, int *g, double *v, double *acc) {
  for (int i = 0; i < n; i++) {
    if (v[i] > 0.0)
      acc[g[i]] = acc[g[i]] + v[i];
  }
}
"""
        rng = np.random.default_rng(4)
        inputs = {"n": 150,
                  "g": rng.integers(0, 8, 150, dtype=np.int32),
                  "v": rng.uniform(-1, 1, 150),
                  "acc": np.zeros(8)}
        r1, r2 = roundtrip("t", src, "h", inputs)
        assert outputs_match(r1, r2)


class TestSpmvTransform:
    SRC = """
void spmv(int m, double *a, int *rowstr, int *colidx, double *z, double *r) {
  for (int j = 0; j < m; j++) {
    double d = 0.0;
    for (int k = rowstr[j]; k < rowstr[j+1]; k++)
      d = d + a[k] * z[colidx[k]];
    r[j] = d;
  }
}
"""

    def test_csr(self):
        rows = 30
        rp, ci, vals = random_csr(rows, rows, 4)
        rng = np.random.default_rng(5)
        inputs = {"m": rows, "a": vals, "rowstr": rp, "colidx": ci,
                  "z": rng.uniform(-1, 1, rows), "r": np.zeros(rows)}
        r1, r2 = roundtrip("t", self.SRC, "spmv", inputs)
        assert outputs_match(r1, r2)

    def test_empty_rows(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = 2.0
        dense[5, 0] = -1.0
        rp, ci, vals = csr_from_dense(dense)
        inputs = {"m": 6, "a": vals, "rowstr": rp, "colidx": ci,
                  "z": np.ones(6), "r": np.zeros(6)}
        r1, r2 = roundtrip("t", self.SRC, "spmv", inputs)
        assert outputs_match(r1, r2)


class TestGemmTransform:
    def test_flat_alpha_beta(self):
        src = """
void mm(int m, int n, int k, double *A, int lda, double *B, int ldb,
        double *C, int ldc, double alpha, double beta) {
  for (int mm = 0; mm < m; mm++) {
    for (int nn = 0; nn < n; nn++) {
      double c = 0.0;
      for (int i = 0; i < k; i++)
        c += A[mm + i * lda] * B[nn + i * ldb];
      C[mm + nn * ldc] = C[mm + nn * ldc] * beta + alpha * c;
    }
  }
}
"""
        rng = np.random.default_rng(6)
        m = n = k = 8
        inputs = {"m": m, "n": n, "k": k,
                  "A": rng.uniform(-1, 1, m * k), "lda": m,
                  "B": rng.uniform(-1, 1, n * k), "ldb": n,
                  "C": rng.uniform(-1, 1, m * n), "ldc": m,
                  "alpha": 1.5, "beta": 0.25}
        r1, r2 = roundtrip("t", src, "mm", inputs)
        assert outputs_match(r1, r2)

    def test_2d_global(self):
        src = """
double M1[10][10]; double M2[10][10]; double M3[10][10];
void seed(double *a, double *b) {
  for (int i = 0; i < 10; i++)
    for (int j = 0; j < 10; j++) {
      M1[i][j] = a[i*10+j];
      M2[i][j] = b[i*10+j];
      M3[i][j] = 0.0;
    }
}
double mm(double *a, double *b) {
  seed(a, b);
  for (int i = 0; i < 10; i++)
    for (int j = 0; j < 10; j++) {
      M3[i][j] = 0.0;
      for (int k = 0; k < 10; k++)
        M3[i][j] += M1[i][k] * M2[k][j];
    }
  return M3[3][4];
}
"""
        rng = np.random.default_rng(7)
        inputs = {"a": rng.uniform(-1, 1, 100), "b": rng.uniform(-1, 1, 100)}
        r1, r2 = roundtrip("t", src, "mm", inputs)
        assert outputs_match(r1, r2)


class TestStencilTransform:
    def test_1d(self):
        src = """
void sm(int n, double *out, double *in) {
  for (int i = 1; i < n; i++)
    out[i] = 0.25*in[i-1] + 0.5*in[i] + 0.25*in[i+1];
}
"""
        rng = np.random.default_rng(8)
        inputs = {"n": 63, "out": np.zeros(64), "in": rng.uniform(0, 1, 64)}
        r1, r2 = roundtrip("t", src, "sm", inputs)
        assert outputs_match(r1, r2)

    def test_2d(self):
        src = """
double A[16][16]; double B[16][16];
void seed(double *s) {
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 16; j++) {
      A[i][j] = s[i*16+j];
      B[i][j] = 0.0;
    }
}
double jac(double *s) {
  seed(s);
  for (int i = 1; i < 15; i++)
    for (int j = 1; j < 15; j++)
      B[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j]
                       + A[i][j-1] + A[i][j+1]);
  return B[7][8];
}
"""
        rng = np.random.default_rng(9)
        inputs = {"s": rng.uniform(0, 1, 256)}
        r1, r2 = roundtrip("t", src, "jac", inputs)
        assert outputs_match(r1, r2)


class TestSparseKernels:
    def test_csr_spmv_matches_scipy(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(10)
        dense = rng.uniform(-1, 1, (20, 20))
        dense[dense < 0.5] = 0.0
        rp, ci, vals = csr_from_dense(dense)
        x = rng.uniform(-1, 1, 20)
        ours = csr_spmv(rp.astype(np.int64), ci, vals, x)
        theirs = sp.csr_matrix(dense) @ x
        np.testing.assert_allclose(ours, theirs, atol=1e-12)
