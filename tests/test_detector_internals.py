"""Tests for detector internals: overlap resolution, SESE, control
dependence, kernel extraction edge cases."""

import pytest

from repro.analysis import (
    ControlDependence,
    FunctionAnalyses,
    InstructionCFG,
    is_sese_pair,
)
from repro.errors import TransformError
from repro.frontend import compile_c
from repro.idioms import detect_idioms
from repro.passes import optimize
from repro.transform import KernelExtractor
from repro.transform.kernels import (
    KBin,
    KConst,
    KParam,
    KSelect,
    match_accumulator_form,
)


def compiled(src):
    m = compile_c(src)
    optimize(m)
    return m


class TestOverlapResolution:
    def test_histogram_and_reduction_coexist_in_one_loop(self):
        """EP's pattern: both idioms in the accept/reject loop count."""
        r = detect_idioms(compiled("""
double f(int n, double *x, double *q) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    double v = x[i];
    if (v > 0.0) {
      int b = (int) (v * 4.0);
      q[b] = q[b] + 1.0;
      s = s + v;
    }
  }
  return s;
}
"""))
        assert r.by_idiom() == {"Histogram": 1, "Reduction": 1}

    def test_spmv_subsumes_only_its_own_accumulator(self):
        """A reduction in a *different* loop of the same function stays."""
        r = detect_idioms(compiled("""
double f(int m, double *a, int *rs, int *ci, double *z, double *r) {
  for (int j = 0; j < m; j++) {
    double d = 0.0;
    for (int k = rs[j]; k < rs[j+1]; k++)
      d = d + a[k] * z[ci[k]];
    r[j] = d;
  }
  double s = 0.0;
  for (int j = 0; j < m; j++) s += r[j];
  return s;
}
"""))
        assert r.by_idiom() == {"SPMV": 1, "Reduction": 1}


class TestSESE:
    def test_loop_region_is_sese(self):
        m = compiled("""
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += i;
  return s;
}
""")
        f = m.get_function("f")
        an = FunctionAnalyses(f)
        header = [b for b in f.blocks if b.phis()][0]
        begin = header.instructions[0]
        end = header.terminator
        assert is_sese_pair(an.cfg, an.dom, an.postdom, begin, end)

    def test_control_dependence(self):
        m = compiled("""
int f(int a) {
  int r = 0;
  if (a > 0) r = 1;
  return r + a;
}
""")
        f = m.get_function("f")
        an = FunctionAnalyses(f)
        cd = ControlDependence(an.cfg, an.postdom)
        branch = f.entry.terminator
        then_block = branch.targets()[0]
        guarded = then_block.instructions[0]
        assert cd.depends_on(guarded, branch)
        ret = f.blocks[-1].terminator
        assert not cd.depends_on(ret, branch)


class TestAccumulatorRecogniser:
    def test_sum_form(self):
        expr = KBin("fadd", KParam(1), KBin("fmul", KParam(0), KConst(2.0)))
        kind, delta = match_accumulator_form(expr, acc_param=1)
        assert kind == "sum"
        assert delta == KBin("fmul", KParam(0), KConst(2.0))

    def test_max_form(self):
        from repro.transform.kernels import KCmp

        expr = KSelect(KCmp("ogt", KParam(0), KParam(1)),
                       KParam(0), KParam(1))
        kind, other = match_accumulator_form(expr, acc_param=1)
        assert kind == "max"

    def test_min_form(self):
        from repro.transform.kernels import KCmp

        expr = KSelect(KCmp("olt", KParam(0), KParam(1)),
                       KParam(0), KParam(1))
        kind, _ = match_accumulator_form(expr, acc_param=1)
        assert kind == "min"

    def test_non_fold_rejected(self):
        # acc appears inside the delta: acc + acc*x is not a plain fold.
        expr = KBin("fadd", KParam(1), KBin("fmul", KParam(1), KParam(0)))
        assert match_accumulator_form(expr, acc_param=1) is None


class TestKernelExtraction:
    def test_conditional_kernel_if_converted(self):
        m = compiled("""
double f(int n, double *x) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    if (x[i] > 0.5) s += x[i] * 2.0;
  }
  return s;
}
""")
        r = detect_idioms(m)
        match = r.matches[0]
        an = FunctionAnalyses(match.function)
        reads = match.family("read_value")
        extractor = KernelExtractor(an, match.value("begin"),
                                    match.value("body.begin"),
                                    reads + [match.value("old_value")])
        kernel = extractor.extract(match.value("kernel.output"))
        assert isinstance(kernel.expr, KSelect)

    def test_captures_loop_invariants(self):
        m = compiled("""
double f(int n, double a, double *x) {
  double s = 0.0;
  for (int i = 0; i < n; i++) s += a * x[i];
  return s;
}
""")
        r = detect_idioms(m)
        match = r.matches[0]
        an = FunctionAnalyses(match.function)
        reads = match.family("read_value")
        extractor = KernelExtractor(an, match.value("begin"),
                                    match.value("body.begin"),
                                    reads + [match.value("old_value")])
        kernel = extractor.extract(match.value("kernel.output"))
        # `a` is loop invariant: captured as a runtime scalar parameter.
        assert len(kernel.captures) == 1
        assert kernel.captures[0].name == "a"


class TestDetectorRobustness:
    def test_empty_function(self):
        r = detect_idioms(compiled("void f() { }"))
        assert r.total() == 0

    def test_straight_line_code(self):
        r = detect_idioms(compiled(
            "double f(double a, double b) { return a * b + a / b; }"))
        assert r.total() == 0

    def test_while_loop_reduction(self):
        r = detect_idioms(compiled("""
double f(int n, double *x) {
  double s = 0.0;
  int i = 0;
  while (i < n) {
    s += x[i];
    i = i + 1;
  }
  return s;
}
"""))
        assert r.by_idiom() == {"Reduction": 1}

    def test_reverse_loop_not_matched(self):
        """Decrement loops are outside the canonical For idiom (documented
        limitation, matching the paper's canonical-loop focus)."""
        r = detect_idioms(compiled("""
double f(int n, double *x) {
  double s = 0.0;
  for (int i = n - 1; i > 0; i--) s += x[i];
  return s;
}
"""))
        assert r.total() == 0
