"""JIT tier equivalence: specialized Python + numpy kernels vs the VM.

The jit tier must be observationally **bit-identical** to the register VM
(and hence to the reference interpreter): same return values, same memory
contents, count-identical per-block profiles and the same step totals, on
every suite workload. The deopt path — kernels whose guard fails at run
time — must fall back to the VM mid-call without breaking any of those
contracts.
"""

import numpy as np
import pytest

from repro.errors import InterpreterError
from repro.frontend import compile_c
from repro.passes import optimize
from repro.runtime import (
    CodeCache,
    Interpreter,
    JitVirtualMachine,
    VirtualMachine,
    compile_workload,
)
from repro.runtime.runner import _bind_arguments
from repro.workloads import all_workloads, get_workload

WORKLOADS = [w.name for w in all_workloads()]


@pytest.fixture(scope="module")
def compiled_suite():
    """One compile+detect pass per workload, shared across tests."""
    cache = {}

    def get(name):
        if name not in cache:
            w = get_workload(name)
            cache[name] = (w, compile_workload(name, w.source))
        return cache[name]
    return get


def _execute(engine_cls, compiled, workload, **kwargs):
    engine = engine_cls(compiled.module, **kwargs)
    args, buffers = _bind_arguments(engine, compiled.module, workload.entry,
                                    workload.make_inputs(1))
    value = engine.call(workload.entry, args)
    for name, buffer in engine.globals.items():
        buffers.setdefault(name, buffer)
    return value, buffers, engine.profile, engine


def _assert_identical(a, b, label):
    va, ba, pa, ea = a
    vb, bb, pb, eb = b
    if va is None:
        assert vb is None, label
    else:
        assert va == vb or (np.isnan(va) and np.isnan(vb)), label
    assert set(ba) == set(bb), label
    for name, buffer in ba.items():
        np.testing.assert_array_equal(buffer.data, bb[name].data,
                                      err_msg=f"{label}:{name}")
    assert pa.block_counts == pb.block_counts, label
    assert pa.block_sizes == pb.block_sizes, label
    assert pa.opcode_counts() == pb.opcode_counts(), label
    assert ea.steps == eb.steps, label


@pytest.mark.parametrize("name", WORKLOADS)
def test_jit_bit_identical_on_suite(name, compiled_suite):
    """Outputs bit-equal AND per-block counts identical across all three
    tiers, per workload."""
    workload, compiled = compiled_suite(name)
    ref = _execute(Interpreter, compiled, workload)
    vm = _execute(VirtualMachine, compiled, workload)
    jit = _execute(JitVirtualMachine, compiled, workload)
    _assert_identical(vm, jit, f"{name}:vm-vs-jit")
    # Reference values can differ from the VM only in float repr of the
    # same computation — in practice they are bit-equal too.
    _assert_identical(ref, jit, f"{name}:ref-vs-jit")


# ---------------------------------------------------------------------------
# Unit programs
# ---------------------------------------------------------------------------

def engines_for(src, **jit_kwargs):
    # One module for both engines: per-block profiles are keyed by the
    # BasicBlock objects, so sharing makes them directly comparable.
    m = compile_c(src)
    optimize(m)
    return VirtualMachine(m), JitVirtualMachine(m, **jit_kwargs)


def ptr_args(engine, arrays):
    from repro.runtime import Buffer, Pointer
    return [Pointer(Buffer.from_numpy(f"a{i}", a.copy()), 0)
            for i, a in enumerate(arrays)]


RECURRENCE = """
void f(double *a, int n) {
  for (int i = 0; i < n - 1; i++) a[i + 1] = a[i] * 0.5 + 1.0;
}
"""


class TestDeopt:
    def test_recurrence_deopts_and_matches_vm(self):
        # a[i+1] depends on a[i]: the store lattice trails the load
        # lattice, the overlap guard must refuse and fall back mid-call.
        vm, jit = engines_for(RECURRENCE)
        data = np.linspace(1.0, 2.0, 64)
        (pv,), (pj,) = ptr_args(vm, [data]), ptr_args(jit, [data])
        vm.call("f", [pv, 64])
        jit.call("f", [pj, 64])
        assert jit.deopt_count == 1
        assert any(jit.deopt_sites.values())
        np.testing.assert_array_equal(pv.buffer.data, pj.buffer.data)
        assert vm.profile.block_counts == jit.profile.block_counts
        assert vm.steps == jit.steps

    def test_deopt_site_memo_skips_failing_kernel(self):
        # The failing site is remembered: later calls run the scalar
        # specialization directly instead of re-deopting.
        _, jit = engines_for(RECURRENCE)
        (p,) = ptr_args(jit, [np.ones(32)])
        jit.call("f", [p, 32])
        assert jit.deopt_count == 1
        (p2,) = ptr_args(jit, [np.ones(32)])
        jit.call("f", [p2, 32])
        assert jit.deopt_count == 1  # no second deopt

    def test_gather_bounds_deopt_reproduces_wraparound(self):
        # Negative indirect indices: the kernel's bounds check deopts and
        # the VM replays python-style negative indexing bit-exactly.
        src = """
double f(double *x, int *idx, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) s += x[idx[i]];
  return s;
}
"""
        vm, jit = engines_for(src)
        x = np.arange(1.0, 17.0)
        idx = np.array([0, 5, -1, 3, 2, 7, -2, 1], dtype=np.int64)
        (xv, iv), (xj, ij) = ptr_args(vm, [x, idx]), ptr_args(jit, [x, idx])
        assert vm.call("f", [xv, iv, 8]) == jit.call("f", [xj, ij, 8])
        assert jit.deopt_count == 1
        assert vm.steps == jit.steps
        # In-range indices vectorize without deopting.
        ok = np.array([0, 5, 1, 3, 2, 7, 4, 1], dtype=np.int64)
        (xv, iv), (xj, ij) = ptr_args(vm, [x, ok]), ptr_args(jit, [x, ok])
        assert vm.call("f", [xv, iv, 8]) == jit.call("f", [xj, ij, 8])
        assert jit.deopt_count == 1  # unchanged

    def test_out_of_bounds_faults_identically(self):
        src = """
double f(double *x, int *idx, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) s += x[idx[i]];
  return s;
}
"""
        vm, jit = engines_for(src)
        x = np.ones(8)
        idx = np.full(8, 1000, dtype=np.int64)
        (xv, iv), (xj, ij) = ptr_args(vm, [x, idx]), ptr_args(jit, [x, idx])
        with pytest.raises(InterpreterError):
            vm.call("f", [xv, iv, 8])
        with pytest.raises(InterpreterError):
            jit.call("f", [xj, ij, 8])
        assert vm.steps == jit.steps

    def test_budget_exhaustion_deopts_then_raises_like_vm(self):
        src = "void f(double *a, int n) " \
              "{ for (int i = 0; i < n; i++) a[i] = 1.0; }"
        vm, jit = engines_for(src)
        vm.max_steps = jit.max_steps = 50
        (pv,), (pj,) = ptr_args(vm, [np.zeros(512)]), \
            ptr_args(jit, [np.zeros(512)])
        with pytest.raises(InterpreterError, match="budget"):
            vm.call("f", [pv, 512])
        with pytest.raises(InterpreterError, match="budget"):
            jit.call("f", [pj, 512])
        assert vm.steps == jit.steps

    def test_zero_trip_loop_skips_kernel(self):
        src = "double f(double *a, int n) " \
              "{ double s = 0.0; for (int i = 0; i < n; i++) s += a[i]; " \
              "return s; }"
        vm, jit = engines_for(src)
        (pv,), (pj,) = ptr_args(vm, [np.ones(4)]), ptr_args(jit, [np.ones(4)])
        assert vm.call("f", [pv, 0]) == jit.call("f", [pj, 0]) == 0.0
        assert jit.deopt_count == 0
        assert vm.steps == jit.steps


class TestKvOrdering:
    def test_sitofp_reduction_operand_defines_kv(self):
        # Regression: the only _kv use comes from vectorizing a
        # *reduction operand* (sitofp of the induction variable), which
        # happens after loads/stores are assembled — the arange line must
        # still end up first in the kernel body.
        src = "double f(double *a, int n) { double s = 0; " \
              "for (int i = 0; i < n; i++) s += a[i] * (double)i; " \
              "return s; }"
        vm, jit = engines_for(src)
        data = np.linspace(0.5, 2.0, 16)
        (pv,), (pj,) = ptr_args(vm, [data]), ptr_args(jit, [data])
        assert vm.call("f", [pv, 16]) == jit.call("f", [pj, 16])
        assert jit.jit_compiled() == ["f"]
        assert jit.deopt_count == 0  # vectorized, not rejected
        assert vm.profile.block_counts == jit.profile.block_counts
        assert vm.steps == jit.steps


class TestCodegenDefectSafetyNet:
    SRC = "double f(double *a, int n) " \
          "{ double s = 0.0; for (int i = 0; i < n; i++) s += a[i]; " \
          "return s; }"

    def _defective_pair(self):
        vm, jit = engines_for(self.SRC)

        def fake_compile(name, bc):
            def broken(vm, args):
                vm.steps += 999           # state the fallback must undo
                if vm.profiling:
                    vm._counts[name][0] += 7
                raise NameError("_kv is not defined")
            jit._jit_fns[name] = broken
            return broken
        jit._compile_jit = fake_compile
        return vm, jit

    def test_unexpected_exception_blacklists_and_replays_on_vm(self):
        vm, jit = self._defective_pair()
        (pv,), (pj,) = ptr_args(vm, [np.ones(8)]), ptr_args(jit, [np.ones(8)])
        assert vm.call("f", [pv, 8]) == jit.call("f", [pj, 8]) == 8.0
        assert jit._jit_fns["f"] is None  # permanently on the VM tier
        assert vm.steps == jit.steps
        assert vm.profile.block_counts == jit.profile.block_counts
        # Later calls go straight to the VM, no recompilation attempt.
        (p2,) = ptr_args(jit, [np.ones(8)])
        assert jit.call("f", [p2, 8]) == 8.0

    def test_interpreter_errors_still_propagate(self):
        # Guest-visible faults raised by generated code must NOT trigger
        # the fallback: they are the correct result.
        _, jit = engines_for(self.SRC)
        jit.max_steps = 5
        (p,) = ptr_args(jit, [np.ones(512)])
        with pytest.raises(InterpreterError, match="budget"):
            jit.call("f", [p, 512])


class TestTieringPolicy:
    SRC = "double f(double *a, int n) " \
          "{ double s = 0.0; for (int i = 0; i < n; i++) s += a[i] * a[i]; " \
          "return s; }"

    def test_threshold_transition(self):
        _, jit = engines_for(self.SRC, jit_threshold=3)
        expected = float(np.sum(np.arange(16.0) ** 2))
        for call in range(1, 5):
            (p,) = ptr_args(jit, [np.arange(16.0)])
            assert jit.call("f", [p, 16]) == expected
            compiled = "f" in jit.jit_compiled()
            assert compiled == (call >= 3), call

    def test_threshold_one_compiles_first_call(self):
        _, jit = engines_for(self.SRC)
        (p,) = ptr_args(jit, [np.ones(8)])
        jit.call("f", [p, 8])
        assert jit.jit_compiled() == ["f"]

    def test_profile_opt_out(self):
        _, jit = engines_for(self.SRC, profile=False)
        (p,) = ptr_args(jit, [np.ones(8)])
        assert jit.call("f", [p, 8]) == 8.0
        with pytest.raises(InterpreterError):
            jit.profile

    def test_code_cache_shared_across_vms(self):
        cache = CodeCache()
        _, jit1 = engines_for(self.SRC, code_cache=cache)
        (p,) = ptr_args(jit1, [np.ones(8)])
        jit1.call("f", [p, 8])
        assert cache.stats()["compiles"] == 1
        _, jit2 = engines_for(self.SRC, code_cache=cache)
        (p,) = ptr_args(jit2, [np.ones(8)])
        jit2.call("f", [p, 8])
        stats = cache.stats()
        assert stats["compiles"] == 1  # second VM reused the code object
        assert stats["hits"] >= 1
