"""Tests for the mini-C frontend: lexing, parsing, code generation."""

import pytest

from repro.errors import LexError, ParseError, SemanticError
from repro.frontend import compile_c, parse_c, preprocess, tokenize
from repro.ir import verify_module
from repro.passes import optimize
from repro.runtime import Interpreter


def run_c(source, fn, args, api=None):
    module = compile_c(source)
    optimize(module)
    return Interpreter(module).call(fn, args)


class TestLexer:
    def test_tokens(self):
        toks = tokenize("int x = 42 + 3.5f;")
        kinds = [t.kind for t in toks]
        assert kinds == ["keyword", "ident", "op", "int", "op", "float",
                         "op", "eof"]

    def test_comments_stripped(self):
        toks = tokenize("a /* b */ c // d\ne")
        assert [t.text for t in toks if t.kind != "eof"] == ["a", "c", "e"]

    def test_define_macro(self):
        assert "(32)" in preprocess("#define N 32\nint a[N];")

    def test_macro_in_macro(self):
        out = preprocess("#define A 4\n#define B A+1\nB")
        assert "4" in out

    def test_function_macro_rejected(self):
        with pytest.raises(LexError):
            preprocess("#define SQ(x) ((x)*(x))\n")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("int $x;")


class TestParser:
    def test_function_parse(self):
        unit = parse_c("int f(int a, double *b) { return a; }")
        assert unit.functions[0].name == "f"
        assert len(unit.functions[0].params) == 2

    def test_precedence(self):
        # 2 + 3 * 4 must evaluate to 14.
        assert run_c("int f() { return 2 + 3 * 4; }", "f", []) == 14

    def test_unary_and_ternary(self):
        assert run_c("int f(int x) { return x > 0 ? -x : x; }", "f", [5]) == -5

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_c("int f() { return 1 }")

    def test_array_dims_constant_folded(self):
        unit = parse_c("double a[4*8];")
        assert unit.globals[0].ctype.dims == (32,)


class TestCodegenSemantics:
    def test_arith(self):
        src = "int f(int a, int b) { return (a + b) * (a - b) / 2; }"
        assert run_c(src, "f", [7, 3]) == 20

    def test_float_double(self):
        src = "double f(double x) { return x * 0.5 + 1.0; }"
        assert run_c(src, "f", [4.0]) == 3.0

    def test_loops_and_arrays(self):
        src = """
double sum(int n, double *a) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += a[i];
  return s;
}
"""
        import numpy as np
        from repro.runtime import Buffer, Pointer

        module = compile_c(src)
        optimize(module)
        interp = Interpreter(module)
        buf = Buffer.from_numpy("a", np.arange(10, dtype=np.float64))
        assert interp.call("sum", [10, Pointer(buf, 0)]) == 45.0

    def test_while_and_break(self):
        src = """
int f(int n) {
  int i = 0;
  while (1) {
    if (i >= n) break;
    i++;
  }
  return i;
}
"""
        assert run_c(src, "f", [7]) == 7

    def test_continue(self):
        src = """
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    if (i % 2 == 0) continue;
    s += i;
  }
  return s;
}
"""
        assert run_c(src, "f", [6]) == 9  # 1 + 3 + 5

    def test_short_circuit(self):
        src = """
int f(int a, int b) {
  if (a > 0 && b > 0) return 1;
  if (a > 0 || b > 0) return 2;
  return 3;
}
"""
        assert run_c(src, "f", [1, 1]) == 1
        assert run_c(src, "f", [1, -1]) == 2
        assert run_c(src, "f", [-1, -1]) == 3

    def test_nested_calls(self):
        src = """
int sq(int x) { return x * x; }
int f(int x) { return sq(x) + sq(x + 1); }
"""
        assert run_c(src, "f", [3]) == 25

    def test_global_2d_array(self):
        src = """
double m[4][4];
double f() {
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      m[i][j] = (double)(i * 4 + j);
  return m[2][3];
}
"""
        assert run_c(src, "f", []) == 11.0

    def test_intrinsics(self):
        assert run_c("double f(double x) { return sqrt(x); }", "f",
                     [16.0]) == 4.0
        assert run_c("double f(double x) { return fabs(x); }", "f",
                     [-3.0]) == 3.0

    def test_int_division_truncates_toward_zero(self):
        assert run_c("int f(int a, int b) { return a / b; }", "f",
                     [-7, 2]) == -3
        assert run_c("int f(int a, int b) { return a % b; }", "f",
                     [-7, 2]) == -1

    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            compile_c("int f() { return zoo; }")

    def test_undeclared_function(self):
        with pytest.raises(SemanticError):
            compile_c("int f() { return g(1); }")

    def test_verified_output(self):
        src = """
void saxpy(int n, double a, double *x, double *y) {
  for (int i = 0; i < n; i++)
    y[i] = a * x[i] + y[i];
}
"""
        module = compile_c(src)
        verify_module(module)
        optimize(module)
        verify_module(module)
