"""Unit tests for the runtime substrate: memory model and interpreter."""

import numpy as np
import pytest

from repro.errors import InterpreterError
from repro.frontend import compile_c
from repro.ir import ArrayType, F64, I32, parse_module
from repro.passes import optimize
from repro.runtime import Buffer, Interpreter, Pointer
from repro.runtime.memory import dtype_of, scalar_count


class TestMemory:
    def test_buffer_for_type(self):
        buf = Buffer.for_type("g", ArrayType(4, ArrayType(8, F64)))
        assert buf.size == 32
        assert buf.data.dtype == np.float64

    def test_scalar_count(self):
        assert scalar_count(F64) == 1
        assert scalar_count(ArrayType(3, ArrayType(5, I32))) == 15

    def test_dtype_of(self):
        assert dtype_of(I32) == np.int32
        assert dtype_of(ArrayType(2, F64)) == np.float64

    def test_pointer_arithmetic(self):
        buf = Buffer.from_numpy("a", np.arange(10.0))
        p = Pointer(buf, 2)
        assert p.load() == 2.0
        assert p.add(3).load() == 5.0
        p.add(1).store(99.0)
        assert buf.data[3] == 99.0

    def test_out_of_bounds(self):
        buf = Buffer.from_numpy("a", np.zeros(4))
        with pytest.raises(InterpreterError):
            Pointer(buf, 10).load()

    def test_view_slicing(self):
        buf = Buffer.from_numpy("a", np.arange(8.0))
        assert list(Pointer(buf, 2).view(3)) == [2.0, 3.0, 4.0]


def interp(src):
    m = compile_c(src)
    optimize(m)
    return m, Interpreter(m)


class TestInterpreter:
    def test_gep_nested_arrays(self):
        src = """
double g[3][4];
double f(int i, int j) {
  g[i][j] = 7.5;
  return g[i][j];
}
"""
        m, it = interp(src)
        assert it.call("f", [2, 3]) == 7.5
        assert it.globals["g"].data[2 * 4 + 3] == 7.5

    def test_phi_simultaneous_evaluation(self):
        # Swapping phis must read both old values (lost-copy test).
        text = """
define i32 @swap(i32 %n) {
entry:
  br label %loop
loop:
  %a = phi i32 [ 1, %entry ], [ %b, %loop ]
  %b = phi i32 [ 2, %entry ], [ %a, %loop ]
  %i = phi i32 [ 0, %entry ], [ %next, %loop ]
  %next = add i32 %i, 1
  %c = icmp slt i32 %next, %n
  br i1 %c, label %loop, label %done
done:
  ret i32 %a
}
"""
        m = parse_module(text)
        it = Interpreter(m)
        assert it.call("swap", [3]) == 1  # a,b swap each iteration: 1,2,1
        it2 = Interpreter(m)
        assert it2.call("swap", [2]) == 2

    def test_division_by_zero_raises(self):
        m, it = interp("int f(int a) { return 10 / a; }")
        with pytest.raises(InterpreterError):
            it.call("f", [0])

    def test_float_division_by_zero_is_inf(self):
        m, it = interp("double f(double a) { return 1.0 / a; }")
        assert it.call("f", [0.0]) == float("inf")

    def test_recursion(self):
        m, it = interp("""
int fib(int n) {
  if (n < 2) return n;
  return fib(n-1) + fib(n-2);
}
""")
        assert it.call("fib", [10]) == 55

    def test_step_budget(self):
        m = compile_c("void f() { while (1) { } }")
        optimize(m)
        it = Interpreter(m, max_steps=1000)
        with pytest.raises(InterpreterError):
            it.call("f", [])

    def test_profile_counts(self):
        m, it = interp("""
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += i;
  return s;
}
""")
        it.call("f", [10])
        counts = it.profile.opcode_counts()
        assert counts["phi"] >= 20        # two phis, 10+ iterations
        assert counts["icmp"] >= 10
        assert it.profile.total_instructions() > 40

    def test_alloca_array_locals(self):
        m, it = interp("""
int f() {
  int a[8];
  for (int i = 0; i < 8; i++) a[i] = i * i;
  return a[5];
}
""")
        assert it.call("f", []) == 25

    def test_trunc_and_sext(self):
        m = parse_module("""
define i32 @f(i32 %x) {
entry:
  %t = trunc i32 %x to i8
  %s = sext i8 %t to i32
  ret i32 %s
}
""")
        it = Interpreter(m)
        assert it.call("f", [200]) == -56  # 200 mod 256 = -56 signed

    def test_bind_global(self):
        m, it = interp("""
double g[4];
double f() { return g[1] + g[2]; }
""")
        it.bind_global("g", np.array([1.0, 2.0, 3.0, 4.0]))
        assert it.call("f", []) == 5.0

    def test_deterministic_rand(self):
        m, it = interp("int f() { return rand() % 100; }")
        first = it.call("f", [])
        m2, it2 = interp("int f() { return rand() % 100; }")
        assert it2.call("f", []) == first
