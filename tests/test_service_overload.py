"""Tests for the service's overload-safety layer: admission control and
typed sheds, per-tenant weighted-round-robin fairness, deadline
propagation, the ``starting → ready → draining → stopped`` lifecycle,
structured daemon error kinds, and the self-healing client."""

import socket as socket_module
import threading
import time

import pytest

from repro.errors import IDLError, InjectedFault
from repro.frontend import compile_c
from repro.ir.printer import print_module
from repro.passes import optimize
from repro.reliability import faults
from repro.reliability.faults import FaultPlan
from repro.reliability.supervisor import RetryPolicy
from repro.service import (
    DeadlineExpired,
    DetectionDaemon,
    DetectionService,
    ServiceClient,
    ServiceConfig,
    ServiceDraining,
    ServiceError,
    ServiceOverloaded,
    encode_error,
    error_from_response,
    report_wire_fingerprint,
)
from repro.service.core import _Request

SRC = """
double dot(double* a, double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) { s = s + a[i] * b[i]; }
  return s;
}
"""


def module_text(src=SRC, name="t"):
    module = compile_c(src, name)
    optimize(module)
    return print_module(module)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.install_plan(None)
    yield
    faults.install_plan(None)


#: A plan that hangs every batch briefly — the deterministic way to
#: build a backlog no matter how fast the solver is on this machine.
def slow_batches(seconds=0.05, count=64):
    return FaultPlan([{"site": "service.batch", "kind": "hang",
                       "seconds": seconds, "at": tuple(range(count))}])


# ---------------------------------------------------------------------------
# RetryPolicy.tightened — the deadline-propagation primitive
# ---------------------------------------------------------------------------

class TestTightened:
    def test_none_budget_is_identity(self):
        policy = RetryPolicy(deadline_s=2.0)
        assert policy.tightened(None) is policy

    def test_budget_tightens_an_unbounded_policy(self):
        assert RetryPolicy().tightened(0.5).deadline_s == 0.5

    def test_budget_tightens_a_looser_deadline(self):
        assert RetryPolicy(deadline_s=10.0).tightened(0.5).deadline_s == 0.5

    def test_tighter_existing_deadline_wins(self):
        policy = RetryPolicy(deadline_s=0.1)
        assert policy.tightened(5.0) is policy

    def test_non_positive_budget_clamps_near_zero(self):
        tightened = RetryPolicy().tightened(-3.0)
        assert 0 < tightened.deadline_s <= 1e-6

    def test_other_knobs_survive(self):
        policy = RetryPolicy(max_retries=7, backoff_s=0.9)
        tightened = policy.tightened(1.0)
        assert tightened.max_retries == 7
        assert tightened.backoff_s == 0.9


# ---------------------------------------------------------------------------
# Admission control: bounded queue, quotas, typed sheds
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_full_queue_sheds_typed_with_retry_after(self):
        text = module_text()
        faults.install_plan(slow_batches())
        config = ServiceConfig(max_pending=2, tenant_quota=2,
                               batch_window_s=0.02, max_batch=1,
                               dispatchers=1)
        sheds = []
        futures = []
        with DetectionService(config) as service:
            for _ in range(10):
                try:
                    futures.append(service.submit(text, tenant="flood"))
                except ServiceOverloaded as exc:
                    sheds.append(exc)
            for future in futures:
                future.result(timeout=60.0)
            stats = service.stats()
        assert sheds, "bounded queue never shed"
        assert all(exc.kind == "overloaded" for exc in sheds)
        assert all(exc.retry_after_s > 0 for exc in sheds)
        assert stats["sheds"] == len(sheds)
        assert stats["tenants"]["flood"]["sheds"] == len(sheds)

    def test_tenant_quota_protects_other_tenants(self):
        text = module_text()
        faults.install_plan(slow_batches())
        config = ServiceConfig(max_pending=16, tenant_quota=2,
                               batch_window_s=0.02, max_batch=1,
                               dispatchers=1)
        with DetectionService(config) as service:
            futures, shed = [], None
            for _ in range(6):
                try:
                    futures.append(service.submit(text, tenant="hog"))
                except ServiceOverloaded as exc:
                    shed = exc
            assert shed is not None and "quota" in str(shed)
            # The hog is capped, so the shared queue has room for
            # everyone else even while the hog's flood continues.
            polite = service.submit(text, tenant="polite")
            polite.result(timeout=60.0)
            for future in futures:
                future.result(timeout=60.0)

    def test_admit_fault_does_not_poison_the_service(self):
        text = module_text()
        faults.install_plan(FaultPlan([
            {"site": "service.admit", "kind": "exception", "at": (0,)}]))
        with DetectionService(ServiceConfig()) as service:
            with pytest.raises(InjectedFault):
                service.submit(text)
            service.detect(text, timeout=60.0)  # healthy afterwards

    def test_shed_is_an_idl_error(self):
        # Typed service errors must stay inside the repo's exception
        # taxonomy so pre-existing callers' except clauses still work.
        assert issubclass(ServiceOverloaded, IDLError)
        assert issubclass(ServiceDraining, ServiceError)
        assert issubclass(DeadlineExpired, ServiceError)


# ---------------------------------------------------------------------------
# Fairness: weighted round-robin batch formation
# ---------------------------------------------------------------------------

def _loaded_service(pending: dict, weights=None) -> DetectionService:
    """A never-started service with hand-loaded tenant queues, for
    white-box batch-formation tests (no solving involved)."""
    service = DetectionService(ServiceConfig(
        tenant_weights=weights or {}))
    with service._lock:
        for tenant, count in pending.items():
            state = service._tenant_locked(tenant)
            for _ in range(count):
                state.queue.append(_Request(None, tenant))
                service._pending += 1
    return service


class TestFairBatching:
    def counts(self, batch):
        out = {}
        for request in batch:
            out[request.tenant] = out.get(request.tenant, 0) + 1
        return out

    def test_flooder_cannot_monopolise_a_batch(self):
        service = _loaded_service({"flood": 10, "b": 3, "c": 3})
        with service._lock:
            batch = service._next_batch_locked(8)
        assert self.counts(batch) == {"flood": 3, "b": 3, "c": 2}

    def test_weights_grant_proportional_slots(self):
        service = _loaded_service({"big": 10, "small": 10},
                                  weights={"big": 3})
        with service._lock:
            batch = service._next_batch_locked(8)
        assert self.counts(batch) == {"big": 6, "small": 2}

    def test_rotation_moves_the_leftover_slot_around(self):
        # With 3 equal tenants and batches of 4, the odd slot must not
        # always land on the same (structurally first) tenant.
        service = _loaded_service({"a": 20, "b": 20, "c": 20})
        leftovers = set()
        for _ in range(3):
            with service._lock:
                batch = service._next_batch_locked(4)
            counts = self.counts(batch)
            leftovers.add(max(counts, key=counts.get))
        assert len(leftovers) > 1

    def test_drains_fully_when_under_capacity(self):
        service = _loaded_service({"a": 2, "b": 1})
        with service._lock:
            batch = service._next_batch_locked(32)
        assert len(batch) == 3
        assert service._pending == 0


# ---------------------------------------------------------------------------
# Deadlines: admission, queue expiry, solver budget
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_already_expired_rejected_at_admission(self):
        with DetectionService(ServiceConfig()) as service:
            with pytest.raises(DeadlineExpired):
                service.submit(module_text(), deadline_s=0.0)
            with pytest.raises(DeadlineExpired):
                service.submit(module_text(), deadline_s=-5.0)
            assert service.stats()["requests"] == 0

    def test_queue_expiry_is_typed_and_counted(self):
        text = module_text()
        faults.install_plan(FaultPlan([
            {"site": "service.batch", "kind": "hang", "seconds": 0.12,
             "at": (0,)}]))
        config = ServiceConfig(batch_window_s=0.005, dispatchers=1)
        with DetectionService(config) as service:
            doomed = service.submit(text, tenant="late", deadline_s=0.05)
            control = service.submit(text, tenant="ok")
            with pytest.raises(DeadlineExpired):
                doomed.result(timeout=60.0)
            control.result(timeout=60.0)
            stats = service.stats()
        assert stats["expired"] == 1
        assert stats["tenants"]["late"]["expired"] == 1
        assert stats["tenants"]["ok"]["expired"] == 0

    def test_config_deadline_degrades_to_partial_not_hang(self):
        # An already-expired per-function solve deadline must produce a
        # timed-out-partial outcome through the supervisor, never an
        # exception or a stuck future. CG's driver loop solves for
        # >4096 ticks, enough for the sampled wall clock to notice
        # (same workload the reliability suite uses).
        from repro.workloads import all_workloads

        workload = next(w for w in all_workloads() if w.name == "CG")
        text = module_text(workload.source, workload.name)
        config = ServiceConfig(deadline_s=0.0)
        with DetectionService(config) as service:
            result = service.detect(text, timeout=120.0)
        outcomes = result.report.outcomes.counts()
        assert outcomes.get("timed-out-partial", 0) >= 1

    def test_generous_budget_does_not_change_the_answer(self):
        text = module_text()
        with DetectionService(ServiceConfig()) as service:
            bounded = service.detect(text, deadline_s=60.0, timeout=60.0)
            unbounded = service.detect(text, timeout=60.0)
        assert (report_wire_fingerprint(bounded.report)
                == report_wire_fingerprint(unbounded.report))


# ---------------------------------------------------------------------------
# Lifecycle: starting → ready → draining → stopped
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_states_progress(self):
        service = DetectionService(ServiceConfig())
        assert service.state == "starting"
        service.start()
        assert service.state == "ready"
        assert service.drain() is True
        assert service.state == "draining"
        service.close()
        assert service.state == "stopped"

    def test_drain_refuses_new_work_typed(self):
        with DetectionService(ServiceConfig()) as service:
            service.drain()
            with pytest.raises(ServiceDraining):
                service.submit(module_text())
            assert service.stats()["state"] == "draining"

    def test_drain_waits_for_queued_work(self):
        text = module_text()
        faults.install_plan(slow_batches(seconds=0.1, count=4))
        config = ServiceConfig(batch_window_s=0.02, max_batch=1,
                               dispatchers=1)
        with DetectionService(config) as service:
            futures = [service.submit(text) for _ in range(3)]
            assert service.drain(timeout=0.01) is False  # backlog remains
            assert service.state == "draining"
            assert service.drain(timeout=60.0) is True
            for future in futures:  # drained work completed, not dropped
                future.result(timeout=1.0)

    def test_health_reports_state_and_depths(self):
        with DetectionService(ServiceConfig()) as service:
            service.detect(module_text(), tenant="probe", timeout=60.0)
            health = service.health()
        assert health["state"] == "ready"
        assert health["pending"] == 0
        assert health["max_pending"] == service.config.max_pending
        assert "probe" in health["tenants"]


# ---------------------------------------------------------------------------
# Wire error envelope: kinds survive the round trip
# ---------------------------------------------------------------------------

class TestErrorEnvelope:
    def test_typed_service_errors_keep_kind_and_retry_after(self):
        response = encode_error(ServiceOverloaded("full",
                                                  retry_after_s=0.25))
        assert response["ok"] is False
        assert response["kind"] == "overloaded"
        assert response["retry_after_s"] == 0.25
        rebuilt = error_from_response(response)
        assert isinstance(rebuilt, ServiceOverloaded)
        assert rebuilt.retry_after_s == 0.25

    def test_caller_errors_are_bad_request(self):
        assert encode_error(IDLError("nope"))["kind"] == "bad-request"
        assert encode_error(ValueError("nope"))["kind"] == "bad-request"

    def test_unexpected_errors_are_internal(self):
        assert encode_error(RuntimeError("boom"))["kind"] == "internal"

    def test_deadline_round_trips(self):
        rebuilt = error_from_response(
            encode_error(DeadlineExpired("too late")))
        assert isinstance(rebuilt, DeadlineExpired)


# ---------------------------------------------------------------------------
# Daemon + self-healing client
# ---------------------------------------------------------------------------

def daemon_config(tmp_path=None, **kw):
    kw.setdefault("batch_window_s", 0.002)
    if tmp_path is not None:
        kw.setdefault("cache_dir", str(tmp_path))
    return ServiceConfig(**kw)


class TestDaemonLifecycle:
    def test_health_and_drain_ops(self):
        daemon = DetectionDaemon(port=0, config=daemon_config())
        daemon.serve_in_thread()
        host, port = daemon.address
        try:
            with ServiceClient(host, port, max_retries=0) as client:
                health = client.health()
                assert health["state"] == "ready"
                drained = client.drain(timeout_s=5.0)
                assert drained["drained"] is True
                assert drained["state"] == "draining"
                with pytest.raises(ServiceDraining):
                    client.detect(module_text())
        finally:
            daemon.close()

    def test_expired_deadline_rejected_over_the_wire(self):
        daemon = DetectionDaemon(port=0, config=daemon_config())
        daemon.serve_in_thread()
        host, port = daemon.address
        try:
            with ServiceClient(host, port) as client:
                with pytest.raises(DeadlineExpired):
                    client.detect(module_text(), deadline_s=-1.0)
        finally:
            daemon.close()

    def test_client_survives_daemon_restart(self, tmp_path):
        text = module_text()
        config = daemon_config(tmp_path)
        daemon = DetectionDaemon(port=0, config=config)
        daemon.serve_in_thread()
        host, port = daemon.address
        client = ServiceClient(host, port, max_retries=10,
                               backoff_s=0.05)
        try:
            first = client.detect_report(text)
            daemon.kill()  # live connection dropped, no goodbye

            def restart():
                time.sleep(0.2)
                replacement = DetectionDaemon(host, port, config=config)
                replacement.serve_in_thread()
                return replacement

            holder = {}
            thread = threading.Thread(
                target=lambda: holder.update(d=restart()), daemon=True)
            thread.start()
            second = client.detect_report(text)  # heals mid-call
            thread.join(timeout=30.0)
            assert client.reconnects >= 1
            assert (report_wire_fingerprint(first)
                    == report_wire_fingerprint(second))
        finally:
            client.close()
            if "d" in holder:
                holder["d"].close()

    def test_injected_conn_drop_is_healed(self):
        faults.install_plan(FaultPlan([
            {"site": "daemon.conn", "kind": "exception", "at": (1,),
             "key": "ping"}]))
        daemon = DetectionDaemon(port=0, config=daemon_config())
        daemon.serve_in_thread()
        host, port = daemon.address
        try:
            with ServiceClient(host, port, backoff_s=0.01) as client:
                assert client.ping()
                assert client.ping()  # dropped by the fault, then healed
                assert client.retries >= 1
        finally:
            daemon.close()


class TestClientHygiene:
    def test_port_zero_rejected(self):
        with pytest.raises(IDLError):
            ServiceClient("127.0.0.1", 0)

    def test_no_socket_leak_when_setup_fails(self, monkeypatch):
        class FakeSock:
            closed = False

            def settimeout(self, _timeout):
                raise OSError("simulated setup failure")

            def close(self):
                FakeSock.closed = True

        monkeypatch.setattr(
            "repro.service.daemon.socket.create_connection",
            lambda *a, **k: FakeSock())
        with pytest.raises(OSError):
            ServiceClient("127.0.0.1", 1)
        assert FakeSock.closed, "failed setup leaked the socket"

    def test_overloaded_retry_honours_retry_after(self, monkeypatch):
        # A client facing typed sheds must back off and eventually get
        # through — no daemon needed: fake the transport.
        responses = [
            {"ok": False, "kind": "overloaded", "error": "full",
             "retry_after_s": 0.01},
            {"ok": False, "kind": "overloaded", "error": "full",
             "retry_after_s": 0.01},
            {"ok": True, "pong": True},
        ]
        client = ServiceClient.__new__(ServiceClient)
        client.host, client.port = "fake", 1
        client.timeout = client.connect_timeout = 1.0
        client.max_retries = 5
        client.backoff_s = 0.001
        client.max_backoff_s = 0.01
        client.reconnect = True
        client.reconnects = client.retries = 0
        client._sock = None
        client._rfile = None

        def fake_connect():
            import json as json_module

            class Sock:
                def sendall(self, _data):
                    pass

            class RFile:
                def readline(self):
                    return (json_module.dumps(responses.pop(0))
                            + "\n").encode()

            client._sock, client._rfile = Sock(), RFile()

        monkeypatch.setattr(client, "_connect", fake_connect)
        t0 = time.monotonic()
        assert client.request({"op": "ping"})["pong"] is True
        assert client.retries == 2
        assert time.monotonic() - t0 >= 0.02  # two retry_after sleeps

    def test_non_retryable_kinds_raise_immediately(self, monkeypatch):
        client = ServiceClient.__new__(ServiceClient)
        client.host, client.port = "fake", 1
        client.timeout = client.connect_timeout = 1.0
        client.max_retries = 5
        client.backoff_s = 0.001
        client.max_backoff_s = 0.01
        client.reconnect = True
        client.reconnects = client.retries = 0

        class Sock:
            def sendall(self, _data):
                pass

        class RFile:
            def readline(self):
                return (b'{"ok": false, "kind": "bad-request", '
                        b'"error": "nope"}\n')

        client._sock, client._rfile = Sock(), RFile()
        with pytest.raises(IDLError):
            client.request({"op": "detect"})
        assert client.retries == 0


# ---------------------------------------------------------------------------
# Stats coherence under concurrent load
# ---------------------------------------------------------------------------

class TestStatsCoherence:
    def test_counters_balance_while_serving(self):
        text = module_text()
        config = ServiceConfig(batch_window_s=0.001)
        snapshots = []
        with DetectionService(config) as service:
            stop = threading.Event()

            def poll():
                while not stop.is_set():
                    snapshots.append(service.stats())

            poller = threading.Thread(target=poll, daemon=True)
            poller.start()
            futures = [service.submit(text, tenant=f"t{i % 3}")
                       for i in range(30)]
            for future in futures:
                future.result(timeout=60.0)
            stop.set()
            poller.join(timeout=10.0)
            final = service.stats()
        for snap in snapshots + [final]:
            completed = sum(t["completed"]
                            for t in snap["tenants"].values())
            # A coherent snapshot never shows more completions than
            # admissions, and pending is what's admitted minus what
            # finished or failed.
            assert completed <= snap["requests"]
            assert snap["pending"] >= 0
        assert final["requests"] == 30
        assert sum(t["completed"] for t in final["tenants"].values()) == 30
        assert all("p95_latency_s" in t
                   for t in final["tenants"].values())
