"""Suite-level tests: census (Table 1), baselines, backends, experiments."""

import numpy as np
import pytest

from repro.backends import blas, halide, lift
from repro.backends.api import API_DESCRIPTORS, ApiRuntime, apis_for
from repro.detect import baseline_counts
from repro.platform import CPU, GPU, IGPU, best_api_cost, site_cost
from repro.runtime import compile_workload
from repro.workloads import all_workloads, expected_totals, get_workload


class TestWorkloadRegistry:
    def test_twenty_one_benchmarks(self):
        workloads = all_workloads()
        assert len(workloads) == 21
        assert sum(1 for w in workloads if w.suite == "NAS") == 10
        assert sum(1 for w in workloads if w.suite == "Parboil") == 11

    def test_table1_totals(self):
        """The suite-wide census equals the paper's Table 1 IDL row."""
        totals = expected_totals()
        assert totals == {
            "scalar_reduction": 45,
            "histogram_reduction": 5,
            "stencil": 6,
            "matrix_op": 1,
            "sparse_matrix_op": 3,
        }

    def test_ten_dominant(self):
        names = sorted(w.name for w in all_workloads() if w.dominant)
        assert names == ["CG", "EP", "IS", "MG", "histo", "lbm", "sgemm",
                         "spmv", "stencil", "tpacf"]


@pytest.mark.parametrize("name", [w.name for w in all_workloads()])
def test_census_per_benchmark(name):
    """Detected idioms per benchmark equal the Figure 16 reconstruction."""
    w = get_workload(name)
    compiled = compile_workload(name, w.source)
    got = compiled.report.by_category()
    assert got == {k: v for k, v in w.expected.items() if v}


class TestBaselines:
    def test_baseline_rows(self):
        """Table 1 baseline rows: Polly 3/-/5/-/-, ICC 28/-/-/-/-."""
        matches = []
        for w in all_workloads():
            matches.extend(compile_workload(w.name, w.source).report.matches)
        rows = baseline_counts(matches)
        assert rows["ICC"] == {"scalar_reduction": 28}
        assert rows["Polly"] == {"scalar_reduction": 3, "stencil": 5}


class TestBackends:
    def test_gemm_flat_matches_numpy(self):
        rng = np.random.default_rng(0)
        m = n = k = 6
        a = rng.uniform(-1, 1, m * k)
        b = rng.uniform(-1, 1, n * k)
        c = rng.uniform(-1, 1, m * n)
        c0 = c.copy()
        blas.gemm_flat(a, m, b, n, c, m, m, n, k, alpha=2.0, beta=0.5)
        a_eff = a.reshape(k, m)
        b_eff = b.reshape(k, n)
        expect = 0.5 * c0.reshape(n, m) + 2.0 * np.einsum(
            "ki,kj->ji", a_eff, b_eff)
        np.testing.assert_allclose(c.reshape(n, m), expect, atol=1e-12)

    def test_api_descriptors(self):
        assert "cuSPARSE" in API_DESCRIPTORS
        assert API_DESCRIPTORS["cuSPARSE"].supports("gpu", "sparse_matrix_op")
        assert not API_DESCRIPTORS["cuSPARSE"].supports("cpu",
                                                        "sparse_matrix_op")
        assert not API_DESCRIPTORS["Halide"].supports("gpu", "stencil")

    def test_apis_for(self):
        gpu_sparse = {d.name for d in apis_for("sparse_matrix_op", "gpu")}
        assert gpu_sparse == {"cuSPARSE", "clSPARSE", "libSPMV"}

    def test_halide_stencil_realize(self):
        x, y = halide.Var("x"), halide.Var("y")
        expr = (halide.BufferRef("input", (-1, 0))
                + halide.BufferRef("input", (1, 0))) * 0.5
        func = halide.Func("blur", [x, y], expr).parallel(x).vectorize(y, 8)
        grid = np.arange(36, dtype=float).reshape(6, 6)
        out = func.realize([(1, 5), (1, 5)], {"input": grid})
        expect = 0.5 * (grid[0:4, 1:5] + grid[2:6, 1:5])
        np.testing.assert_allclose(out, expect)

    def test_lift_reduction_pipeline(self):
        pattern = lift.reduction_to_lift(
            delta_fn=lambda a, b: a * b, kind="sum", init=0.0, n_inputs=2)
        fn = lift.compile_pattern(pattern)
        x = np.arange(5.0)
        y = np.ones(5) * 2.0
        assert fn({"in0": x, "in1": y}) == pytest.approx(20.0)

    def test_lift_split_join(self):
        inner = lift.Map(lift.UserFun("dbl", 1, lambda v: v * 2),
                         lift.Input("xs"))
        fn = lift.compile_pattern(inner)
        np.testing.assert_allclose(fn({"xs": np.arange(4.0)}),
                                   [0.0, 2.0, 4.0, 6.0])


class TestCostModel:
    def _site(self, category, elements=1e6, flops_pe=2, bytes_=None):
        runtime = ApiRuntime()
        site = runtime.new_site("X", category, lambda a, i: None)
        site.stats = {"calls": 1, "elements": elements,
                      "flops_per_element": flops_pe,
                      "bytes": bytes_ if bytes_ is not None else elements * 8}
        return site

    def test_gpu_wins_large_gemm(self):
        site = self._site("matrix_op", elements=1e9, bytes_=24e6)
        apis = list(API_DESCRIPTORS.values())
        cpu = best_api_cost(site, apis, CPU)
        gpu = best_api_cost(site, apis, GPU)
        assert gpu[1].total_s < cpu[1].total_s
        assert gpu[0].name == "cuBLAS"
        assert cpu[0].name == "MKL"

    def test_cpu_wins_tiny_problem(self):
        site = self._site("scalar_reduction", elements=1e3)
        apis = list(API_DESCRIPTORS.values())
        cpu = best_api_cost(site, apis, CPU)
        gpu = best_api_cost(site, apis, GPU)
        assert cpu[1].total_s < gpu[1].total_s

    def test_lazy_transfers_help_iterative(self):
        site = self._site("sparse_matrix_op", elements=1e6)
        site.stats["calls"] = 100
        api = API_DESCRIPTORS["cuSPARSE"]
        eager = site_cost(site, api, GPU, lazy_transfers=False)
        lazy = site_cost(site, api, GPU, lazy_transfers=True)
        assert lazy.total_s < eager.total_s

    def test_igpu_cheaper_transfer_than_gpu(self):
        site = self._site("stencil", elements=1e5)
        lift_api = API_DESCRIPTORS["Lift"]
        igpu = site_cost(site, lift_api, IGPU)
        gpu = site_cost(site, lift_api, GPU)
        assert igpu.transfer_s < gpu.transfer_s


class TestCompileOverhead:
    def test_detection_overhead_is_bounded(self):
        """Table 2's point: IDL detection stays within interactive compile
        times. (Relative overhead is larger here than the paper's +82%
        because our baseline compiler is tiny; see EXPERIMENTS.md.)"""
        w = get_workload("BT")
        compiled = compile_workload(w.name, w.source)
        assert compiled.detect_seconds < 30.0


class TestCBackend:
    def test_kernel_to_c(self):
        from repro.transform import KBin, KParam, KConst, ExtractedKernel
        from repro.transform import kernel_to_c

        expr = KBin("fadd", KParam(0), KBin("fmul", KParam(1), KConst(2.0)))
        kernel = ExtractedKernel(expr)
        text = kernel_to_c(kernel, name="k", n_params=2)
        assert "double k(double in0, double in1)" in text
        assert "(in0 + (in1 * 2.0))" in text
