"""Detection tests for the five idiom classes (paper §4, Figures 8-14)."""

import pytest

from repro.frontend import compile_c
from repro.idioms import detect_idioms, library_line_count
from repro.ir import parse_module
from repro.passes import optimize


def detect(src):
    m = compile_c(src)
    optimize(m)
    return detect_idioms(m)


class TestReduction:
    def test_dot_product(self):
        r = detect("""
double dotp(int n, double *x, double *y) {
  double s = 0.0;
  for (int i = 0; i < n; i++) s += x[i] * y[i];
  return s;
}
""")
        assert r.by_idiom() == {"Reduction": 1}

    def test_max_reduction_via_ternary(self):
        r = detect("""
double vmax(int n, double *x) {
  double best = 0.0;
  for (int i = 0; i < n; i++)
    best = x[i] > best ? x[i] : best;
  return best;
}
""")
        assert r.by_idiom() == {"Reduction": 1}

    def test_conditional_reduction(self):
        r = detect("""
double csum(int n, double *x) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    if (x[i] > 0.0) s += x[i];
  }
  return s;
}
""")
        assert r.by_idiom() == {"Reduction": 1}

    def test_two_accumulators_two_instances(self):
        r = detect("""
double two(int n, double *x, double *y) {
  double a = 0.0;
  double b = 0.0;
  for (int i = 0; i < n; i++) {
    a += x[i];
    b += y[i] * y[i];
  }
  return a + b;
}
""")
        assert r.by_idiom() == {"Reduction": 2}

    def test_int_reduction(self):
        r = detect("""
int isum(int n, int *x) {
  int s = 0;
  for (int i = 0; i < n; i++) s += x[i];
  return s;
}
""")
        assert r.by_idiom() == {"Reduction": 1}

    def test_map_is_not_reduction(self):
        r = detect("""
void scale(int n, double *x) {
  for (int i = 0; i < n; i++) x[i] = x[i] * 2.0;
}
""")
        assert r.total() == 0


class TestHistogram:
    def test_plain_histogram(self):
        r = detect("""
void h(int n, int *key, int *bin) {
  for (int i = 0; i < n; i++)
    bin[key[i]] = bin[key[i]] + 1;
}
""")
        assert r.by_idiom() == {"Histogram": 1}

    def test_weighted_histogram(self):
        r = detect("""
void h(int n, int *g, double *v, double *acc) {
  for (int i = 0; i < n; i++)
    acc[g[i]] = acc[g[i]] + v[i];
}
""")
        assert r.by_idiom() == {"Histogram": 1}

    def test_iterator_indexed_update_is_not_histogram(self):
        # z[i] += x[i] is a map (injective index) — paper's daxpy loops
        # in CG must not be reported as histograms.
        r = detect("""
void axpy(int n, double a, double *x, double *z) {
  for (int i = 0; i < n; i++)
    z[i] = z[i] + a * x[i];
}
""")
        assert r.by_idiom().get("Histogram") is None


class TestSPMV:
    PAPER_FIG4 = """
void spmv(int m, double *a, int *rowstr, int *colidx, double *z, double *r) {
  for (int j = 0; j < m; j++) {
    double d = 0.0;
    for (int k = rowstr[j]; k < rowstr[j+1]; k++)
      d = d + a[k] * z[colidx[k]];
    r[j] = d;
  }
}
"""

    def test_figure4_detected(self):
        r = detect(self.PAPER_FIG4)
        assert r.by_idiom() == {"SPMV": 1}

    def test_figure5_variable_assignment(self):
        r = detect(self.PAPER_FIG4)
        sol = r.matches[0].solution
        # The paper's Figure 5 table (semantic names).
        assert sol["idx_read.base_pointer"].name == "colidx"
        assert sol["seq_read.base_pointer"].name == "a"
        assert sol["indir_read.base_pointer"].name == "z"
        assert sol["output.address"].opcode == "gep"

    def test_inner_reduction_subsumed(self):
        r = detect(self.PAPER_FIG4)
        assert "Reduction" not in r.by_idiom()

    def test_figure4_ir_with_sext(self):
        """The paper's literal IR shape, including sign extensions."""
        text = """
define void @spmv(i64 %m, double* %a, i32* %rowstr, i32* %colidx, double* %z, double* %r) {
entry:
  br label %outer
outer:
  %j = phi i64 [ %j_next, %exit_inner ], [ 0, %entry ]
  %j_cond = icmp slt i64 %j, %m
  br i1 %j_cond, label %outer_body, label %done
outer_body:
  %4 = gep i32* %rowstr, i64 %j
  %5 = load i32, i32* %4
  %j_next = add i64 %j, 1
  %6 = gep i32* %rowstr, i64 %j_next
  %7 = load i32, i32* %6
  %k_begin = sext i32 %5 to i64
  %k_end = sext i32 %7 to i64
  br label %inner
inner:
  %k = phi i64 [ %k_next, %inner_body ], [ %k_begin, %outer_body ]
  %d = phi double [ 0.0, %outer_body ], [ %d_next, %inner_body ]
  %k_cond = icmp slt i64 %k, %k_end
  br i1 %k_cond, label %inner_body, label %exit_inner
inner_body:
  %a_addr = gep double* %a, i64 %k
  %a_load = load double, double* %a_addr
  %cix_addr = gep i32* %colidx, i64 %k
  %cix_load = load i32, i32* %cix_addr
  %10 = sext i32 %cix_load to i64
  %z_addr = gep double* %z, i64 %10
  %z_load = load double, double* %z_addr
  %11 = fmul double %a_load, %z_load
  %d_next = fadd double %d, %11
  %k_next = add i64 %k, 1
  br label %inner
exit_inner:
  %r_addr = gep double* %r, i64 %j
  store double %d, double* %r_addr
  br label %outer
done:
  ret void
}
"""
        m = parse_module(text)
        r = detect_idioms(m)
        assert r.by_idiom() == {"SPMV": 1}
        sol = r.matches[0].solution
        assert sol["inner.iter_begin"].name == "k_begin"
        assert sol["inner.iter_end"].name == "k_end"


class TestGEMM:
    FORM1 = """
void sgemm(int m, int n, int k, float *A, int lda, float *B, int ldb,
           float *C, int ldc, float alpha, float beta) {
  for (int mm = 0; mm < m; ++mm) {
    for (int nn = 0; nn < n; ++nn) {
      float c = 0.0f;
      for (int i = 0; i < k; ++i) {
        float a = A[mm + i * lda];
        float b = B[nn + i * ldb];
        c += a * b;
      }
      C[mm+nn*ldc] = C[mm+nn*ldc] * beta + alpha * c;
    }
  }
}
"""
    FORM2 = """
double M1[60][60]; double M2[60][60]; double M3[60][60];
void mm() {
  for(int i = 0; i < 60; i++)
    for(int j = 0; j < 60; j++) {
      M3[i][j] = 0.0;
      for(int k = 0; k < 60; k++)
        M3[i][j] += M1[i][k] * M2[k][j];
    }
}
"""

    def test_figure8_first_form(self):
        assert detect(self.FORM1).by_idiom() == {"GEMM": 1}

    def test_figure8_second_form(self):
        """Both Figure-8 programs are instances of GEMM (paper §4.3)."""
        assert detect(self.FORM2).by_idiom() == {"GEMM": 1}

    def test_alpha_beta_bound(self):
        r = detect(self.FORM1)
        sol = r.matches[0].solution
        assert "dotp.alpha" in sol and "dotp.beta" in sol

    def test_inner_reduction_subsumed(self):
        assert "Reduction" not in detect(self.FORM1).by_idiom()


class TestStencil:
    def test_1d(self):
        r = detect("""
void smooth(int n, double *out, double *in) {
  for (int i = 1; i < n; i++)
    out[i] = 0.25*in[i-1] + 0.5*in[i] + 0.25*in[i+1];
}
""")
        assert r.by_idiom() == {"Stencil1D": 1}

    def test_2d(self):
        r = detect("""
double A[32][32]; double B[32][32];
void jacobi() {
  for (int i = 1; i < 31; i++)
    for (int j = 1; j < 31; j++)
      B[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j]
                       + A[i][j-1] + A[i][j+1]);
}
""")
        assert r.by_idiom() == {"Stencil2D": 1}

    def test_3d(self):
        r = detect("""
double U[12][12][12]; double V[12][12][12];
void relax() {
  for (int i = 1; i < 11; i++)
    for (int j = 1; j < 11; j++)
      for (int k = 1; k < 11; k++)
        V[i][j][k] = (U[i-1][j][k] + U[i+1][j][k] + U[i][j][k-1]
                      + U[i][j][k+1]) / 4.0;
}
""")
        assert r.by_idiom() == {"Stencil3D": 1}

    def test_copy_is_not_stencil(self):
        r = detect("""
void copy(int n, double *out, double *in) {
  for (int i = 0; i < n; i++) out[i] = in[i];
}
""")
        assert r.total() == 0

    def test_recurrence_is_not_stencil(self):
        # Writing the array it reads (Gauss-Seidel / scan) must not match.
        r = detect("""
void scan(int n, double *a, double *w) {
  for (int i = 1; i < n; i++)
    a[i] = a[i-1] * 0.5 + w[i];
}
""")
        assert "Stencil1D" not in r.by_idiom()

    def test_offsets_recovered(self):
        r = detect("""
void smooth(int n, double *out, double *in) {
  for (int i = 1; i < n; i++)
    out[i] = in[i-1] + in[i+1];
}
""")
        offsets = sorted(o[0] for o in r.matches[0].stencil_offsets())
        assert offsets == [-1, 1]


class TestLibraryMeta:
    def test_library_size_close_to_paper(self):
        """Paper: 'less than 500 lines of IDL code' for its idiom set."""
        assert 250 <= library_line_count() <= 700
