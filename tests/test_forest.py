"""Tests for the cross-idiom plan forest: feasibility signatures, prefix
sharing, the shared per-function subquery memo, and bit-identical
equivalence with the per-idiom executors across the whole suite."""

import pytest

from repro.analysis.info import FunctionAnalyses
from repro.errors import IDLError
from repro.frontend import compile_c
from repro.idioms import (
    DetectionSession,
    IdiomDetector,
    TOP_LEVEL_IDIOMS,
    load_library,
)
from repro.idl import (
    DEFAULT_MAX_STEPS,
    IdiomCompiler,
    SolveLimits,
    SolverStats,
    value_key,
)
from repro.idl.forest import (
    FeasibilitySignature,
    feasibility_signature,
    guaranteed_binds,
    min_loop_depth,
    required_opcodes,
)
from repro.passes import optimize
from repro.workloads import all_workloads

from test_plan_scheduler import SNIPPETS, compiled, report_fingerprint


@pytest.fixture(scope="module")
def suite_modules():
    return {w.name: compiled(w.source, w.name) for w in all_workloads()}


@pytest.fixture(scope="module")
def detectors():
    forest = IdiomDetector(ordering="forest")
    plan = IdiomDetector(ordering="plan")
    forest.compiler.prepare(forest.idioms, forest=True)
    plan.compiler.prepare(plan.idioms)
    return forest, plan


# ---------------------------------------------------------------------------
# Equivalence: forest vs per-idiom plan executor, all 21 workloads
# ---------------------------------------------------------------------------

class TestForestEquivalence:
    @pytest.mark.parametrize("name", [w.name for w in all_workloads()])
    def test_forest_matches_plan_bit_identically(self, name, suite_modules,
                                                 detectors):
        """The forest emits the exact same matches — same solutions, same
        representative witnesses, same order — as per-idiom plan mode."""
        forest, plan = detectors
        module = suite_modules[name]
        forest_report = forest.detect(module)
        plan_report = plan.detect(module)
        assert report_fingerprint(forest_report) == \
            report_fingerprint(plan_report)

    @pytest.mark.parametrize("name", ["CG", "sgemm", "histo", "stencil"])
    def test_forest_matches_dynamic(self, name, suite_modules):
        """Spot check against the seed's dynamic ordering as well."""
        module = suite_modules[name]
        forest_report = IdiomDetector(ordering="forest").detect(module)
        dynamic_report = IdiomDetector(ordering="dynamic", memo=False,
                                       indexed=False).detect(module)
        assert report_fingerprint(forest_report) == \
            report_fingerprint(dynamic_report)

    @pytest.mark.parametrize("name", ["CG", "MG", "lbm"])
    def test_forest_worker_counts_identical(self, name, suite_modules,
                                            detectors):
        """Thread pools change neither matches nor the pass-level stats
        (deterministic merge in module order)."""
        forest, _ = detectors
        module = suite_modules[name]
        reports = [DetectionSession(forest, workers=n).detect(module)
                   for n in (1, 3)]
        assert report_fingerprint(reports[0]) == report_fingerprint(
            reports[1])
        assert reports[0].stats == reports[1].stats

    def test_forest_process_mode_identical(self, suite_modules, detectors):
        forest, _ = detectors
        module = suite_modules["histo"]
        serial = DetectionSession(forest).detect(module)
        process = DetectionSession(forest, workers=2,
                                   mode="process").detect(module)
        assert report_fingerprint(process, by_identity=False) == \
            report_fingerprint(serial, by_identity=False)
        assert process.stats == serial.stats

    def test_forest_respects_max_solutions_like_plan(self):
        """The per-idiom solution cap truncates the same enumeration in
        both executors."""
        module = compiled(SNIPPETS["stencil"])
        for cap in (1, 2):
            forest = IdiomDetector(ordering="forest", max_solutions=cap) \
                .detect(module)
            plan = IdiomDetector(ordering="plan", max_solutions=cap) \
                .detect(module)
            assert report_fingerprint(forest) == report_fingerprint(plan)


# ---------------------------------------------------------------------------
# Feasibility signatures
# ---------------------------------------------------------------------------

class TestFeasibilitySignatures:
    def test_library_required_opcodes(self, detectors):
        forest, _ = detectors
        trie = forest.compiler.forest_for(tuple(forest.idioms))
        sig = trie.signatures
        # Every loop idiom needs the For building blocks.
        for name in TOP_LEVEL_IDIOMS:
            assert {"phi", "br", "icmp", "add"} <= \
                sig[name].required_opcodes
        assert "fmul" in sig["GEMM"].required_opcodes
        assert "fmul" in sig["SPMV"].required_opcodes
        assert "store" in sig["Histogram"].required_opcodes
        # Reduction reads through a collect (satisfiable by zero reads),
        # so loads are *not* required.
        assert "load" not in sig["Reduction"].required_opcodes

    def test_library_min_loop_depths(self, detectors):
        forest, _ = detectors
        trie = forest.compiler.forest_for(tuple(forest.idioms))
        depths = {name: trie.signatures[name].min_loop_depth
                  for name in TOP_LEVEL_IDIOMS}
        assert depths == {"GEMM": 3, "SPMV": 2, "Stencil3D": 3,
                          "Stencil2D": 2, "Stencil1D": 1,
                          "Histogram": 1, "Reduction": 1}

    def test_idiom_skipped_iff_required_opcode_absent(self):
        """An idiom is skipped exactly when a required opcode is absent:
        present -> solved (and found), absent -> counted as a skip."""
        idl = IdiomCompiler()
        idl.load("""
Constraint NeedsMul
( {m} is mul instruction and
  {a} is first argument of {m} )
End
""")
        with_mul = compiled("int f(int a) { return a * 3; }")
        without_mul = compiled("int f(int a) { return a + 3; }")
        solutions, stats = idl.match_library(
            with_mul.get_function("f"), ["NeedsMul"])
        assert len(solutions["NeedsMul"]) == 1
        assert stats.feasibility_skips == 0
        solutions, stats = idl.match_library(
            without_mul.get_function("f"), ["NeedsMul"])
        assert solutions["NeedsMul"] == []
        assert stats.feasibility_skips == 1

    def test_skipped_idioms_provably_empty_across_suite(self,
                                                       suite_modules,
                                                       detectors):
        """Soundness: every (function, idiom) pair the signatures skip is
        one the per-idiom plan executor finds no solution for."""
        forest, plan = detectors
        trie = forest.compiler.forest_for(tuple(forest.idioms))
        checked = 0
        for name in ("CG", "MG", "sgemm", "lbm", "tpacf"):
            module = suite_modules[name]
            for function in module.functions.values():
                if function.is_declaration():
                    continue
                analyses = FunctionAnalyses(function)
                for idiom in forest.idioms:
                    if trie.signatures[idiom].admits(analyses):
                        continue
                    solutions = plan.compiler.match(
                        function, idiom, analyses=analyses,
                        limits=plan.limits, ordering="plan")
                    assert solutions == [], (name, function.name, idiom)
                    checked += 1
        assert checked > 50  # the filter actually prunes on real code

    def test_loop_depth_prunes_nest_idioms(self):
        """A single loop admits Reduction but not the nest idioms."""
        module = compiled(SNIPPETS["reduction"])
        analyses = FunctionAnalyses(module.get_function("f"))
        assert analyses.max_loop_depth == 1
        forest = IdiomDetector(ordering="forest")
        trie = forest.compiler.forest_for(tuple(forest.idioms))
        assert trie.signatures["Reduction"].admits(analyses)
        assert not trie.signatures["GEMM"].admits(analyses)
        assert not trie.signatures["SPMV"].admits(analyses)

    def test_sequential_loops_not_mistaken_for_a_nest(self):
        """Header-to-header dominance does not imply nesting: two
        sequential loops satisfy it, so an idiom constraining only loop
        *headers* must keep min_loop_depth 1 and stay feasible
        (regression: it used to be pruned as depth 2, losing matches
        under the default forest ordering)."""
        idl = IdiomCompiler()
        load_library(idl)
        idl.load("""
Constraint TwoLoops
( inherits For at {a} and
  inherits For at {b} and
  {a.begin} strictly control flow dominates {b.begin} )
End
""")
        assert min_loop_depth(idl.compile("TwoLoops")) == 1
        # The ForNest chain (body entry -> next begin) still counts.
        assert min_loop_depth(idl.compile("ForNest",
                                          params={"N": 3})) == 3
        module = compiled("""
double f(int n, double *x) {
  double s = 0.0;
  for (int i = 0; i < n; i++) s = s + x[i];
  double t = 1.0;
  for (int j = 0; j < n; j++) t = t * x[j];
  return s + t;
}
""")
        function = module.get_function("f")
        forest_sols, stats = idl.match_library(function, ["TwoLoops"])
        plan_sols = idl.match(function, "TwoLoops", ordering="plan")
        assert stats.feasibility_skips == 0
        assert len(forest_sols["TwoLoops"]) == len(plan_sols) > 0

    def test_signature_of_custom_constraint(self):
        idl = IdiomCompiler()
        idl.load("""
Constraint EitherOp
( ( {x} is mul instruction or {x} is add instruction ) and
  {s} is store instruction )
End
""")
        lowered = idl.compile("EitherOp")
        sig = feasibility_signature(lowered)
        # Disjunction contributes only the branch intersection (empty
        # here); the conjunctive store is required.
        assert sig.required_opcodes == frozenset({"store"})
        assert sig.min_loop_depth == 0
        assert required_opcodes(lowered) == frozenset({"store"})
        assert min_loop_depth(lowered) == 0

    def test_admits_checks_opcode_index(self):
        sig = FeasibilitySignature(frozenset({"fmul"}), 0)
        module = compiled("double f(double a) { return a + 1.0; }")
        assert not sig.admits(FunctionAnalyses(module.get_function("f")))


# ---------------------------------------------------------------------------
# Trie structure and the shared subquery memo
# ---------------------------------------------------------------------------

class TestForestStructure:
    def test_prefix_sharing_exists(self, detectors):
        forest, _ = detectors
        trie = forest.compiler.forest_for(tuple(forest.idioms))
        # The identity-For group (Reduction/Histogram/SPMV/Stencil1D) and
        # the ForNest group (GEMM/Stencil3D/Stencil2D) each share a root.
        assert len(trie.roots) < len(TOP_LEVEL_IDIOMS)
        assert trie.shared_steps >= 10
        root_idioms = sorted(tuple(sorted(r.idioms)) for r in trie.roots)
        assert ("GEMM", "Stencil2D", "Stencil3D") in root_idioms
        assert ("Histogram", "Reduction", "SPMV", "Stencil1D") \
            in root_idioms

    def test_statically_ready_steps_skip_runtime_checks(self, detectors):
        """Reduction's whole plan is provably ready (its collect and
        natives consume only guaranteed bindings); Stencil1D constrains a
        collect-produced name, which a run-time readiness check guards."""
        forest, _ = detectors
        trie = forest.compiler.forest_for(tuple(forest.idioms))
        assert not any(e.needs_ready_check
                       for e in trie.step_execs["Reduction"])
        assert any(e.needs_ready_check
                   for e in trie.step_execs["Stencil1D"])

    def test_guaranteed_binds_pessimistic_for_collect(self, detectors):
        forest, _ = detectors
        plan = forest.compiler.plan_for("Reduction")
        collect_steps = [s for s in plan.steps
                         if type(s).__name__ == "CollectPlan"]
        assert collect_steps
        binds = guaranteed_binds(collect_steps[0])
        assert binds and all(b.startswith("#len:") for b in binds)

    def test_subquery_cache_shared_across_idioms(self):
        """A loop that is both a reduction and a histogram: the two
        idioms' structurally identical vector-read collects enumerate
        once for the shared loop context and replay from the
        function-wide subquery cache."""
        module = compiled("""
void f(int n, double *x, double *q) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s = s + x[i];
    int b = (int) x[i];
    q[b] = q[b] + 1.0;
  }
  q[0] = s;
}
""")
        detector = IdiomDetector(ordering="forest")
        session = DetectionSession(detector)
        report = session.detect(module)
        counts = report.by_idiom()
        assert counts.get("Histogram") == 1 and counts.get("Reduction") == 1
        assert report.stats.subquery_hits > 0
        assert session.analyses["f"].subquery_cache
        # Same matches as the per-idiom executor, cache or no cache.
        plan_report = IdiomDetector(ordering="plan").detect(module)
        assert report_fingerprint(report) == report_fingerprint(plan_report)

    def test_renamed_collects_share_cache_and_retarget(self):
        """Two idioms whose collect bodies are identical up to the family
        root name share one cache entry; the replay retargets the cached
        instances into the second site's names (regression: the replay
        used to return the first site's names, silently binding
        nothing)."""
        idl = IdiomCompiler()
        idl.load("""
Constraint ReadsA
( {anchor} is store instruction and
  collect i 4
  ( {read[i]} is load instruction and
    {read[i].addr} is first argument of {read[i]} ) )
End
Constraint ReadsB
( {anchor} is store instruction and
  collect i 4
  ( {load[i]} is load instruction and
    {load[i].addr} is first argument of {load[i]} ) )
End
""")
        module = compiled("""
void f(double *a, double *b) {
  double x = a[0] + a[1];
  b[0] = x;
}
""")
        function = module.get_function("f")
        forest_sols, stats = idl.match_library(function,
                                               ["ReadsA", "ReadsB"])
        assert stats.subquery_hits > 0  # ReadsB replays ReadsA's collect
        for name in ("ReadsA", "ReadsB"):
            plan_sols = idl.match(function, name, ordering="plan")
            assert [sorted((k, value_key(v)) for k, v in s.items())
                    for s in forest_sols[name]] == \
                [sorted((k, value_key(v)) for k, v in s.items())
                 for s in plan_sols]
        root = "load" if "load[0]" in forest_sols["ReadsB"][0] else None
        assert root == "load"  # the retargeted family name, not read[0]

    def test_match_library_single_idiom_equals_match(self):
        """ordering='forest' through match_with_stats routes one idiom
        through the forest and agrees with the plan path."""
        idl = IdiomCompiler()
        load_library(idl)
        module = compiled(SNIPPETS["spmv"])
        function = module.get_function("f")
        forest_sols = idl.match(function, "SPMV", ordering="forest")
        plan_sols = idl.match(function, "SPMV", ordering="plan")
        assert [sorted((k, value_key(v)) for k, v in s.items())
                for s in forest_sols] == \
            [sorted((k, value_key(v)) for k, v in s.items())
             for s in plan_sols]

    def test_unknown_ordering_rejected(self):
        with pytest.raises(IDLError, match="unknown ordering"):
            IdiomDetector(ordering="rete")

    def test_forest_budget_scales_with_feasible_idioms(self):
        """The fused pass shares one solver, so its step budget scales by
        the number of feasible idioms: a function whose per-idiom solves
        each fit ``max_steps`` must not trip the forest's cap just
        because their ticks now accumulate in one pass."""
        idl = IdiomCompiler()
        load_library(idl)
        module = compiled(SNIPPETS["gemm"])
        function = module.get_function("f")
        per_idiom = []
        for idiom in TOP_LEVEL_IDIOMS:
            _, stats = idl.match_with_stats(function, idiom,
                                            ordering="plan")
            per_idiom.append(stats.ticks)
        cap = max(per_idiom) + 50
        assert sum(per_idiom) > cap  # the pass outweighs any single solve
        limits = SolveLimits(max_steps=cap)
        solutions, stats = idl.match_library(function, TOP_LEVEL_IDIOMS,
                                             limits=limits)
        assert solutions["GEMM"]
        assert stats.max_steps >= cap * 2  # scaled by feasible idioms


# ---------------------------------------------------------------------------
# Satellites: shared step-cap constant, value_key interning
# ---------------------------------------------------------------------------

class TestSharedStepCap:
    def test_single_default_constant(self):
        assert SolveLimits().max_steps == DEFAULT_MAX_STEPS
        assert SolverStats().max_steps == DEFAULT_MAX_STEPS

    def test_stats_track_new_counters(self):
        stats = SolverStats(feasibility_skips=2, subquery_hits=3)
        merged = SolverStats().merge(stats)
        assert merged.feasibility_skips == 2
        assert merged.subquery_hits == 3
        assert merged.as_dict()["subquery_hits"] == 3


class TestBenchDetect:
    def test_bench_on_subset(self):
        from repro.experiments.bench_detect import (
            check_regression,
            run_benchmark,
        )

        result = run_benchmark(["spmv", "histo"], full=True)
        rows = result["workloads"]
        assert rows["spmv"]["matches"] == 1
        assert rows["spmv"]["feasibility_skips"] > 0
        # The independent per-(function, idiom) arm repeats the shared
        # per-function work per idiom, so it is always the slowest.
        assert rows["spmv"]["independent_seconds"] > \
            rows["spmv"]["forest_seconds"]
        assert result["suite"]["match_sets_identical"]
        assert result["value_key"]["speedup"] > 0
        # A forest slower than the plan executor is flagged.
        bad = {"suite": {"forest_seconds": 2.0, "plan_seconds": 1.0}}
        assert check_regression(bad, 1.0)
        assert not check_regression(result, 10.0)


class TestValueKeyInterning:
    def test_constants_keyed_structurally(self):
        module = compiled("int f(int a) { return (a + 7) * (a - 7); }")
        function = module.get_function("f")
        sevens = [op for inst in function.instructions()
                  for op in inst.operands
                  if getattr(op, "value", None) == 7]
        assert len(sevens) >= 2
        assert value_key(sevens[0]) == value_key(sevens[1])

    def test_key_cached_on_value(self):
        module = compiled("int f(int a) { return a + 7; }")
        function = module.get_function("f")
        inst = next(iter(function.instructions()))
        key = value_key(inst)
        assert key == id(inst)
        assert inst._value_key == key
        assert value_key(inst) is inst._value_key or \
            value_key(inst) == inst._value_key
