"""Accelerating legacy sparse linear algebra (the paper's CG story, §2.3).

Takes the NAS-CG conjugate-gradient recreation, detects its idioms (two
CSR SPMV instances + eight scalar reductions), replaces them with
heterogeneous API calls, verifies that the transformed program computes
the same answer, and reports the simulated speedup of the best API on
each platform.

Run:  python examples/accelerate_cg.py
"""

from repro.backends.api import API_DESCRIPTORS
from repro.experiments.harness import _accelerated_seconds, evaluate_workload
from repro.platform import MACHINES
from repro.runtime import (
    compile_workload,
    outputs_match,
    run_accelerated,
    run_original,
)
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("CG")
    print(f"Benchmark: NAS {workload.name} — {workload.suite}")

    compiled = compile_workload(workload.name, workload.source)
    print("\nDetected idioms:")
    for match in compiled.report.matches:
        print(f"  {match.idiom:12s} in @{match.function.name}")

    inputs = workload.make_inputs(1)
    original = run_original(compiled, workload.entry, inputs)
    print(f"\nSequential execution: {original.total_instructions} "
          f"IR instructions interpreted")
    print(f"Idiom runtime coverage: {100 * original.coverage:.1f}%")

    accel_module = compile_workload(workload.name, workload.source)
    accelerated = run_accelerated(accel_module, workload.entry,
                                  workload.make_inputs(1))
    print(f"Accelerated execution: {accelerated.total_instructions} "
          f"IR instructions + {len(accelerated.api_runtime.all_sites())} "
          f"API call sites")
    assert outputs_match(original, accelerated), "results diverged!"
    print("Outputs verified identical.")

    print("\nSimulated end-to-end speedup (best API per platform):")
    ev = evaluate_workload(workload)
    for mname, machine in MACHINES.items():
        best = None
        for api in API_DESCRIPTORS.values():
            seconds = _accelerated_seconds(ev, api, machine, lazy=True)
            if seconds is not None and (best is None or seconds < best[0]):
                best = (seconds, api.name)
        if best:
            seq = ev.sequential_seconds * workload.paper_scale
            print(f"  {mname:5s} {seq / best[0]:6.2f}x  (via {best[1]})")


if __name__ == "__main__":
    main()
