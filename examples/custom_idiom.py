"""Writing a new idiom in IDL — "new idioms can be easily added" (§1).

Defines a SAXPY (scaled vector update) idiom from the library's building
blocks, without touching the detector, and finds it in user code the
built-in library does not classify. This is the paper's headline
extensibility claim: describing a new heterogeneous API's calling pattern
is a few lines of IDL, not a compiler pass.

Run:  python examples/custom_idiom.py
"""

from repro.frontend import compile_c
from repro.idl import IdiomCompiler
from repro.idioms import load_library
from repro.passes import optimize

# y[i] = y[i] + alpha * x[i]: a For loop around two vector reads of the
# same index, a multiply by a loop-invariant scalar, and a store back to
# one of the read locations.
SAXPY_IDL = """
Constraint Saxpy
( inherits For and
  inherits VectorRead
  with {iterator} as {idx}
  and {begin} as {begin} at {xread} and
  inherits VectorRead
  with {iterator} as {idx}
  and {begin} as {begin} at {yread} and
  {xread.base_pointer} is not the same as {yread.base_pointer} and
  {scaled} is fmul instruction and
  ( ( {xread.value} is first argument of {scaled} and
      {alpha} is second argument of {scaled} ) or
    ( {alpha} is first argument of {scaled} and
      {xread.value} is second argument of {scaled} ) ) and
  {alpha} strictly control flow dominates {begin} and
  {update} is fadd instruction and
  ( ( {yread.value} is first argument of {update} and
      {scaled} is second argument of {update} ) or
    ( {scaled} is first argument of {update} and
      {yread.value} is second argument of {update} ) ) and
  {store} is store instruction and
  {update} is first argument of {store} and
  {yread.address} is second argument of {store} )
End
"""

C_SOURCE = """
void daxpy(int n, double alpha, double *x, double *y) {
  for (int i = 0; i < n; i++)
    y[i] = y[i] + alpha * x[i];
}

void unrelated(int n, double *x) {
  for (int i = 0; i < n; i++)
    x[i] = x[i] * 2.0;
}
"""


def main() -> None:
    module = compile_c(C_SOURCE)
    optimize(module)

    idl = IdiomCompiler()
    load_library(idl)          # For, VectorRead, ... building blocks
    idl.load(SAXPY_IDL)        # our new idiom, ~20 lines of IDL

    print("Searching for the custom Saxpy idiom...")
    for fname in ("daxpy", "unrelated"):
        solutions = idl.match(module.get_function(fname), "Saxpy")
        print(f"  @{fname}: {len(solutions)} match(es)")
        for sol in solutions:
            print(f"    x = {sol['xread.base_pointer'].ref()}, "
                  f"y = {sol['yread.base_pointer'].ref()}, "
                  f"alpha = {sol['alpha'].ref()}")

    daxpy = idl.match(module.get_function("daxpy"), "Saxpy")
    assert len(daxpy) == 1
    assert idl.match(module.get_function("unrelated"), "Saxpy") == []
    print("\nSaxpy found exactly where it should be — no compiler "
          "changes required.")


if __name__ == "__main__":
    main()
