"""Quickstart: the paper's Figure 2/3 walkthrough, end to end.

Compiles a tiny C function, writes the FactorizationOpportunity idiom in
IDL, and prints the constraint solution — reproducing the paper's Figure 3
output exactly.

Run:  python examples/quickstart.py
"""

from repro.frontend import compile_c
from repro.idl import IdiomCompiler
from repro.ir import print_module
from repro.passes import optimize

C_SOURCE = """
int example(int a, int b, int c) {
  int d = a;
  return (a*b) + (c*d);
}
"""

IDL_SOURCE = """
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend} ) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend} ) )
End
"""


def main() -> None:
    print("Original C code:")
    print(C_SOURCE)

    module = compile_c(C_SOURCE)
    optimize(module)
    print("Resulting LLVM-like IR:")
    print(print_module(module))

    idl = IdiomCompiler()
    idl.load(IDL_SOURCE)
    solutions = idl.match(module.get_function("example"),
                          "FactorizationOpportunity")

    print("Detected factorization opportunities:")
    for solution in solutions:
        printable = {name: value.ref() for name, value in sorted(
            solution.items())}
        print(" ", printable)

    assert len(solutions) == 1
    assert solutions[0]["factor"].name == "a"
    print("\n(x*y)+(x*z) detected with factor x = %a — paper Figure 3.")


if __name__ == "__main__":
    main()
