"""Stencil → DSL pipeline: detect a Jacobi kernel, extract its kernel
function, translate to the miniature Halide and Lift backends (paper §6.2)
and execute both against the interpreter for cross-validation.

Run:  python examples/stencil_to_dsl.py
"""

import numpy as np

from repro.analysis import FunctionAnalyses
from repro.backends import halide, lift
from repro.frontend import compile_c
from repro.idioms import detect_idioms
from repro.passes import optimize
from repro.transform import KernelExtractor, kernel_to_c
from repro.transform.kernels import evaluate

C_SOURCE = """
void blur(int n, double *out, double *in) {
  for (int i = 1; i < n; i++)
    out[i] = 0.25*in[i-1] + 0.5*in[i] + 0.25*in[i+1];
}
"""


def main() -> None:
    module = compile_c(C_SOURCE)
    optimize(module)
    report = detect_idioms(module)
    match = report.matches[0]
    print(f"Detected: {match.idiom} in @{match.function.name}")
    offsets = [o[0] for o in match.stencil_offsets()]
    print(f"Read offsets: {offsets}")

    # Extract the kernel function the way the transformer does.
    analyses = FunctionAnalyses(match.function)
    reads = match.family("kernel.input")
    extractor = KernelExtractor(analyses, match.value("begin"),
                                match.value("body.begin"), reads)
    kernel = extractor.extract(match.value("kernel.output"))

    print("\nKernel as C (the IR-to-C backend Lift consumes):")
    print(kernel_to_c(kernel, name="blur_kernel", n_params=len(reads)))

    # Halide translation: a Func over shifted buffer reads + schedule.
    func = halide.stencil_to_halide(
        kernel.expr, [(o,) for o in offsets], captures=[], name="blur")
    print(f"\nHalide stage: {func} "
          f"(parallel={func.schedule.parallel}, "
          f"vectorize={func.schedule.vectorize})")

    rng = np.random.default_rng(0)
    grid = rng.uniform(0, 1, 64)
    halide_out = func.realize([(1, 63)], {"input": grid})

    # Direct vectorised evaluation of the extracted kernel (what the
    # simulated Lift pipeline executes under the hood).
    views = [grid[1 + o:63 + o] for o in offsets]
    direct = evaluate(kernel.expr, views, [])

    np.testing.assert_allclose(halide_out, direct, atol=1e-12)
    print("\nHalide realisation matches the extracted kernel: OK")

    # And the Lift rendition of a reduction for comparison (Figure 15).
    pattern = lift.reduction_to_lift(lambda a, b: a * b, "sum", 0.0, 2)
    dot = lift.compile_pattern(pattern)
    x, y = rng.uniform(0, 1, 32), rng.uniform(0, 1, 32)
    assert abs(dot({"in0": x, "in1": y}) - float(x @ y)) < 1e-9
    print("Lift reduce(add, 0, map(mult, zip(x, y))) matches numpy: OK")


if __name__ == "__main__":
    main()
