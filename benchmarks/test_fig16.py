"""Figure 16 — detected idioms per benchmark, by type."""

from repro.experiments.harness import fig16
from repro.workloads import all_workloads


def test_fig16_regeneration(benchmark):
    data = benchmark.pedantic(fig16, rounds=1, iterations=1)
    assert len(data) == 21
    for w in all_workloads():
        expected = {k: v for k, v in w.expected.items() if v}
        assert data[w.name] == expected, w.name
    # Headline instances called out in the paper's text:
    assert data["CG"]["sparse_matrix_op"] == 2
    assert data["sgemm"]["matrix_op"] == 1
    assert data["MG"]["stencil"] == 3
    assert data["histo"]["histogram_reduction"] == 1
