"""Table 1 — idiom counts by detector (IDL vs modelled ICC/Polly).

Regenerates the table and asserts the paper's exact values; the benchmark
times the full-suite detection pass.
"""

from repro.experiments.harness import table1


def test_table1_regeneration(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    assert result["IDL"] == {
        "scalar_reduction": 45,
        "histogram_reduction": 5,
        "stencil": 6,
        "matrix_op": 1,
        "sparse_matrix_op": 3,
    }
    assert result["ICC"] == {
        "scalar_reduction": 28, "histogram_reduction": 0, "stencil": 0,
        "matrix_op": 0, "sparse_matrix_op": 0,
    }
    assert result["Polly"] == {
        "scalar_reduction": 3, "histogram_reduction": 0, "stencil": 5,
        "matrix_op": 0, "sparse_matrix_op": 0,
    }
