"""Figure 17 — runtime coverage of detected idioms (interpreter counts)."""

from repro.experiments.harness import fig17


def test_fig17_regeneration(benchmark, evaluations):
    data = benchmark.pedantic(fig17, rounds=1, iterations=1)
    assert len(data) == 21
    # The paper's bimodal profile: dominant benchmarks high, others low,
    # EP in between (~50%).
    high = ["CG", "histo", "sgemm", "spmv", "tpacf", "MG", "lbm"]
    low = ["BT", "DC", "FT", "SP", "bfs", "cutcp", "mri-q", "sad"]
    for name in high:
        assert data[name] > 60.0, (name, data[name])
    for name in low:
        assert data[name] < 30.0, (name, data[name])
    assert 30.0 < data["EP"] < 80.0
