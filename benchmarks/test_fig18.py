"""Figure 18 — end-to-end speedups, best API per device (simulated)."""

from repro.experiments.harness import fig18


def _best(platforms, mname):
    entry = platforms.get(mname, {})
    chosen = entry.get("lazy") or entry.get("eager")
    return chosen["speedup"] if chosen else 0.0


def test_fig18_regeneration(benchmark, evaluations):
    data = benchmark.pedantic(fig18, rounds=1, iterations=1)
    # Who-wins-where, per the paper's qualitative findings:
    # computationally expensive benchmarks: external GPU wins by a margin.
    for name in ("CG", "sgemm", "spmv", "lbm", "stencil"):
        gpu = _best(data[name], "gpu")
        assert gpu >= _best(data[name], "cpu"), name
        assert gpu >= _best(data[name], "igpu"), name
    # tpacf: data transfer dominates the GPU — the CPU is the best target.
    assert _best(data["tpacf"], "cpu") > _best(data["tpacf"], "gpu")
    # Order-of-magnitude gains for the dense/sparse linear algebra cases.
    assert _best(data["sgemm"], "gpu") > 100.0
    assert _best(data["spmv"], "gpu") > 5.0
    assert _best(data["CG"], "gpu") > 3.0
    # Reduction-bound benchmarks land in the paper's modest 1.26-4.5 band.
    for name in ("EP", "IS", "histo", "MG"):
        best = max(_best(data[name], m) for m in ("cpu", "igpu", "gpu"))
        assert 1.0 < best < 8.0, (name, best)


def test_lazy_transfer_optimisation_matters(benchmark, evaluations):
    """The red bars: iterative benchmarks need transfer elision on GPUs."""
    data = benchmark.pedantic(fig18, rounds=1, iterations=1)
    for name in ("CG", "lbm", "spmv", "stencil"):
        gpu = data[name]["gpu"]
        assert "lazy" in gpu and "eager" in gpu
        assert gpu["lazy"]["speedup"] > gpu["eager"]["speedup"], name
