"""Table 2 — compile-time cost of IDL detection (measured wall clock)."""

from repro.runtime import compile_workload
from repro.workloads import all_workloads, get_workload


def test_table2_regeneration(benchmark):
    from repro.experiments.harness import table2

    rows = benchmark.pedantic(table2, rounds=1, iterations=1)
    assert len(rows) == 21
    # Shape check: overhead exists but detection stays interactive.
    for name, row in rows.items():
        assert row["with_idl_s"] >= row["without_idl_s"]
        assert row["with_idl_s"] < 60.0


def test_detection_cost_single_benchmark(benchmark):
    """Per-benchmark detection latency (the paper's with-IDL column)."""
    w = get_workload("IS")

    def detect_once():
        return compile_workload(w.name, w.source)

    compiled = benchmark(detect_once)
    assert compiled.report.total() == 3
