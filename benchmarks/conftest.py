"""Shared fixtures for the benchmark harness."""

import pytest


@pytest.fixture(scope="session")
def evaluations():
    """One detection+execution pass shared by every table/figure bench."""
    from repro.experiments.harness import evaluate_workload
    from repro.workloads import all_workloads

    return {w.name: evaluate_workload(w) for w in all_workloads()}
