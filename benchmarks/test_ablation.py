"""Ablation: which optimisation passes the idiom matching depends on.

The paper matches *optimised* IR (§2.1) and our DESIGN.md calls out three
canonicalisations as load-bearing: CSE (twin address computations in GEMM
and histograms), LICM + scalar promotion (register accumulators for
DotProductLoop), and mark-sweep DCE (dead phi cycles around loop nests).
This bench removes each and shows which idioms disappear — evidence that
the pipeline choices are necessary, not incidental.
"""

import pytest

from repro.frontend import compile_c
from repro.idioms import detect_idioms
from repro.ir.verifier import verify_function
from repro.passes import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    eliminate_redundant_loads,
    fold_constants,
    combine_instructions,
    forward_stores,
    hoist_loop_invariants,
    promote_allocas,
    promote_loop_accumulators,
    remove_trivial_phis,
    simplify_cfg,
)
from repro.passes.simplifycfg import remove_unreachable_blocks

GEMM2D = """
double M1[40][40]; double M2[40][40]; double M3[40][40];
void mm() {
  for(int i = 0; i < 40; i++)
    for(int j = 0; j < 40; j++) {
      M3[i][j] = 0.0;
      for(int k = 0; k < 40; k++)
        M3[i][j] += M1[i][k] * M2[k][j];
    }
}
"""

HISTOGRAM = """
void h(int n, int *key, int *bin) {
  for (int i = 0; i < n; i++)
    bin[key[i]] = bin[key[i]] + 1;
}
"""

SPMV = """
void spmv(int m, double *a, int *rowstr, int *colidx, double *z, double *r) {
  for (int j = 0; j < m; j++) {
    double d = 0.0;
    for (int k = rowstr[j]; k < rowstr[j+1]; k++)
      d = d + a[k] * z[colidx[k]];
    r[j] = d;
  }
}
"""


def _optimize_without(module, skip: set[str]) -> None:
    """The standard pipeline with named stages removed."""
    for function in module.functions.values():
        if function.is_declaration():
            continue
        remove_unreachable_blocks(function)
        promote_allocas(function)
        for _ in range(8):
            changed = 0
            changed += fold_constants(function)
            changed += combine_instructions(function)
            if "cse" not in skip:
                changed += eliminate_common_subexpressions(function)
                changed += eliminate_redundant_loads(function)
            changed += eliminate_dead_code(function)
            changed += simplify_cfg(function)
            changed += remove_trivial_phis(function)
            if "licm" not in skip:
                changed += hoist_loop_invariants(function)
            if "promote" not in skip:
                changed += forward_stores(function)
                changed += promote_loop_accumulators(function)
            if not changed:
                break
        verify_function(function)


def _detect_with_pipeline(source: str, skip: set[str]):
    module = compile_c(source)
    _optimize_without(module, skip)
    return detect_idioms(module).by_idiom()


def test_ablation_cse_enables_gemm_and_histogram(benchmark):
    def run():
        return (_detect_with_pipeline(GEMM2D, set()),
                _detect_with_pipeline(GEMM2D, {"cse", "promote"}),
                _detect_with_pipeline(HISTOGRAM, set()),
                _detect_with_pipeline(HISTOGRAM, {"cse"}))

    full_gemm, no_cse_gemm, full_histo, no_cse_histo = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert full_gemm == {"GEMM": 1}
    assert "GEMM" not in no_cse_gemm     # twin C[i][j] addresses unmerged
    assert full_histo == {"Histogram": 1}
    assert "Histogram" not in no_cse_histo  # twin bin[key[i]] loads split


def test_ablation_promotion_enables_memory_accumulators(benchmark):
    def run():
        return (_detect_with_pipeline(GEMM2D, set()),
                _detect_with_pipeline(GEMM2D, {"promote"}))

    full, no_promote = benchmark.pedantic(run, rounds=1, iterations=1)
    assert full == {"GEMM": 1}
    # Without LICM scalar promotion, M3[i][j] accumulates through memory —
    # DotProductLoop sees no register phi.
    assert "GEMM" not in no_promote


def test_ablation_spmv_robust_to_code_placement(benchmark):
    """Negative ablation: removing LICM moves the rowstr[j+1] bound load
    into the inner-loop header, yet SPMV still matches — the constraints
    range over def-use structure, not instruction placement. This is the
    paper's §4.3 claim ("not syntactic pattern matching") made testable."""
    def run():
        return (_detect_with_pipeline(SPMV, set()),
                _detect_with_pipeline(SPMV, {"licm"}))

    full, no_licm = benchmark.pedantic(run, rounds=1, iterations=1)
    assert full == {"SPMV": 1}
    assert no_licm == {"SPMV": 1}
