"""Table 3 — per-API simulated runtime per benchmark and platform."""

from repro.experiments.harness import table3


def test_table3_regeneration(benchmark, evaluations):
    data = benchmark.pedantic(table3, rounds=1, iterations=1)
    assert set(data) == {"CG", "EP", "IS", "MG", "histo", "lbm", "sgemm",
                         "spmv", "stencil", "tpacf"}
    # Shape checks mirroring the paper's bold entries:
    # MKL is the best CPU dense API; cuBLAS the best GPU dense API.
    sgemm = data["sgemm"]
    assert min(sgemm["cpu"], key=sgemm["cpu"].get) == "MKL"
    assert min(sgemm["gpu"], key=sgemm["gpu"].get) == "cuBLAS"
    # cuSPARSE beats clSPARSE/libSPMV on the discrete GPU for CG.
    cg_gpu = data["CG"]["gpu"]
    assert cg_gpu["cuSPARSE"] <= cg_gpu["libSPMV"]
    # Every benchmark has at least one applicable API on every platform.
    for bench, platforms in data.items():
        for platform, row in platforms.items():
            assert row, (bench, platform)
