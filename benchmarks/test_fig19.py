"""Figure 19 — IDL-generated code vs handwritten OpenMP/OpenCL."""

from repro.experiments.harness import fig19
from repro.workloads import get_workload


def test_fig19_regeneration(benchmark, evaluations):
    data = benchmark.pedantic(fig19, rounds=1, iterations=1)
    assert len(data) == 10
    for name, row in data.items():
        workload = get_workload(name)
        if workload.reference_rewrites_algorithm:
            # EP, IS, MG, tpacf: whole-application rewrites win (paper:
            # "beyond the domain of automation").
            assert row["OpenCL"] > row["IDL"], name
        else:
            # Comparable-or-better against non-rewritten references.
            assert row["IDL"] >= 0.8 * row["OpenCL"], name
        assert row["OpenMP"] > 1.0
