"""Persistent, content-addressed artifact store.

Entries live one-per-file under ``<root>/objects/<aa>/<hash>.json`` (two
hex characters of sharding keeps directories small at repository scale).
The store is deliberately boring and failure-proof:

* **Atomic writes** — payloads are written to a temp file in the target
  directory and ``os.replace``d into place, so readers never observe a
  half-written entry, including concurrent writers across processes (the
  last writer wins with an identical payload: entries are content-
  addressed, so two writers of one key are writing the same bytes). Temp
  names embed the writer's pid plus a per-process counter, so concurrent
  writers — including forked children racing their parent — can never
  collide on the scratch file itself.
* **Optionally durable** — ``durable=True`` fsyncs the temp file before
  the rename and the directory after it, so a machine crash immediately
  after :meth:`put` returns cannot leave a hole or a garbage entry where
  the rename landed. The default stays non-durable: the store is a
  cache, and a lost entry is just a future miss.
* **Versioned** — every payload embeds :data:`STORE_VERSION`; a mismatch
  reads as a miss, so format changes never need migrations.
* **Corruption-tolerant** — unreadable, unparsable or mis-shaped entries
  (truncated JSON, zero-byte files, wrong version, non-dict payloads)
  are misses, never errors; the offending file is unlinked best-effort.
  A cache must not be able to take the service down.

Both endpoints are fault-injection seams (``store.read`` /
``store.write``, see :mod:`repro.reliability.faults`); the ``torn`` kind
is implemented here by deliberately writing a truncated payload to the
final path — simulating the non-atomic writer this store refuses to be —
which the next :meth:`get` must classify as a corrupt miss.

The store knows nothing about detection; payload schemas live with their
producers (:mod:`repro.cache.detection`).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from dataclasses import dataclass, field

from ..reliability import faults

#: Bump on any payload schema change; old entries become misses.
STORE_VERSION = 1

_HEX = set("0123456789abcdef")

#: Per-process temp-name counter. Combined with the pid at use time (not
#: import time — a fork after import must not clone the discriminator),
#: it makes every writer's scratch file unique without consulting the
#: filesystem.
_TMP_COUNTER = itertools.count()


@dataclass
class StoreStats:
    """Hit/miss accounting for one store instance (observability and the
    bench's only-mutated-functions-resolved assertions)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    write_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "write_errors": self.write_errors,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.writes = 0
        self.corrupt = self.write_errors = 0


@dataclass
class ArtifactStore:
    """Content-addressed JSON store rooted at ``root``."""

    root: str
    stats: StoreStats = field(default_factory=StoreStats)
    #: fsync temp file + directory around the rename (crash durability).
    durable: bool = False
    #: Serializes stats updates — lookups run from DetectionSession
    #: worker threads, and unsynchronized ``+=`` would lose counts.
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def _path(self, key: str) -> str:
        if len(key) < 3 or not set(key) <= _HEX:
            raise ValueError(f"malformed artifact key {key!r}")
        return os.path.join(self.root, "objects", key[:2], f"{key}.json")

    # -- reads ----------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or None (miss).

        Every failure mode — absent file, I/O error, invalid JSON,
        non-dict payload, version mismatch — is a miss. Files whose
        *content* is provably invalid are removed so they are not
        re-parsed on every lookup; a transient I/O error (fd exhaustion,
        a briefly unreadable shared mount) says nothing about the
        content, so the file is left alone."""
        path = self._path(key)
        try:
            faults.maybe_fire("store.read", key)
            with open(path, "rb") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except (OSError, faults.InjectedFault):
            # An injected read fault is exactly a transient I/O error:
            # a miss that leaves the file alone.
            with self._lock:
                self.stats.misses += 1
            return None
        except ValueError:
            with self._lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
            self._unlink(path)
            return None
        if not isinstance(payload, dict) or \
                payload.get("version") != STORE_VERSION:
            with self._lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
            self._unlink(path)
            return None
        with self._lock:
            self.stats.hits += 1
        return payload

    # -- writes ---------------------------------------------------------------
    def put(self, key: str, payload: dict) -> bool:
        """Atomically persist ``payload`` under ``key``.

        The version field is stamped here so producers cannot forget it.
        Write failures (full disk, read-only mount, permissions) are
        swallowed: a store that cannot persist degrades to a cold run,
        it does not break detection. Returns whether the write landed."""
        path = self._path(key)
        payload = dict(payload, version=STORE_VERSION)
        data = json.dumps(payload, separators=(",", ":"))
        try:
            directive = faults.maybe_fire("store.write", key)
            if directive is not None and \
                    getattr(directive, "kind", None) == "torn":
                # Simulate the non-atomic writer dying mid-write: half
                # the bytes land at the *final* path. Readers must see a
                # corrupt miss, never an error or a partial payload.
                self._write_file(path, data[:max(1, len(data) // 2)])
                with self._lock:
                    self.stats.write_errors += 1
                return False
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            tmp = os.path.join(
                directory,
                f".{key}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
            try:
                with open(tmp, "w") as fh:
                    fh.write(data)
                    if self.durable:
                        fh.flush()
                        os.fsync(fh.fileno())
                os.replace(tmp, path)
                if self.durable:
                    self._sync_dir(directory)
            except BaseException:
                self._unlink(tmp)
                raise
        except (OSError, faults.InjectedFault):
            with self._lock:
                self.stats.write_errors += 1
            return False
        with self._lock:
            self.stats.writes += 1
        return True

    @staticmethod
    def _write_file(path: str, data: str) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write(data)

    @staticmethod
    def _sync_dir(directory: str) -> None:
        """fsync the directory so the rename itself is on stable storage
        (best-effort: not every filesystem allows O_RDONLY dir fds)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    # -- maintenance -----------------------------------------------------------
    def invalidate(self, key: str) -> None:
        """Drop an entry whose *payload* a consumer found undecodable
        (it was already counted as a hit by :meth:`get`): reclassify the
        lookup as a corrupt miss and remove the file so it is not
        re-parsed on every lookup."""
        with self._lock:
            self.stats.hits -= 1
            self.stats.misses += 1
            self.stats.corrupt += 1
        self._unlink(self._path(key))

    @staticmethod
    def _unlink(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def entry_count(self) -> int:
        """Number of entries on disk (walks the tree; diagnostics only)."""
        objects = os.path.join(self.root, "objects")
        count = 0
        for _, _, files in os.walk(objects):
            count += sum(1 for f in files if f.endswith(".json"))
        return count
