"""Persistent, content-addressed artifact store.

Entries live one-per-file under ``<root>/objects/<aa>/<hash>.json`` (two
hex characters of sharding keeps directories small at repository scale).
The store is deliberately boring and failure-proof:

* **Atomic writes** — payloads are written to a temp file in the target
  directory and ``os.replace``d into place, so readers never observe a
  half-written entry, including concurrent writers across processes (the
  last writer wins with an identical payload: entries are content-
  addressed, so two writers of one key are writing the same bytes). Temp
  names embed the writer's pid plus a per-process counter, so concurrent
  writers — including forked children racing their parent — can never
  collide on the scratch file itself.
* **Optionally durable** — ``durable=True`` fsyncs the temp file before
  the rename and the directory after it, so a machine crash immediately
  after :meth:`put` returns cannot leave a hole or a garbage entry where
  the rename landed. The default stays non-durable: the store is a
  cache, and a lost entry is just a future miss.
* **Versioned** — every payload embeds :data:`STORE_VERSION`; an
  unknown version reads as a miss, so format changes never need a
  migration tool. Version 2 added the per-entry ``meta`` record (payload
  byte size + last-access stamp); version-1 entries stay readable and
  are migrated in place the first time they are touched.
* **Corruption-tolerant** — unreadable, unparsable or mis-shaped entries
  (truncated JSON, zero-byte files, wrong version, non-dict payloads)
  are misses, never errors; the offending file is unlinked best-effort.
  A cache must not be able to take the service down.
* **Budget-governed** — ``budget_bytes`` caps the store's on-disk
  footprint. Every :meth:`put` enforces the cap before returning by
  evicting entries (``eviction="lru"``: least-recently-accessed first;
  ``"generational"``: entries never read since they were written go
  first, then LRU among the survivors — the nursery/tenured split that
  fits one-shot traffic). An evicted entry is indistinguishable from
  one that was never written: the next :meth:`get` is a clean miss and
  the producer simply re-solves. Last-access is tracked in an in-memory
  index (rebuilt lazily from file ``mtime``, which :meth:`get` bumps
  via ``os.utime``), so ordering survives process restarts.

Both endpoints are fault-injection seams (``store.read`` /
``store.write``, see :mod:`repro.reliability.faults`); the ``torn`` kind
is implemented here by deliberately writing a truncated payload to the
final path — simulating the non-atomic writer this store refuses to be —
which the next :meth:`get` must classify as a corrupt miss.

The store knows nothing about detection; payload schemas live with their
producers (:mod:`repro.cache.detection`).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field

from ..reliability import faults

#: Bump on any payload schema change; old entries become misses.
STORE_VERSION = 2

#: Versions :meth:`ArtifactStore.get` still accepts. Version 1 predates
#: the ``meta`` size/atime record; such entries are served as hits and
#: rewritten with a stamped meta the first time they are touched.
COMPATIBLE_VERSIONS = frozenset({1, STORE_VERSION})

#: Eviction policies ``ArtifactStore(eviction=...)`` understands.
EVICTION_POLICIES = ("lru", "generational")

_HEX = set("0123456789abcdef")

#: Per-process temp-name counter. Combined with the pid at use time (not
#: import time — a fork after import must not clone the discriminator),
#: it makes every writer's scratch file unique without consulting the
#: filesystem.
_TMP_COUNTER = itertools.count()


@dataclass
class StoreStats:
    """Hit/miss accounting for one store instance (observability and the
    bench's only-mutated-functions-resolved assertions)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    write_errors: int = 0
    #: Current on-disk footprint in bytes (a gauge, refreshed by the
    #: store whenever its entry index changes) and the number of entries
    #: the byte budget has evicted (a counter).
    bytes_stored: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "write_errors": self.write_errors,
            "bytes_stored": self.bytes_stored,
            "evictions": self.evictions,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.writes = 0
        self.corrupt = self.write_errors = self.evictions = 0
        self.bytes_stored = 0


@dataclass
class _Entry:
    """In-memory index record for one on-disk entry."""

    size: int
    atime: float
    #: True once the entry has been read after its write (the
    #: generational policy's tenure bit; per-process — a rescan starts
    #: everything back in the nursery).
    touched: bool = False


@dataclass
class ArtifactStore:
    """Content-addressed JSON store rooted at ``root``."""

    root: str
    stats: StoreStats = field(default_factory=StoreStats)
    #: fsync temp file + directory around the rename (crash durability).
    durable: bool = False
    #: On-disk byte cap; None disables eviction. Enforced before every
    #: :meth:`put` returns — the store's footprint never exceeds it.
    budget_bytes: int | None = None
    #: "lru" (least-recently-accessed first) or "generational"
    #: (never-read entries first, then LRU among read ones).
    eviction: str = "lru"
    #: Serializes stats and index updates — lookups run from
    #: DetectionSession worker threads, and unsynchronized ``+=`` would
    #: lose counts.
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)
    #: key -> _Entry, built lazily by scanning the objects tree (stat
    #: only — sizes from st_size, last-access seeded from st_mtime).
    _index: dict | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.eviction!r} "
                f"(choose from {', '.join(EVICTION_POLICIES)})")

    def _path(self, key: str) -> str:
        if len(key) < 3 or not set(key) <= _HEX:
            raise ValueError(f"malformed artifact key {key!r}")
        return os.path.join(self.root, "objects", key[:2], f"{key}.json")

    # -- entry index (per-entry byte size + last access) -----------------------
    def _ensure_index(self) -> dict:
        """The key -> :class:`_Entry` map (call under ``_lock``).

        Built on first use by a stat-only walk of the objects tree:
        sizes from ``st_size``, last-access seeded from ``st_mtime``
        (which :meth:`get` keeps bumped via ``os.utime``), so LRU
        ordering carries across process restarts."""
        if self._index is None:
            index: dict[str, _Entry] = {}
            objects = os.path.join(self.root, "objects")
            for dirpath, _, files in os.walk(objects):
                for fname in files:
                    if not fname.endswith(".json"):
                        continue
                    try:
                        st = os.stat(os.path.join(dirpath, fname))
                    except OSError:
                        continue
                    index[fname[:-5]] = _Entry(st.st_size, st.st_mtime)
            self._index = index
            self.stats.bytes_stored = sum(e.size for e in index.values())
        return self._index

    def _note_write(self, key: str, size: int) -> None:
        index = self._ensure_index()
        old = index.get(key)
        if old is not None:
            self.stats.bytes_stored -= old.size
        index[key] = _Entry(size, time.time())
        self.stats.bytes_stored += size

    def _note_access(self, key: str, path: str) -> None:
        index = self._ensure_index()
        entry = index.get(key)
        if entry is None:
            # Written by another process since the scan: adopt it.
            try:
                size = os.stat(path).st_size
            except OSError:
                return
            entry = index[key] = _Entry(size, 0.0)
            self.stats.bytes_stored += size
        entry.atime = time.time()
        entry.touched = True

    def _forget(self, key: str) -> None:
        if self._index is None:
            return
        entry = self._index.pop(key, None)
        if entry is not None:
            self.stats.bytes_stored -= entry.size

    def _enforce_budget(self) -> None:
        """Evict (call under ``_lock``) until the footprint fits the
        budget. LRU ranks by last access alone; generational sends
        entries never read since their write first (the nursery), then
        the least-recently-read survivors."""
        if self.budget_bytes is None:
            return
        index = self._ensure_index()
        if self.stats.bytes_stored <= self.budget_bytes:
            return
        if self.eviction == "generational":
            def rank(item):
                return (item[1].touched, item[1].atime)
        else:
            def rank(item):
                return item[1].atime
        for key, entry in sorted(index.items(), key=rank):
            if self.stats.bytes_stored <= self.budget_bytes:
                break
            self._unlink(self._path(key))
            index.pop(key, None)
            self.stats.bytes_stored -= entry.size
            self.stats.evictions += 1

    def total_bytes(self) -> int:
        """Current on-disk footprint per the entry index."""
        with self._lock:
            self._ensure_index()
            return self.stats.bytes_stored

    def entry_info(self, key: str) -> tuple[int, float] | None:
        """(byte size, last-access time) of one entry, or None."""
        with self._lock:
            entry = self._ensure_index().get(key)
            return None if entry is None else (entry.size, entry.atime)

    # -- reads ----------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or None (miss).

        Every failure mode — absent file, I/O error, invalid JSON,
        non-dict payload, version mismatch — is a miss. Files whose
        *content* is provably invalid are removed so they are not
        re-parsed on every lookup; a transient I/O error (fd exhaustion,
        a briefly unreadable shared mount) says nothing about the
        content, so the file is left alone. Version-1 entries (pre-meta)
        are hits, migrated in place on this touch."""
        path = self._path(key)
        try:
            faults.maybe_fire("store.read", key)
            with open(path, "rb") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
                self._forget(key)
            return None
        except (OSError, faults.InjectedFault):
            # An injected read fault is exactly a transient I/O error:
            # a miss that leaves the file alone.
            with self._lock:
                self.stats.misses += 1
            return None
        except ValueError:
            with self._lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
                self._forget(key)
            self._unlink(path)
            return None
        if not isinstance(payload, dict) or \
                payload.get("version") not in COMPATIBLE_VERSIONS:
            with self._lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
                self._forget(key)
            self._unlink(path)
            return None
        if payload.get("version") != STORE_VERSION:
            payload = self._migrate(path, payload)
        self._touch(path)
        with self._lock:
            self.stats.hits += 1
            self._note_access(key, path)
        return payload

    # -- writes ---------------------------------------------------------------
    def put(self, key: str, payload: dict) -> bool:
        """Atomically persist ``payload`` under ``key``.

        The version and ``meta`` (payload byte size + stamp time) fields
        are stamped here so producers cannot forget them. Write failures
        (full disk, read-only mount, permissions) are swallowed: a store
        that cannot persist degrades to a cold run, it does not break
        detection. The byte budget, when set, is enforced before
        returning — the store's footprint never exceeds it. Returns
        whether the write landed (a write evicted to fit a tiny budget
        still returns True; the next get is simply a miss)."""
        path = self._path(key)
        payload = self._stamp(payload)
        data = json.dumps(payload, separators=(",", ":"))
        try:
            directive = faults.maybe_fire("store.write", key)
            if directive is not None and \
                    getattr(directive, "kind", None) == "torn":
                # Simulate the non-atomic writer dying mid-write: half
                # the bytes land at the *final* path. Readers must see a
                # corrupt miss, never an error or a partial payload.
                torn = data[:max(1, len(data) // 2)]
                self._write_file(path, torn)
                with self._lock:
                    self.stats.write_errors += 1
                    self._note_write(key, len(torn))
                return False
            self._replace(path, data)
        except (OSError, faults.InjectedFault):
            with self._lock:
                self.stats.write_errors += 1
            return False
        with self._lock:
            self.stats.writes += 1
            # JSON with the default ensure_ascii stays pure ASCII, so
            # len(data) is the file's byte size.
            self._note_write(key, len(data))
            self._enforce_budget()
        return True

    def _stamp(self, payload: dict) -> dict:
        """Stamp version + the meta record. ``meta.bytes`` measures the
        producer payload itself (version included, meta excluded), so
        consumers can account entry sizes without a stat; ``meta.atime``
        is the stamp instant, refreshed when a v1 entry migrates."""
        body = dict(payload, version=STORE_VERSION)
        body.pop("meta", None)
        size = len(json.dumps(body, separators=(",", ":")))
        return dict(body, meta={"bytes": size, "atime": int(time.time())})

    def _migrate(self, path: str, payload: dict) -> dict:
        """Rewrite an old-version entry in the current format (meta
        stamped) the first time it is touched. Best-effort and invisible
        to stats and fault seams: a failed migration just leaves the old
        entry readable for next time."""
        payload = self._stamp(payload)
        try:
            self._replace(path, json.dumps(payload, separators=(",", ":")))
        except OSError:
            pass
        return payload

    def _replace(self, path: str, data: str) -> None:
        """Atomic write: unique temp name, optional fsync, rename."""
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        tmp = os.path.join(
            directory,
            f".{os.path.basename(path)}.{os.getpid()}."
            f"{next(_TMP_COUNTER)}.tmp")
        try:
            with open(tmp, "w") as fh:
                fh.write(data)
                if self.durable:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
            if self.durable:
                self._sync_dir(directory)
        except BaseException:
            self._unlink(tmp)
            raise

    @staticmethod
    def _write_file(path: str, data: str) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write(data)

    @staticmethod
    def _touch(path: str) -> None:
        """Bump mtime so LRU ordering survives into fresh index scans."""
        try:
            os.utime(path)
        except OSError:
            pass

    @staticmethod
    def _sync_dir(directory: str) -> None:
        """fsync the directory so the rename itself is on stable storage
        (best-effort: not every filesystem allows O_RDONLY dir fds)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    # -- maintenance -----------------------------------------------------------
    def invalidate(self, key: str) -> None:
        """Drop an entry whose *payload* a consumer found undecodable
        (it was already counted as a hit by :meth:`get`): reclassify the
        lookup as a corrupt miss and remove the file so it is not
        re-parsed on every lookup."""
        with self._lock:
            self.stats.hits -= 1
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._forget(key)
        self._unlink(self._path(key))

    @staticmethod
    def _unlink(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def entry_count(self) -> int:
        """Number of entries on disk (walks the tree; diagnostics only)."""
        objects = os.path.join(self.root, "objects")
        count = 0
        for _, _, files in os.walk(objects):
            count += sum(1 for f in files if f.endswith(".json"))
        return count
