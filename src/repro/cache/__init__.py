"""Content-addressed incremental compilation and detection artifacts.

The service-shaped entry point for warm traffic: detection results are
keyed by a fingerprint of everything that can change them (canonical IR
text, module globals, idiom library, detector configuration, pass
pipeline — :mod:`.fingerprint`), persisted in an atomic, versioned,
corruption-tolerant on-disk store (:mod:`.store`), and replayed by the
detection scheduler so that re-submitting a module after editing one
function re-solves only that function (:mod:`.detection`, wired through
:class:`repro.idioms.scheduler.DetectionSession`).
"""

from .detection import (
    CachedDetection,
    DetectionCache,
    decode_detection,
    encode_detection,
)
from .fingerprint import (
    FINGERPRINT_VERSION,
    detection_config_signature,
    function_fingerprint,
    globals_signature,
    summary_fingerprint,
)
from .store import (
    EVICTION_POLICIES,
    STORE_VERSION,
    ArtifactStore,
    StoreStats,
)

__all__ = [
    "ArtifactStore", "StoreStats", "STORE_VERSION", "EVICTION_POLICIES",
    "CachedDetection", "DetectionCache",
    "decode_detection", "encode_detection",
    "FINGERPRINT_VERSION", "detection_config_signature",
    "function_fingerprint", "globals_signature", "summary_fingerprint",
]
