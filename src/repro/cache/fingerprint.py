"""Content fingerprints for incremental detection.

A function's detection outcome is a pure function of

* the function's IR structure (the canonical printed form — name-
  independent, see :func:`repro.ir.printer.print_function_canonical`),
* the module's global variables (they are part of the solver's candidate
  universe, so adding or retyping one can change the match set),
* the idiom library (every loaded IDL source, the native constraints and
  the memoized building-block set),
* the detector configuration (which idioms run, in what order, the solve
  limits, ordering / memo / indexed switches), and
* the optimisation pipeline that shaped the IR (conservative: detection
  runs on already-optimised IR, but keying on the pass list means a
  pipeline change can never serve results computed for differently
  canonicalised code).

:func:`function_fingerprint` folds all of these into one hex digest: the
artifact store's content address. Anything not in this list must not be
able to change the match set — that is the correctness contract of the
whole cache layer, and why this module is the only place fingerprints are
assembled.

All inputs are strings built from ordered structures; nothing here
iterates a set or hashes by ``id()``, so fingerprints are stable across
processes and ``PYTHONHASHSEED`` values (the warm-start-across-sessions
requirement).
"""

from __future__ import annotations

import hashlib

from ..ir.module import Function, Module
from ..ir.printer import print_function_canonical

#: Bump when the fingerprint recipe itself changes (new inputs, changed
#: canonical form); old entries then simply stop being addressable.
FINGERPRINT_VERSION = 1


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    h.update(f"repro-fingerprint-v{FINGERPRINT_VERSION}".encode())
    for part in parts:
        h.update(b"\x00")
        h.update(part.encode())
    return h.hexdigest()


def globals_signature(module: Module) -> str:
    """The printed form of the module's globals, in declaration order.

    Globals enter every function's candidate universe (in declaration
    order, which is also solution-enumeration order), so they are part of
    every function fingerprint — order included: reordering declarations
    can reorder enumerated solutions, and cached reports must replay the
    exact report a cold solve would produce."""
    lines = []
    for gv in module.globals.values():
        kind = "constant" if gv.constant else "global"
        lines.append(f"@{gv.name} = {kind} {gv.value_type}")
    return "\n".join(lines)


def function_fingerprint(function: Function, config_signature: str,
                         globals_sig: str | None = None,
                         text: str | None = None) -> str:
    """The content address of one function's detection artifact.

    ``text`` lets callers that already printed the canonical form (the
    scheduler prints each function once per detect() call) skip the
    re-print — it must be exactly ``print_function_canonical(function)``.
    """
    if globals_sig is None:
        module = function.module
        globals_sig = globals_signature(module) if module is not None else ""
    if text is None:
        text = print_function_canonical(function)
    return _digest("detection", config_signature, globals_sig, text)


def summary_fingerprint(function: Function,
                        text: str | None = None) -> str:
    """The content address of a function's analysis summary.

    Summary facts (opcodes, loop structure, size counters) are pure
    functions of the function body — no detector configuration, no
    module globals — so summaries are keyed on the canonical text alone
    and survive library, limit and global-declaration changes."""
    if text is None:
        text = print_function_canonical(function)
    return _digest("summary", text)


def detection_config_signature(library_signature: str,
                               idioms: list[str] | tuple[str, ...],
                               max_solutions: int, max_steps: int,
                               ordering: str, memo: bool, indexed: bool,
                               pipeline_signature: str) -> str:
    """Fold every non-IR input of a detection run into one string.

    ``ordering`` is included even though all orderings produce bit-
    identical match sets: the guarantee is asserted by tests, not assumed
    by the cache, so a regression in one ordering can never leak results
    into another."""
    return _digest(
        "config",
        library_signature,
        "\x1f".join(idioms),
        f"{max_solutions}:{max_steps}",
        f"{ordering}:{int(memo)}:{int(indexed)}",
        pipeline_signature,
    )
