"""Detection artifacts: per-function match reports + analysis summaries.

A :class:`DetectionCache` binds an :class:`~repro.cache.store.ArtifactStore`
to one detection configuration signature and speaks the store's payload
schema:

* ``kind="detection"`` — the function's final match list (post filter,
  dedup and overlap resolution) in the structural wire format process-mode
  detection already uses (:func:`repro.idioms.scheduler.encode_solution`:
  instructions as (block index, instruction index), arguments by position,
  globals by name, constants by value), with each match's own
  :class:`~repro.idl.solver.SolverStats` plus the function-level
  aggregate. Per-match stats are interned into a pool by object identity
  — forest-mode matches of one function all share one stats object, and
  the round trip preserves both the values and the sharing. Decoding
  rebinds every locator against the *caller's* module, so cached matches
  point at live IR objects exactly like fresh ones — a warm report is
  indistinguishable from the cold one, per-match ticks included, in
  every ordering.
* ``kind="summary"`` — the function's serializable
  :class:`~repro.analysis.info.AnalysisSummary`, keyed by the canonical
  function text only (no config signature, no globals — its facts are
  pure functions of the body), so it survives idiom-library, limit and
  module-global changes.

Anything that cannot be encoded or decoded simply is not cached / is a
miss; this layer never raises on bad artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.info import AnalysisSummary
from ..errors import IDLError
from ..idl.solver import SolverStats
from ..ir.module import Function, Module
from .fingerprint import (
    function_fingerprint,
    globals_signature,
    summary_fingerprint,
)
from .store import ArtifactStore


@dataclass
class CachedDetection:
    """One warm per-function detection result."""

    matches: list  # list[IdiomMatch], decoded against the caller's module
    stats: SolverStats


def _stats_from(payload_stats: dict, max_steps) -> SolverStats:
    return SolverStats(max_steps=int(max_steps),
                       **{k: int(v) for k, v in payload_stats.items()})


def encode_detection(function: Function, matches: list,
                     stats: SolverStats) -> dict | None:
    """One function's detection result in the store's payload schema
    (also the cross-tenant dedupe wire format: a payload encoded against
    one function decodes against any function with the same content
    fingerprint). None when the result must not be replayed elsewhere —
    a timed-out partial match list, or a solution binding values the
    wire format cannot express."""
    from ..idioms.scheduler import encode_solution

    if stats.timed_out:
        return None
    pool: list = []
    pool_index: dict[int, int] = {}
    try:
        encoded = []
        for m in matches:
            index = None
            if m.stats is not None:
                index = pool_index.get(id(m.stats))
                if index is None:
                    index = pool_index[id(m.stats)] = len(pool)
                    pool.append((m.stats.as_dict(), m.stats.max_steps))
            encoded.append((m.idiom,
                            encode_solution(m.solution, function),
                            index))
    except IDLError:
        return None
    return {"kind": "detection", "function": function.name,
            "matches": encoded, "stats_pool": pool,
            "stats": stats.as_dict(), "max_steps": stats.max_steps}


def decode_detection(payload: dict, function: Function,
                     module: Module) -> CachedDetection:
    """Rebind an :func:`encode_detection` payload against ``function``
    in ``module``. Raises on a mis-shaped payload — callers classify
    that as a corrupt entry (cache) or fall back to solving (dedupe)."""
    from ..idioms.matches import IdiomMatch
    from ..idioms.scheduler import decode_solution

    stats = _stats_from(payload["stats"], payload["max_steps"])
    pool = [_stats_from(blob, max_steps)
            for blob, max_steps in payload["stats_pool"]]
    matches = [
        IdiomMatch(str(idiom), function,
                   decode_solution(encoded, function, module),
                   stats=None if index is None else pool[index])
        for idiom, encoded, index in payload["matches"]]
    return CachedDetection(matches, stats)


class DetectionCache:
    """Store facade for one detector configuration."""

    def __init__(self, store: ArtifactStore, config_signature: str):
        self.store = store
        self.config_signature = config_signature

    # -- keys ------------------------------------------------------------------
    def function_key(self, function: Function,
                     globals_sig: str | None = None,
                     text: str | None = None) -> str:
        return function_fingerprint(function, self.config_signature,
                                    globals_sig, text)

    # -- detection entries -----------------------------------------------------
    def load(self, function: Function, module: Module,
             globals_sig: str | None = None,
             text: str | None = None) -> CachedDetection | None:
        """The cached detection result for ``function``, or None.

        ``text`` is the precomputed canonical form (optional, avoids a
        re-print — the dominant warm-path cost)."""
        if globals_sig is None:
            globals_sig = globals_signature(module)
        key = self.function_key(function, globals_sig, text)
        payload = self.store.get(key)
        if payload is None or payload.get("kind") != "detection":
            return None
        try:
            return decode_detection(payload, function, module)
        except (IDLError, KeyError, IndexError, TypeError, ValueError):
            # A content-addressed entry should always decode against the
            # IR it was keyed on; if it does not, it is corrupt — drop it
            # and report a miss (never an error).
            self.store.invalidate(key)
            return None

    def save(self, function: Function, matches: list, stats: SolverStats,
             summary: AnalysisSummary | dict | None = None,
             globals_sig: str | None = None,
             text: str | None = None) -> bool:
        """Persist one function's detection result (and, when given, its
        summary — pass None when the summary was itself adopted from the
        store, so it is not rewritten).

        Matches that cannot be expressed in the wire format make the
        whole function uncacheable (it will simply re-solve next time);
        partial (timed-out) match lists must never be stored."""
        payload = encode_detection(function, matches, stats)
        if payload is None:
            return False
        if summary is not None:
            if isinstance(summary, AnalysisSummary):
                summary = summary.as_dict()
            self.store.put(summary_fingerprint(function, text),
                           {"kind": "summary", "summary": summary})
        return self.store.put(
            self.function_key(function, globals_sig, text), payload)

    # -- analysis summaries ----------------------------------------------------
    def load_summary(self, function: Function,
                     text: str | None = None) -> AnalysisSummary | None:
        key = summary_fingerprint(function, text)
        payload = self.store.get(key)
        if payload is None:
            return None
        try:
            if payload.get("kind") != "summary":
                raise ValueError("not a summary entry")
            return AnalysisSummary.from_dict(payload["summary"])
        except (KeyError, TypeError, ValueError):
            self.store.invalidate(key)
            return None
