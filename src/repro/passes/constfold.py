"""Constant folding for binops, comparisons, casts and selects."""

from __future__ import annotations

import math

from ..ir.instructions import (
    BinaryOperator,
    CastInst,
    FCmpInst,
    ICmpInst,
    Instruction,
    SelectInst,
)
from ..ir.module import Function
from ..ir.types import FloatType, IntType
from ..ir.values import ConstantFloat, ConstantInt, Value


def _int_binop(op: str, a: int, b: int, ty: IntType) -> int | None:
    try:
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "sdiv":
            return _c_div(a, b)
        if op == "srem":
            return a - _c_div(a, b) * b
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return a << (b % ty.bits)
        if op == "ashr":
            return a >> (b % ty.bits)
        if op == "lshr":
            mask = (1 << ty.bits) - 1
            return (a & mask) >> (b % ty.bits)
    except ZeroDivisionError:
        return None
    return None


def _c_div(a: int, b: int) -> int:
    """C semantics: truncation toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _float_binop(op: str, a: float, b: float) -> float | None:
    try:
        if op == "fadd":
            return a + b
        if op == "fsub":
            return a - b
        if op == "fmul":
            return a * b
        if op == "fdiv":
            return a / b if b != 0 else math.inf if a > 0 else (
                -math.inf if a < 0 else math.nan)
        if op == "frem":
            return math.fmod(a, b) if b != 0 else math.nan
    except (OverflowError, ValueError):
        return None
    return None


_ICMP = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b, "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b, "uge": lambda a, b: a >= b,
}

_FCMP = {
    "oeq": lambda a, b: a == b, "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b, "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b, "oge": lambda a, b: a >= b,
    "ueq": lambda a, b: a == b or math.isnan(a) or math.isnan(b),
    "une": lambda a, b: a != b,
    "ult": lambda a, b: a < b or math.isnan(a) or math.isnan(b),
    "ule": lambda a, b: a <= b or math.isnan(a) or math.isnan(b),
    "ugt": lambda a, b: a > b or math.isnan(a) or math.isnan(b),
    "uge": lambda a, b: a >= b or math.isnan(a) or math.isnan(b),
}


def fold_instruction(inst: Instruction) -> Value | None:
    """Return the constant this instruction folds to, or None."""
    if isinstance(inst, BinaryOperator):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            result = _int_binop(inst.opcode, lhs.value, rhs.value, inst.type)
            if result is not None:
                return ConstantInt(inst.type, result)
        if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
            result = _float_binop(inst.opcode, lhs.value, rhs.value)
            if result is not None:
                return ConstantFloat(inst.type, result)
    elif isinstance(inst, ICmpInst):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            return ConstantInt(inst.type, int(
                _ICMP[inst.predicate](lhs.value, rhs.value)))
    elif isinstance(inst, FCmpInst):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
            a, b = lhs.value, rhs.value
            if inst.predicate.startswith("o") and (
                    math.isnan(a) or math.isnan(b)):
                return ConstantInt(inst.type, 0)
            return ConstantInt(inst.type, int(
                _FCMP[inst.predicate](a, b)))
    elif isinstance(inst, CastInst):
        value = inst.value
        if isinstance(value, ConstantInt):
            if isinstance(inst.type, IntType):
                return ConstantInt(inst.type, value.value)
            if isinstance(inst.type, FloatType):
                return ConstantFloat(inst.type, float(value.value))
        if isinstance(value, ConstantFloat):
            if isinstance(inst.type, FloatType):
                return ConstantFloat(inst.type, value.value)
            if isinstance(inst.type, IntType) and math.isfinite(value.value):
                return ConstantInt(inst.type, int(value.value))
    elif isinstance(inst, SelectInst):
        cond = inst.condition
        if isinstance(cond, ConstantInt):
            return inst.true_value if cond.value else inst.false_value
        if inst.true_value is inst.false_value:
            return inst.true_value
    return None


def fold_constants(function: Function) -> int:
    """Fold until fixpoint; returns number of folded instructions."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                replacement = fold_instruction(inst)
                if replacement is not None:
                    inst.replace_all_uses_with(replacement)
                    inst.erase_from_parent()
                    folded += 1
                    changed = True
    return folded
