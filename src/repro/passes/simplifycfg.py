"""CFG simplification: unreachable-block removal and block merging.

Merging a straight-line body block with its fallthrough successor is what
compacts the front end's ``for.body → for.step`` chains into the single
latch block the paper's Figure 4 IR exhibits.
"""

from __future__ import annotations

from ..analysis.cfg import reachable_blocks
from ..ir.instructions import BranchInst, PhiInst
from ..ir.module import BasicBlock, Function
from .mem2reg import remove_trivial_phis


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks not reachable from the entry; fix phis of survivors."""
    live = reachable_blocks(function)
    dead = [b for b in function.blocks if id(b) not in live]
    if not dead:
        return 0
    dead_ids = {id(b) for b in dead}
    # Remove phi incoming edges that came from dead blocks.
    for block in function.blocks:
        if id(block) in dead_ids:
            continue
        for phi in list(block.phis()):
            for _, pred in list(phi.incoming):
                if id(pred) in dead_ids:
                    phi.remove_incoming(pred)
    # Drop operand links so use lists stay consistent, then delete.
    from ..ir.values import UndefValue

    for block in dead:
        for inst in list(block.instructions):
            inst.drop_all_operands()
        for inst in list(block.instructions):
            if inst.uses:
                inst.replace_all_uses_with(UndefValue(inst.type))
            block.remove(inst)
        if block.uses:
            # Stray phi entries from other dead blocks may still point here.
            for use in list(block.uses):
                use.user.drop_all_operands()
        function.remove_block(block)
    remove_trivial_phis(function)
    return len(dead)


def collapse_identical_branches(function: Function) -> int:
    """``br i1 %c, %bb, %bb`` → ``br %bb``."""
    count = 0
    for block in function.blocks:
        term = block.terminator
        if isinstance(term, BranchInst) and term.is_conditional():
            then_b, else_b = term.operands[1], term.operands[2]
            if then_b is else_b:
                target = then_b
                block.remove(term)
                term.drop_all_operands()
                block.append(BranchInst(target))
                count += 1
    return count


def merge_blocks(function: Function) -> int:
    """Merge B→S when B unconditionally branches to S and S has no other
    predecessors. S's phis are necessarily trivial and get folded."""
    merged = 0
    changed = True
    while changed:
        changed = False
        for block in list(function.blocks):
            term = block.terminator
            if not isinstance(term, BranchInst) or term.is_conditional():
                continue
            succ = term.targets()[0]
            if succ is block or succ is function.entry:
                continue
            preds = succ.predecessors()
            if len(preds) != 1 or preds[0] is not block:
                continue
            # Fold S's phis (single predecessor ⇒ single incoming value).
            for phi in list(succ.phis()):
                phi.replace_all_uses_with(phi.incoming[0][0])
                phi.erase_from_parent()
            block.remove(term)
            term.drop_all_operands()
            for inst in list(succ.instructions):
                succ.remove(inst)
                inst.parent = block
                block.instructions.append(inst)
            # Any branch still naming succ cannot exist (it had one pred),
            # but phi users referencing succ as incoming block must follow
            # the merge.
            succ.replace_all_uses_with(block)
            function.remove_block(succ)
            merged += 1
            changed = True
            break
    return merged


def remove_empty_forwarders(function: Function) -> int:
    """Remove blocks that only ``br %S``, rewiring predecessors to S.

    Skipped when S has phis whose value would become ambiguous (a pred of
    the forwarder already being a pred of S with a different phi arm).
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in list(function.blocks):
            if block is function.entry or len(block.instructions) != 1:
                continue
            term = block.terminator
            if not isinstance(term, BranchInst) or term.is_conditional():
                continue
            succ = term.targets()[0]
            if succ is block:
                continue
            preds = block.predecessors()
            if not preds:
                continue
            succ_preds = {id(p) for p in succ.predecessors()}
            if succ.phis():
                if any(id(p) in succ_preds for p in preds):
                    continue  # would create duplicate incoming edges
            # Rewire: preds' branches now target succ directly.
            for phi in succ.phis():
                incoming = phi.incoming_value_for(block)
                if isinstance(incoming, PhiInst) and incoming.parent is block:
                    continue  # cannot happen: block has one instruction
                phi.remove_incoming(block)
                for pred in preds:
                    phi.add_incoming(incoming, pred)
            block.replace_all_uses_with(succ)
            # The forwarder's terminator still uses succ; detach and delete.
            block.remove(term)
            term.drop_all_operands()
            function.remove_block(block)
            removed += 1
            changed = True
            break
    return removed


def simplify_cfg(function: Function) -> int:
    """Run all CFG cleanups to a fixed point; returns total change count."""
    total = 0
    while True:
        changed = 0
        changed += remove_unreachable_blocks(function)
        changed += collapse_identical_branches(function)
        changed += merge_blocks(function)
        changed += remove_empty_forwarders(function)
        changed += remove_trivial_phis(function)
        total += changed
        if not changed:
            return total
