"""IR-to-IR transformation passes (mem2reg, folding, DCE, CFG cleanup)."""

from .constfold import fold_constants, fold_instruction
from .cse import eliminate_common_subexpressions, eliminate_redundant_loads
from .dce import eliminate_dead_code
from .instcombine import combine_instructions
from .licm import hoist_loop_invariants
from .mem2reg import is_promotable, promote_allocas, remove_trivial_phis
from .pipeline import optimize, optimize_function
from .promote import forward_stores, promote_loop_accumulators
from .simplifycfg import (
    collapse_identical_branches,
    merge_blocks,
    remove_empty_forwarders,
    remove_unreachable_blocks,
    simplify_cfg,
)

__all__ = [
    "fold_constants", "fold_instruction",
    "eliminate_common_subexpressions", "eliminate_redundant_loads",
    "eliminate_dead_code",
    "combine_instructions", "hoist_loop_invariants",
    "is_promotable", "promote_allocas", "remove_trivial_phis",
    "forward_stores", "promote_loop_accumulators",
    "optimize", "optimize_function",
    "collapse_identical_branches", "merge_blocks",
    "remove_empty_forwarders", "remove_unreachable_blocks", "simplify_cfg",
]
