"""The standard optimisation pipeline applied before idiom detection.

Mirrors the subset of ``clang -O2`` the paper's matching relies on:
SSA construction, constant folding, peephole canonicalisation, dead code
elimination and CFG simplification, iterated to a fixed point.
"""

from __future__ import annotations

from ..ir.module import Function, Module
from ..ir.verifier import verify_function, verify_module
from .constfold import fold_constants
from .cse import eliminate_common_subexpressions, eliminate_redundant_loads
from .dce import eliminate_dead_code
from .instcombine import combine_instructions
from .licm import hoist_loop_invariants
from .mem2reg import promote_allocas, remove_trivial_phis
from .promote import forward_stores, promote_loop_accumulators
from .simplifycfg import remove_unreachable_blocks, simplify_cfg


def optimize_function(function: Function, verify: bool = True) -> None:
    if function.is_declaration():
        return
    remove_unreachable_blocks(function)
    promote_allocas(function)
    for _ in range(8):  # fixed-point iteration with a safety bound
        changed = 0
        changed += fold_constants(function)
        changed += combine_instructions(function)
        changed += eliminate_common_subexpressions(function)
        changed += eliminate_redundant_loads(function)
        changed += eliminate_dead_code(function)
        changed += simplify_cfg(function)
        changed += remove_trivial_phis(function)
        changed += hoist_loop_invariants(function)
        changed += forward_stores(function)
        changed += promote_loop_accumulators(function)
        if not changed:
            break
    if verify:
        verify_function(function)


def optimize(module: Module, verify: bool = True) -> Module:
    """Optimise all functions in place and return the module."""
    for function in module.functions.values():
        optimize_function(function, verify=verify)
    if verify:
        verify_module(module)
    return module
