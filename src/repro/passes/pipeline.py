"""The standard optimisation pipeline applied before idiom detection.

Mirrors the subset of ``clang -O2`` the paper's matching relies on:
SSA construction, constant folding, peephole canonicalisation, dead code
elimination and CFG simplification, iterated to a fixed point.
"""

from __future__ import annotations

from ..ir.module import Function, Module
from ..ir.verifier import verify_function, verify_module
from .constfold import fold_constants
from .cse import eliminate_common_subexpressions, eliminate_redundant_loads
from .dce import eliminate_dead_code
from .instcombine import combine_instructions
from .licm import hoist_loop_invariants
from .mem2reg import promote_allocas, remove_trivial_phis
from .promote import forward_stores, promote_loop_accumulators
from .simplifycfg import remove_unreachable_blocks, simplify_cfg


#: The fixed-point pass sequence. Order matters; each entry is a
#: deterministic function(function) -> number of changes.
_PIPELINE = (
    fold_constants,
    combine_instructions,
    eliminate_common_subexpressions,
    eliminate_redundant_loads,
    eliminate_dead_code,
    simplify_cfg,
    remove_trivial_phis,
    hoist_loop_invariants,
    forward_stores,
    promote_loop_accumulators,
)


#: One-shot passes run before the fixed-point loop, shared with
#: :func:`pipeline_signature` so the cache key can never drift from what
#: :func:`optimize_function` actually runs.
_PROLOGUE = (
    remove_unreachable_blocks,
    promote_allocas,
)


def pipeline_signature() -> str:
    """The pass pipeline as a cache-key input: every pass that shapes the
    IR before detection, in execution order. Detection artifacts are keyed
    on this (see :mod:`repro.cache.fingerprint`) so a pipeline change can
    never serve match reports computed for differently canonicalised
    code."""
    return "|".join(p.__name__ for p in _PROLOGUE + _PIPELINE)


def optimize_function(function: Function, verify: bool = True) -> None:
    if function.is_declaration():
        return
    for pass_fn in _PROLOGUE:
        pass_fn(function)
    # Worklist-style fixed point: a pass is re-run only while "dirty" —
    # i.e. some pass has changed the IR since its last run. A clean pass
    # is deterministic over unchanged IR, so skipping it elides a provable
    # no-op: the sequence of IR-changing runs (and the final IR) is
    # identical to naively re-running every pass each round, but the
    # convergence-confirmation runs disappear. ``verify_function`` runs
    # once, after convergence.
    dirty = [True] * len(_PIPELINE)
    for _ in range(8):  # safety bound, as before
        if not any(dirty):
            break
        for i, pass_fn in enumerate(_PIPELINE):
            if not dirty[i]:
                continue
            dirty[i] = False
            if pass_fn(function):
                for j in range(len(dirty)):
                    dirty[j] = True
    if verify:
        verify_function(function)


def optimize(module: Module, verify: bool = True) -> Module:
    """Optimise all functions in place and return the module."""
    for function in module.functions.values():
        optimize_function(function, verify=verify)
    if verify:
        verify_module(module)
    return module
