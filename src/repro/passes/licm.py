"""Loop-invariant code motion.

Hoists invariant computation (including loads, under type-based aliasing
rules like clang's TBAA) into the loop preheader. This produces the paper's
Figure 4 shape where the inner loop's ``iter_end`` bound —
``rowstr[j+1]`` — is computed once in the outer body, which the ReadRange
idiom (Figure 12) depends on.
"""

from __future__ import annotations

from ..analysis.loops import Loop, LoopInfo
from ..analysis.memdep import may_alias
from ..ir.instructions import (
    BinaryOperator,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
)
from ..ir.module import Function
from ..ir.types import PointerType
from ..ir.values import Constant, Value


def _types_may_alias(a: Value, b: Value) -> bool:
    """Strict-aliasing refinement: different scalar pointee types ⇒ no alias."""
    ta, tb = a.type, b.type
    if isinstance(ta, PointerType) and isinstance(tb, PointerType):
        pa, pb = ta.pointee, tb.pointee
        if pa is not pb and not pa.is_array() and not pb.is_array():
            return False
    return True


def _loop_has_aliasing_write(loop: Loop, pointer: Value) -> bool:
    for inst in loop.instructions():
        if isinstance(inst, StoreInst):
            if _types_may_alias(inst.pointer, pointer) and \
                    may_alias(inst.pointer, pointer):
                return True
        elif isinstance(inst, CallInst) and not inst.is_pure():
            return True
    return False


def _is_invariant(inst: Instruction, loop: Loop,
                  hoisted: set[int]) -> bool:
    for op in inst.operands:
        if isinstance(op, Instruction):
            if loop.contains(op) and id(op) not in hoisted:
                return False
    return True


def _hoistable(inst: Instruction, loop: Loop) -> bool:
    """Is this instruction class safe to move to the preheader?

    Arithmetic/casts/geps/cmps/selects never fault. Loads and integer
    division may fault, so they only hoist from the loop *header* (which is
    guaranteed to execute whenever the preheader does). Stores, phis,
    terminators and calls never hoist.
    """
    if isinstance(inst, (PhiInst, StoreInst, CallInst)) or inst.is_terminator():
        return False
    in_header = inst.parent is loop.header
    if isinstance(inst, LoadInst):
        return in_header and not _loop_has_aliasing_write(loop, inst.pointer)
    if isinstance(inst, BinaryOperator) and inst.opcode in (
            "sdiv", "udiv", "srem", "urem"):
        return in_header
    return isinstance(inst, (BinaryOperator, CastInst, GEPInst, ICmpInst,
                             FCmpInst, SelectInst))


def hoist_loop_invariants(function: Function) -> int:
    """Run LICM over all loops (innermost first). Returns hoist count."""
    info = LoopInfo(function)
    total = 0
    # Innermost first so invariants bubble outwards across iterations.
    for loop in sorted(info.loops, key=lambda l: -l.depth):
        preheader = loop.preheader()
        if preheader is None or preheader.terminator is None:
            continue
        insertion = preheader.terminator
        hoisted: set[int] = set()
        changed = True
        while changed:
            changed = False
            for block in loop.blocks:
                for inst in list(block.instructions):
                    if id(inst) in hoisted:
                        continue
                    if not _hoistable(inst, loop):
                        continue
                    if not _is_invariant(inst, loop, hoisted):
                        continue
                    block.remove(inst)
                    preheader.insert(insertion.index_in_block(), inst)
                    hoisted.add(id(inst))
                    total += 1
                    changed = True
    return total
