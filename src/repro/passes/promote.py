"""Scalar promotion of loop accumulators + store-to-load forwarding.

Together these reproduce the slice of LLVM's LICM store promotion and GVN
that the paper's matching implicitly relies on: ``C[i][j] += A[i][k] *
B[k][j]`` only exposes a register accumulator phi (which DotProductLoop
matches) after the memory round-trip through ``C[i][j]`` is promoted.
"""

from __future__ import annotations

from ..analysis.loops import Loop, LoopInfo
from ..analysis.memdep import may_alias
from ..ir.instructions import (
    CallInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.module import BasicBlock, Function
from ..ir.types import PointerType
from ..ir.values import Value
from .licm import _types_may_alias


def forward_stores(function: Function) -> int:
    """Within each block, forward stored values to subsequent loads of the
    same address value (no intervening may-aliasing write)."""
    forwarded = 0
    for block in function.blocks:
        last_store: dict[int, Value] = {}  # id(pointer SSA value) -> value
        pointers: dict[int, Value] = {}
        for inst in list(block.instructions):
            if isinstance(inst, StoreInst):
                # Invalidate aliasing entries, then record this store.
                for key, ptr in list(pointers.items()):
                    if ptr is not inst.pointer and \
                            _types_may_alias(ptr, inst.pointer) and \
                            may_alias(ptr, inst.pointer):
                        del last_store[key]
                        del pointers[key]
                last_store[id(inst.pointer)] = inst.value
                pointers[id(inst.pointer)] = inst.pointer
            elif isinstance(inst, LoadInst):
                value = last_store.get(id(inst.pointer))
                if value is not None and value.type is inst.type:
                    inst.replace_all_uses_with(value)
                    inst.erase_from_parent()
                    forwarded += 1
            elif isinstance(inst, CallInst) and not inst.is_pure():
                last_store.clear()
                pointers.clear()
    return forwarded


def _loop_memory_ops(loop: Loop) -> list[Instruction]:
    ops = []
    for inst in loop.instructions():
        if isinstance(inst, (LoadInst, StoreInst)):
            ops.append(inst)
        elif isinstance(inst, CallInst) and not inst.is_pure():
            ops.append(inst)
    return ops


def _is_invariant_in(value: Value, loop: Loop) -> bool:
    return not (isinstance(value, Instruction) and loop.contains(value))


def promote_loop_accumulators(function: Function) -> int:
    """Promote in-loop read-modify-write of a loop-invariant address to a
    register accumulator (phi), loading before and storing after the loop.

    Requirements per candidate address P (a single SSA pointer value):
    * P is loop invariant;
    * every memory op in the loop that may alias P *is* a load/store of
      exactly P (no impure calls);
    * the (single) store of P dominates the loop latch (runs every
      iteration) and every load of P dominates the store;
    * the loop has a preheader and a single exit block whose only
      predecessor is the loop header.
    """
    promoted = 0
    info = LoopInfo(function)
    from ..analysis.dominators import DominatorTree

    for loop in sorted(info.loops, key=lambda l: -l.depth):
        preheader = loop.preheader()
        if preheader is None or preheader.terminator is None:
            continue
        exits = loop.exit_blocks()
        if len(exits) != 1:
            continue
        exit_block = exits[0]
        if len(exit_block.predecessors()) != 1 or \
                exit_block.predecessors()[0] is not loop.header:
            continue
        if len(loop.latches) != 1:
            continue
        latch = loop.latches[0]
        ops = _loop_memory_ops(loop)

        # Group loads/stores by identical pointer SSA value.
        by_pointer: dict[int, list[Instruction]] = {}
        pointer_of: dict[int, Value] = {}
        bad = False
        for op in ops:
            if isinstance(op, CallInst):
                bad = True
                break
            ptr = op.pointer  # type: ignore[union-attr]
            by_pointer.setdefault(id(ptr), []).append(op)
            pointer_of[id(ptr)] = ptr
        if bad:
            continue

        domtree = DominatorTree.block_level(function)
        for key, group in by_pointer.items():
            pointer = pointer_of[key]
            if not _is_invariant_in(pointer, loop):
                continue
            stores = [op for op in group if isinstance(op, StoreInst)]
            loads = [op for op in group if isinstance(op, LoadInst)]
            if len(stores) != 1 or not loads:
                continue
            store = stores[0]
            if not domtree.dominates(store.parent, latch):
                continue
            if not all(domtree.dominates(ld.parent, store.parent)
                       for ld in loads):
                continue
            # No other op in the loop may alias this pointer.
            conflict = False
            for other_key, other_group in by_pointer.items():
                if other_key == key:
                    continue
                other_ptr = pointer_of[other_key]
                writes_either = isinstance(store, StoreInst) or any(
                    isinstance(o, StoreInst) for o in other_group)
                if writes_either and _types_may_alias(pointer, other_ptr) \
                        and may_alias(pointer, other_ptr):
                    conflict = True
                    break
            if conflict:
                continue

            _promote_one(function, loop, preheader, latch, exit_block,
                         pointer, loads, store)
            promoted += 1
            # Loop structure changed; re-analyse before further promotion.
            return promoted + promote_loop_accumulators(function)
    return promoted


def _promote_one(function: Function, loop: Loop, preheader: BasicBlock,
                 latch: BasicBlock, exit_block: BasicBlock, pointer: Value,
                 loads: list[LoadInst], store: StoreInst) -> None:
    assert isinstance(pointer.type, PointerType)
    value_type = pointer.type.pointee

    # Initial value: load in the preheader, before its terminator.
    init = LoadInst(pointer)
    init.name = function.unique_name("promoted")
    preheader.insert(preheader.terminator.index_in_block(), init)

    # Accumulator phi in the loop header.
    phi = PhiInst(value_type)
    phi.name = function.unique_name("acc")
    loop.header.insert(len(loop.header.phis()), phi)
    stored_value = store.value
    for pred in loop.header.predecessors():
        if loop.contains_block(pred):
            phi.add_incoming(stored_value, pred)
        else:
            phi.add_incoming(init, pred)

    # In-loop loads read the phi.
    for load in loads:
        load.replace_all_uses_with(phi)
        load.erase_from_parent()

    # The store moves to the exit block; the live-out value is the phi.
    store.erase_from_parent()
    final = StoreInst(phi, pointer)
    exit_block.insert(len(exit_block.phis()), final)
