"""Common subexpression elimination (a GVN-lite slice of LLVM's EarlyCSE).

Two parts:

* **Pure expression CSE** — identical pure instructions (same opcode,
  operands, predicate) where one dominates the other collapse to the
  dominating copy. This unifies the twin address computations C front ends
  emit for ``C[i] = C[i] + x`` style code, which the GEMM and histogram
  idioms rely on (the paper matches post-GVN LLVM IR).
* **Load CSE** — repeated loads of the same pointer SSA value with no
  intervening may-aliasing write (block-local, like EarlyCSE).
"""

from __future__ import annotations

from ..analysis.dominators import DominatorTree
from ..analysis.memdep import may_alias
from ..ir.instructions import (
    BinaryOperator,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    SelectInst,
    StoreInst,
)
from ..ir.module import Function
from ..ir.values import ConstantFloat, ConstantInt, Value
from .licm import _types_may_alias


def _operand_key(value: Value):
    if isinstance(value, ConstantInt):
        return ("ci", value.type, value.value)
    if isinstance(value, ConstantFloat):
        return ("cf", value.type, value.value)
    return id(value)


def _expression_key(inst: Instruction):
    """Hashable structural identity for pure instructions, or None."""
    if isinstance(inst, (BinaryOperator, GEPInst, CastInst, SelectInst)):
        return (inst.opcode, inst.type,
                tuple(_operand_key(op) for op in inst.operands))
    if isinstance(inst, (ICmpInst, FCmpInst)):
        return (inst.opcode, inst.predicate,
                tuple(_operand_key(op) for op in inst.operands))
    if isinstance(inst, CallInst) and inst.is_pure() and \
            inst.callee != "rand":
        return ("call", inst.callee,
                tuple(_operand_key(op) for op in inst.operands))
    return None


def eliminate_common_subexpressions(function: Function) -> int:
    """Dominator-ordered expression CSE; returns replaced count."""
    domtree = DominatorTree.block_level(function)
    replaced = 0
    available: dict = {}

    def visit(block) -> None:
        nonlocal replaced
        added: list = []
        for inst in list(block.instructions):
            key = _expression_key(inst)
            if key is None:
                continue
            existing = available.get(key)
            if existing is not None:
                inst.replace_all_uses_with(existing)
                inst.erase_from_parent()
                replaced += 1
            else:
                available[key] = inst
                added.append(key)
        for child in domtree.children(block):
            visit(child)
        for key in added:
            del available[key]

    import sys

    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 10000))
    try:
        visit(function.entry)
    finally:
        sys.setrecursionlimit(limit)
    return replaced


def eliminate_redundant_loads(function: Function) -> int:
    """Block-local load CSE with alias-aware invalidation."""
    replaced = 0
    for block in function.blocks:
        last_load: dict[int, LoadInst] = {}
        pointers: dict[int, Value] = {}
        for inst in list(block.instructions):
            if isinstance(inst, LoadInst):
                prior = last_load.get(id(inst.pointer))
                if prior is not None and prior.type is inst.type:
                    inst.replace_all_uses_with(prior)
                    inst.erase_from_parent()
                    replaced += 1
                else:
                    last_load[id(inst.pointer)] = inst
                    pointers[id(inst.pointer)] = inst.pointer
            elif isinstance(inst, StoreInst):
                for key, ptr in list(pointers.items()):
                    if _types_may_alias(ptr, inst.pointer) and \
                            may_alias(ptr, inst.pointer):
                        del last_load[key]
                        del pointers[key]
            elif isinstance(inst, CallInst) and not inst.is_pure():
                last_load.clear()
                pointers.clear()
    return replaced
