"""Peephole canonicalisations (a small slice of LLVM's instcombine).

The goal is canonical form, not optimisation strength: idiom descriptions
assume constants sit on the right of commutative operators and that
identity operations have been folded away — the same assumptions the
paper's IDL programs make about ``-O2`` IR.
"""

from __future__ import annotations

from ..ir.instructions import (
    BinaryOperator,
    CastInst,
    GEPInst,
    ICmpInst,
    Instruction,
)
from ..ir.module import Function
from ..ir.types import IntType
from ..ir.values import Constant, ConstantInt, Value

_ICMP_SWAP = {"eq": "eq", "ne": "ne", "slt": "sgt", "sle": "sge",
              "sgt": "slt", "sge": "sle", "ult": "ugt", "ule": "uge",
              "ugt": "ult", "uge": "ule"}


def _canonicalise_commutative(inst: BinaryOperator) -> bool:
    """Move the constant operand of a commutative op to the right."""
    if inst.is_commutative() and isinstance(inst.lhs, Constant) and \
            not isinstance(inst.rhs, Constant):
        lhs, rhs = inst.lhs, inst.rhs
        inst.set_operand(0, rhs)
        inst.set_operand(1, lhs)
        return True
    return False


def _simplify_identity(inst: BinaryOperator) -> Value | None:
    """x+0, x-0, x*1, x*0, x/1, shifts by 0, and/or identities."""
    rhs = inst.rhs
    if not isinstance(rhs, ConstantInt):
        return None
    op, value = inst.opcode, rhs.value
    if value == 0 and op in ("add", "sub", "or", "xor", "shl", "ashr", "lshr"):
        return inst.lhs
    if value == 1 and op in ("mul", "sdiv", "udiv"):
        return inst.lhs
    if value == 0 and op == "mul":
        return ConstantInt(inst.type, 0)
    if value == 0 and op == "and":
        return ConstantInt(inst.type, 0)
    if value == -1 and op == "and":
        return inst.lhs
    return None


def _merge_double_sext(inst: CastInst) -> Value | None:
    """sext(sext(x)) → sext(x) with the wider target."""
    if inst.opcode not in ("sext", "zext"):
        return None
    inner = inst.value
    if isinstance(inner, CastInst) and inner.opcode == inst.opcode and \
            len(inner.uses) == 1:
        merged = CastInst(inst.opcode, inner.value, inst.type)
        block = inst.parent
        merged.name = block.parent.unique_name(inst.name or "cast")
        block.insert(inst.index_in_block(), merged)
        return merged
    return None


def _canonicalise_icmp(inst: ICmpInst) -> bool:
    """Put the constant on the right of comparisons."""
    if isinstance(inst.lhs, Constant) and not isinstance(inst.rhs, Constant):
        lhs, rhs = inst.lhs, inst.rhs
        inst.set_operand(0, rhs)
        inst.set_operand(1, lhs)
        inst.predicate = _ICMP_SWAP[inst.predicate]
        return True
    return False


def combine_instructions(function: Function) -> int:
    """Run all peepholes to a fixed point; returns number of rewrites."""
    total = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, BinaryOperator):
                    if _canonicalise_commutative(inst):
                        total += 1
                        changed = True
                    replacement = _simplify_identity(inst)
                    if replacement is not None:
                        inst.replace_all_uses_with(replacement)
                        inst.erase_from_parent()
                        total += 1
                        changed = True
                        continue
                elif isinstance(inst, ICmpInst):
                    if _canonicalise_icmp(inst):
                        total += 1
                        changed = True
                elif isinstance(inst, CastInst):
                    replacement = _merge_double_sext(inst)
                    if replacement is not None:
                        inst.replace_all_uses_with(replacement)
                        inst.erase_from_parent()
                        total += 1
                        changed = True
                        continue
    return total
