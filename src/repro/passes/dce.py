"""Aggressive dead code elimination (mark-sweep liveness).

Roots are instructions with observable effects (stores, impure calls,
terminators, returns); everything not transitively reachable from a root
through operand edges is deleted — including dead phi *cycles*, which the
front end's scoped-variable lowering produces around loop nests and which
a naive use-count DCE can never remove.
"""

from __future__ import annotations

from ..ir.instructions import Instruction, PhiInst
from ..ir.module import Function
from ..ir.values import UndefValue


def eliminate_dead_code(function: Function) -> int:
    """Mark-sweep DCE; returns number of removed instructions."""
    live: set[int] = set()
    stack: list[Instruction] = []
    for block in function.blocks:
        for inst in block.instructions:
            if inst.is_terminator() or inst.has_side_effects():
                live.add(id(inst))
                stack.append(inst)
    while stack:
        inst = stack.pop()
        for op in inst.operands:
            if isinstance(op, Instruction) and id(op) not in live:
                live.add(id(op))
                stack.append(op)

    dead: list[Instruction] = []
    for block in function.blocks:
        for inst in block.instructions:
            if id(inst) not in live:
                dead.append(inst)
    # Detach all dead instructions first (they may form cycles), then erase.
    for inst in dead:
        inst.drop_all_operands()
    for inst in dead:
        if inst.uses:
            # Only other dead instructions could have used it; after
            # drop_all_operands none remain. Guard anyway.
            inst.replace_all_uses_with(UndefValue(inst.type))
        inst.parent.remove(inst)
    return len(dead)
