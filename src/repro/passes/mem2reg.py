"""SSA construction: promote allocas to registers (LLVM's mem2reg).

This is what turns the front end's load/store soup into the phi-based loop
form the paper's IDL idioms are written against (accumulator phis like
``%d = phi double [ 0.0, ... ], [ %d_next, ... ]`` in Figure 4).
"""

from __future__ import annotations

from ..analysis.dominators import DominatorTree, dominance_frontiers
from ..ir.instructions import AllocaInst, Instruction, LoadInst, PhiInst, StoreInst
from ..ir.module import BasicBlock, Function
from ..ir.values import UndefValue, Value


def is_promotable(alloca: AllocaInst) -> bool:
    """Only allocas used purely by loads and full-value stores promote."""
    if alloca.allocated_type.is_array():
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, LoadInst):
            continue
        if isinstance(user, StoreInst) and user.pointer is alloca and \
                user.value is not alloca:
            continue
        return False
    return True


def promote_allocas(function: Function) -> int:
    """Run mem2reg on one function; returns number of promoted allocas."""
    allocas = [inst for inst in function.entry.instructions
               if isinstance(inst, AllocaInst) and is_promotable(inst)]
    if not allocas:
        return 0

    frontiers = dominance_frontiers(function)
    domtree = DominatorTree.block_level(function)

    # -- phi placement (iterated dominance frontier per alloca) ---------------
    phi_for: dict[int, dict[int, PhiInst]] = {}  # alloca id -> block id -> phi
    phi_alloca: dict[int, AllocaInst] = {}       # phi id -> alloca
    for alloca in allocas:
        def_blocks = {id(u.user.parent): u.user.parent
                      for u in alloca.uses
                      if isinstance(u.user, StoreInst)}
        worklist = list(def_blocks.values())
        placed: dict[int, PhiInst] = {}
        seen: set[int] = set()
        while worklist:
            block = worklist.pop()
            for front in frontiers.get(id(block), ()):
                if id(front) in placed:
                    continue
                phi = PhiInst(alloca.allocated_type)
                phi.name = function.unique_name(alloca.name or "var")
                front.insert(len(front.phis()), phi)
                placed[id(front)] = phi
                phi_alloca[id(phi)] = alloca
                if id(front) not in seen:
                    seen.add(id(front))
                    worklist.append(front)
        phi_for[id(alloca)] = placed

    # -- renaming (DFS over the dominator tree) ----------------------------------
    current: dict[int, Value] = {}
    to_erase: list[Instruction] = []

    def value_of(alloca: AllocaInst) -> Value:
        return current.get(id(alloca)) or UndefValue(alloca.allocated_type)

    def process_block(block: BasicBlock, saved: list[tuple[int, Value | None]]):
        for inst in list(block.instructions):
            if isinstance(inst, PhiInst) and id(inst) in phi_alloca:
                alloca = phi_alloca[id(inst)]
                saved.append((id(alloca), current.get(id(alloca))))
                current[id(alloca)] = inst
            elif isinstance(inst, LoadInst) and \
                    isinstance(inst.pointer, AllocaInst) and \
                    id(inst.pointer) in phi_for:
                inst.replace_all_uses_with(value_of(inst.pointer))
                to_erase.append(inst)
            elif isinstance(inst, StoreInst) and \
                    isinstance(inst.pointer, AllocaInst) and \
                    id(inst.pointer) in phi_for:
                alloca = inst.pointer
                saved.append((id(alloca), current.get(id(alloca))))
                current[id(alloca)] = inst.value
                to_erase.append(inst)
        for succ in block.successors():
            for phi in succ.phis():
                if id(phi) in phi_alloca:
                    incoming = value_of(phi_alloca[id(phi)])
                    phi.add_incoming(incoming, block)

    def dfs(block: BasicBlock) -> None:
        saved: list[tuple[int, Value | None]] = []
        process_block(block, saved)
        for child in domtree.children(block):
            dfs(child)
        for key, old in reversed(saved):
            if old is None:
                current.pop(key, None)
            else:
                current[key] = old

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        dfs(function.entry)
    finally:
        sys.setrecursionlimit(old_limit)

    for inst in to_erase:
        inst.erase_from_parent()
    for alloca in allocas:
        if not alloca.uses:
            alloca.erase_from_parent()

    remove_trivial_phis(function)
    return len(allocas)


def remove_trivial_phis(function: Function) -> int:
    """Remove phis that are redundant (all incoming equal, modulo self)."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                values = {id(v) for v, _ in phi.incoming if v is not phi}
                distinct = [v for v, _ in phi.incoming if v is not phi]
                if len(values) == 1:
                    phi.replace_all_uses_with(distinct[0])
                    phi.erase_from_parent()
                    removed += 1
                    changed = True
                elif len(values) == 0:
                    # Phi only references itself: dead cycle.
                    phi.replace_all_uses_with(
                        UndefValue(phi.type))
                    phi.erase_from_parent()
                    removed += 1
                    changed = True
    return removed
