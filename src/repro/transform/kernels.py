"""Kernel extraction: data-flow slices → portable kernel expressions.

The paper cuts the loop body's kernel function out of the IR and hands it
to the DSL backends (§6.2). Here the extracted kernel is an expression
tree (:class:`KExpr`) over the declared inputs plus captured loop-invariant
values. The tree has two evaluators — scalar, and numpy-vectorised (used
by the simulated Halide/Lift compilers) — plus shape recognisers that spot
``acc + f(reads)`` / min / max reductions and ``old + delta`` histogram
updates so the runtime can use closed-form numpy implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.dataflow import data_operands
from ..analysis.info import FunctionAnalyses
from ..errors import TransformError
from ..ir.instructions import (
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    ICmpInst,
    Instruction,
    PhiInst,
    SelectInst,
)
from ..ir.values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    UndefValue,
    Value,
)


# ---------------------------------------------------------------------------
# Expression tree
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KConst:
    value: float | int


@dataclass(frozen=True)
class KParam:
    """Reference to kernel input ``index`` (a per-element stream)."""

    index: int


@dataclass(frozen=True)
class KCapture:
    """Reference to a captured loop-invariant scalar."""

    index: int


@dataclass(frozen=True)
class KBin:
    op: str
    lhs: "KExpr"
    rhs: "KExpr"


@dataclass(frozen=True)
class KCmp:
    pred: str
    lhs: "KExpr"
    rhs: "KExpr"


@dataclass(frozen=True)
class KSelect:
    cond: "KExpr"
    on_true: "KExpr"
    on_false: "KExpr"


@dataclass(frozen=True)
class KCast:
    kind: str
    operand: "KExpr"


@dataclass(frozen=True)
class KCall:
    name: str
    args: tuple


KExpr = object  # union of the above


_BIN_NUMPY = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "fadd": np.add, "fsub": np.subtract, "fmul": np.multiply,
    "fdiv": np.divide, "and": np.bitwise_and, "or": np.bitwise_or,
    "xor": np.bitwise_xor, "shl": np.left_shift, "ashr": np.right_shift,
}

_CMP_NUMPY = {
    "eq": np.equal, "ne": np.not_equal,
    "slt": np.less, "sle": np.less_equal,
    "sgt": np.greater, "sge": np.greater_equal,
    "oeq": np.equal, "one": np.not_equal,
    "olt": np.less, "ole": np.less_equal,
    "ogt": np.greater, "oge": np.greater_equal,
    "ult": np.less, "ule": np.less_equal,
    "ugt": np.greater, "uge": np.greater_equal,
    "une": np.not_equal, "ueq": np.equal,
}

_CALL_NUMPY = {
    "sqrt": np.sqrt, "fabs": np.abs, "exp": np.exp, "log": np.log,
    "sin": np.sin, "cos": np.cos, "tan": np.tan, "floor": np.floor,
    "ceil": np.ceil, "pow": np.power, "fmax": np.maximum,
    "fmin": np.minimum, "abs": np.abs, "max": np.maximum,
    "min": np.minimum,
}


def evaluate(expr: KExpr, params: list, captures: list):
    """Evaluate over numpy arrays (or scalars) — vectorised semantics."""
    if isinstance(expr, KConst):
        return expr.value
    if isinstance(expr, KParam):
        return params[expr.index]
    if isinstance(expr, KCapture):
        return captures[expr.index]
    if isinstance(expr, KBin):
        lhs = evaluate(expr.lhs, params, captures)
        rhs = evaluate(expr.rhs, params, captures)
        if expr.op in ("sdiv", "udiv"):
            return np.floor_divide(lhs, rhs) if _all_int(lhs, rhs) else \
                np.divide(lhs, rhs)
        if expr.op in ("srem", "urem"):
            return np.remainder(lhs, rhs)
        return _BIN_NUMPY[expr.op](lhs, rhs)
    if isinstance(expr, KCmp):
        return _CMP_NUMPY[expr.pred](
            evaluate(expr.lhs, params, captures),
            evaluate(expr.rhs, params, captures))
    if isinstance(expr, KSelect):
        return np.where(evaluate(expr.cond, params, captures),
                        evaluate(expr.on_true, params, captures),
                        evaluate(expr.on_false, params, captures))
    if isinstance(expr, KCast):
        value = evaluate(expr.operand, params, captures)
        if expr.kind in ("fptosi",):
            if _is_array(value):
                # Lanes holding non-finite values are guarded out later;
                # cast them to 0 to keep the vectorised evaluation silent.
                return np.nan_to_num(np.asarray(value), nan=0.0,
                                     posinf=0.0, neginf=0.0
                                     ).astype(np.int64)
            return int(value)
        if expr.kind in ("sitofp", "fpext", "fptrunc"):
            return np.asarray(value).astype(np.float64) if _is_array(value) \
                else float(value)
        return value
    if isinstance(expr, KCall):
        args = [evaluate(a, params, captures) for a in expr.args]
        # Lanes excluded by the guard may hold out-of-domain values
        # (e.g. sqrt of a negative); they are masked out downstream.
        with np.errstate(invalid="ignore", divide="ignore"):
            return _CALL_NUMPY[expr.name](*args)
    raise TransformError(f"cannot evaluate kernel node {expr!r}")


def _is_array(value) -> bool:
    return isinstance(value, np.ndarray)


def _all_int(*values) -> bool:
    for v in values:
        if isinstance(v, np.ndarray):
            if not np.issubdtype(v.dtype, np.integer):
                return False
        elif not isinstance(v, (int, np.integer)):
            return False
    return True


# ---------------------------------------------------------------------------
# Extraction from IR
# ---------------------------------------------------------------------------

@dataclass
class ExtractedKernel:
    """A kernel expression plus its environment requirements."""

    expr: KExpr
    #: IR values captured as loop-invariant scalars, in KCapture order.
    captures: list[Value] = field(default_factory=list)
    #: Optional guard predicate (None = unconditional).
    guard: KExpr | None = None

    def evaluate(self, params: list, capture_values: list):
        return evaluate(self.expr, params, capture_values)

    def guard_mask(self, params: list, capture_values: list):
        if self.guard is None:
            return None
        return evaluate(self.guard, params, capture_values)


class KernelExtractor:
    """Builds :class:`ExtractedKernel` objects from a matched region."""

    def __init__(self, analyses: FunctionAnalyses, outer: Instruction,
                 inner: Instruction, inputs: list[Value]):
        self.analyses = analyses
        self.outer = outer
        self.inner = inner
        self.inputs = inputs
        self.captures: list[Value] = []
        self._capture_ids: dict[int, int] = {}
        self._cache: dict[int, KExpr] = {}

    # -- public -----------------------------------------------------------------
    def extract(self, output: Value) -> ExtractedKernel:
        expr = self._build(output)
        return ExtractedKernel(expr, list(self.captures))

    def extract_guard(self, anchor: Instruction) -> KExpr | None:
        """Conjunction of in-body branch conditions controlling ``anchor``."""
        dom = self.analyses.dom
        conditions: list[KExpr] = []
        for branch in self.analyses.cfg.nodes:
            if not isinstance(branch, BranchInst) or \
                    not branch.is_conditional():
                continue
            if not dom.dominates(self.inner, branch):
                continue
            if not self.analyses.control_dep.depends_on(anchor, branch):
                continue
            then_first = branch.targets()[0].instructions[0]
            cond = self._build(branch.condition)
            # Anchor on the true side keeps the condition; otherwise negate.
            if dom.dominates(then_first, anchor):
                conditions.append(cond)
            else:
                conditions.append(KCmp("eq", cond, KConst(0)))
        if not conditions:
            return None
        guard = conditions[0]
        for extra in conditions[1:]:
            guard = KBin("and", _as_int(guard), _as_int(extra))
        return guard

    # -- recursion -------------------------------------------------------------
    def _build(self, value: Value) -> KExpr:
        key = id(value)
        if key in self._cache:
            return self._cache[key]
        expr = self._build_uncached(value)
        self._cache[key] = expr
        return expr

    def _build_uncached(self, value: Value) -> KExpr:
        for index, input_value in enumerate(self.inputs):
            if value is input_value:
                return KParam(index)
        if isinstance(value, ConstantInt):
            return KConst(value.value)
        if isinstance(value, ConstantFloat):
            return KConst(value.value)
        if isinstance(value, UndefValue):
            return KConst(0)
        if not isinstance(value, Instruction) or \
                not self.analyses.dom.dominates(self.outer, value):
            # Loop invariant (argument, global address, pre-loop value).
            return self._capture(value)
        if isinstance(value, BinaryOperator):
            return KBin(value.opcode, self._build(value.lhs),
                        self._build(value.rhs))
        if isinstance(value, (ICmpInst, FCmpInst)):
            return KCmp(value.predicate, self._build(value.lhs),
                        self._build(value.rhs))
        if isinstance(value, SelectInst):
            return KSelect(self._build(value.condition),
                           self._build(value.true_value),
                           self._build(value.false_value))
        if isinstance(value, CastInst):
            return KCast(value.opcode, self._build(value.value))
        if isinstance(value, CallInst) and value.is_pure():
            return KCall(value.callee,
                         tuple(self._build(a) for a in value.operands))
        if isinstance(value, PhiInst):
            return self._build_phi(value)
        raise TransformError(
            f"kernel extraction hit unsupported value {value!r}")

    def _capture(self, value: Value) -> KCapture:
        key = id(value)
        if key not in self._capture_ids:
            self._capture_ids[key] = len(self.captures)
            self.captures.append(value)
        return KCapture(self._capture_ids[key])

    def _build_phi(self, phi: PhiInst) -> KExpr:
        """Convert a diamond/triangle merge phi to a select expression."""
        if len(phi.incoming) != 2:
            raise TransformError("kernel phi with more than two arms")
        (v1, b1), (v2, b2) = phi.incoming
        dom = self.analyses.dom
        # The controlling branch is the terminator of the immediate
        # dominator of the phi's block (classic if-conversion).
        idom_block = None
        header_first = phi.parent.instructions[0]
        idom_inst = self.analyses.dom.idom(header_first)
        while idom_inst is not None and not (
                isinstance(idom_inst, BranchInst) and
                idom_inst.is_conditional()):
            idom_inst = self.analyses.dom.idom(idom_inst)
        branch = idom_inst
        if branch is None:
            raise TransformError("cannot if-convert kernel phi")
        cond = self._build(branch.condition)
        then_block, else_block = branch.targets()
        then_first = then_block.instructions[0]

        def arm_reached_via(block) -> bool:
            term = block.terminator
            return term is not None and dom.dominates(then_first, term)

        if arm_reached_via(b1):
            return KSelect(cond, self._build(v1), self._build(v2))
        if arm_reached_via(b2):
            return KSelect(cond, self._build(v2), self._build(v1))
        # Triangle: one edge comes straight from the branch block.
        if b1.terminator is branch:
            return KSelect(cond, self._build(v2), self._build(v1))
        if b2.terminator is branch:
            return KSelect(cond, self._build(v1), self._build(v2))
        raise TransformError("cannot orient kernel phi arms")


def _as_int(expr: KExpr) -> KExpr:
    return expr


# ---------------------------------------------------------------------------
# Shape recognisers (fast paths for the API runtime)
# ---------------------------------------------------------------------------

def match_accumulator_form(expr: KExpr, acc_param: int):
    """Recognise ``acc ⊕ delta`` / ``min/max(acc, x)`` / conditional forms.

    Returns (kind, delta_expr) where kind ∈ {'sum', 'max', 'min'} and
    ``delta_expr`` references only non-accumulator params, or None.
    Conditional sums ``cond ? acc + d : acc`` normalise to
    ``acc + (cond ? d : 0)``.
    """
    def references_acc(e: KExpr) -> bool:
        if isinstance(e, KParam):
            return e.index == acc_param
        for child in _children(e):
            if references_acc(child):
                return True
        return False

    if isinstance(expr, KBin) and expr.op in ("fadd", "add"):
        lhs_acc = isinstance(expr.lhs, KParam) and \
            expr.lhs.index == acc_param
        rhs_acc = isinstance(expr.rhs, KParam) and \
            expr.rhs.index == acc_param
        if lhs_acc and not references_acc(expr.rhs):
            return ("sum", expr.rhs)
        if rhs_acc and not references_acc(expr.lhs):
            return ("sum", expr.lhs)
    if isinstance(expr, KSelect):
        # max: select(x > acc, x, acc)  /  select(acc < x, x, acc) ...
        cond, t, f = expr.cond, expr.on_true, expr.on_false
        t_acc = isinstance(t, KParam) and t.index == acc_param
        f_acc = isinstance(f, KParam) and f.index == acc_param
        if isinstance(cond, KCmp) and (t_acc != f_acc):
            other = f if t_acc else t
            if not references_acc(other):
                kind = _minmax_kind(cond, acc_param, other, taken_is_other=f_acc)
                if kind is not None:
                    return (kind, other)
        # conditional sum: select(c, acc + d, acc)
        if f_acc and isinstance(t, KBin) and t.op in ("fadd", "add"):
            inner = match_accumulator_form(t, acc_param)
            if inner is not None and inner[0] == "sum" and \
                    not references_acc(cond):
                return ("sum", KSelect(cond, inner[1], KConst(0)))
        if t_acc and isinstance(f, KBin) and f.op in ("fadd", "add"):
            inner = match_accumulator_form(f, acc_param)
            if inner is not None and inner[0] == "sum" and \
                    not references_acc(cond):
                return ("sum", KSelect(cond, KConst(0), inner[1]))
    return None


def _minmax_kind(cond: KCmp, acc_param: int, other: KExpr,
                 taken_is_other: bool):
    """Classify select(cmp, ...) accumulator updates as min or max.

    ``taken_is_other`` is True when the *false* arm is the accumulator,
    i.e. the true branch of the comparison picks ``other``.
    """
    def is_acc(e):
        return isinstance(e, KParam) and e.index == acc_param

    greater = cond.pred in ("sgt", "sge", "ogt", "oge", "ugt", "uge")
    less = cond.pred in ("slt", "sle", "olt", "ole", "ult", "ule")
    if not greater and not less:
        return None
    if is_acc(cond.rhs) and cond.lhs == other:
        other_gt_acc = greater  # condition reads: other PRED acc
    elif is_acc(cond.lhs) and cond.rhs == other:
        other_gt_acc = less     # condition reads: acc PRED other
    else:
        return None
    # Picking `other` when other > acc is a max; when other < acc, a min.
    if taken_is_other:
        return "max" if other_gt_acc else "min"
    return "min" if other_gt_acc else "max"


def _children(expr: KExpr) -> list:
    if isinstance(expr, KBin):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, KCmp):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, KSelect):
        return [expr.cond, expr.on_true, expr.on_false]
    if isinstance(expr, KCast):
        return [expr.operand]
    if isinstance(expr, KCall):
        return list(expr.args)
    return []
