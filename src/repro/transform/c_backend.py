"""The "rudimentary LLVM IR to C backend" (paper §6.2).

Lift expects extracted kernels as sequential C functions with a fixed
interface; this module renders :class:`~repro.transform.kernels.KExpr`
trees (and guard predicates) to compilable C source text. The output is
what our simulated Lift pipeline ingests — and it doubles as a
human-readable witness of what was extracted, used in tests and examples.
"""

from __future__ import annotations

from ..errors import TransformError
from .kernels import (
    ExtractedKernel,
    KBin,
    KCall,
    KCapture,
    KCast,
    KCmp,
    KConst,
    KParam,
    KSelect,
)

_C_BINOPS = {
    "add": "+", "sub": "-", "mul": "*", "sdiv": "/", "srem": "%",
    "fadd": "+", "fsub": "-", "fmul": "*", "fdiv": "/",
    "and": "&", "or": "|", "xor": "^", "shl": "<<", "ashr": ">>",
}

_C_CMPS = {
    "eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
    "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
    "oeq": "==", "one": "!=", "olt": "<", "ole": "<=", "ogt": ">",
    "oge": ">=", "une": "!=", "ueq": "==",
}


def expr_to_c(expr) -> str:
    """Render a kernel expression as a C expression string."""
    if isinstance(expr, KConst):
        if isinstance(expr.value, float):
            return repr(expr.value)
        return str(expr.value)
    if isinstance(expr, KParam):
        return f"in{expr.index}"
    if isinstance(expr, KCapture):
        return f"cap{expr.index}"
    if isinstance(expr, KBin):
        op = _C_BINOPS.get(expr.op)
        if op is None:
            raise TransformError(f"no C rendering for opcode {expr.op}")
        return f"({expr_to_c(expr.lhs)} {op} {expr_to_c(expr.rhs)})"
    if isinstance(expr, KCmp):
        return (f"({expr_to_c(expr.lhs)} {_C_CMPS[expr.pred]} "
                f"{expr_to_c(expr.rhs)})")
    if isinstance(expr, KSelect):
        return (f"({expr_to_c(expr.cond)} ? {expr_to_c(expr.on_true)} : "
                f"{expr_to_c(expr.on_false)})")
    if isinstance(expr, KCast):
        target = {"fptosi": "long", "sitofp": "double", "fpext": "double",
                  "fptrunc": "float", "sext": "long", "zext": "long",
                  "trunc": "int", "bitcast": ""}.get(expr.kind, "")
        inner = expr_to_c(expr.operand)
        return f"(({target}){inner})" if target else inner
    if isinstance(expr, KCall):
        args = ", ".join(expr_to_c(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TransformError(f"cannot render kernel node {expr!r}")


def kernel_to_c(kernel: ExtractedKernel, name: str = "kernel",
                n_params: int | None = None,
                result_type: str = "double") -> str:
    """Render an extracted kernel as a C function (the Lift interface)."""
    params = n_params if n_params is not None else _max_param(kernel.expr) + 1
    args = [f"double in{i}" for i in range(params)]
    args += [f"double cap{i}" for i in range(len(kernel.captures))]
    lines = [f"{result_type} {name}({', '.join(args)}) {{"]
    if kernel.guard is not None:
        lines.append(f"  if (!{expr_to_c(kernel.guard)}) return in{params - 1};")
    lines.append(f"  return {expr_to_c(kernel.expr)};")
    lines.append("}")
    return "\n".join(lines)


def _max_param(expr) -> int:
    best = -1
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, KParam):
            best = max(best, node.index)
        elif isinstance(node, KBin):
            stack += [node.lhs, node.rhs]
        elif isinstance(node, KCmp):
            stack += [node.lhs, node.rhs]
        elif isinstance(node, KSelect):
            stack += [node.cond, node.on_true, node.on_false]
        elif isinstance(node, KCast):
            stack.append(node.operand)
        elif isinstance(node, KCall):
            stack += list(node.args)
    return best
