"""Region extraction: the loop nest a match spans, and its rewiring.

The structural half of idiom replacement (paper §6.1/§6.3), split out of
:mod:`repro.transform.replace` so lowering is purely contract-driven:

* locate the matched loop nest, its preheader and unique exit,
* verify no SSA value other than the idiom's result escapes the region,
* collect call arguments with dominance checks,
* rewire the CFG — either an unconditional bypass that deletes the loop,
  or a **guarded multi-version** (paper §6.3's runtime aliasing check):
  the preheader branches on a guard call, taking the API fast path when
  the handler's buffers provably don't overlap and falling back to the
  *intact original loop* when they might.
"""

from __future__ import annotations

from ..analysis.info import FunctionAnalyses
from ..analysis.loops import Loop, LoopInfo
from ..backends.api import ApiCallSite
from ..errors import TransformError
from ..idioms.matches import IdiomMatch
from ..ir.instructions import BranchInst, CallInst, Instruction, PhiInst
from ..ir.module import Function
from ..ir.types import I1, VOID
from ..ir.values import Value


class Region:
    """The single-entry loop region one idiom match spans."""

    def __init__(self, match: IdiomMatch, function: Function,
                 analyses: FunctionAnalyses):
        self.match = match
        self.function = function
        self.analyses = analyses
        self.loop = self._outer_loop()
        self.preheader = self.loop.preheader()
        if self.preheader is None or self.preheader.terminator is None:
            raise TransformError("matched loop has no preheader")
        exits = self.loop.exit_blocks()
        if len(exits) != 1:
            raise TransformError("matched loop has multiple exits")
        self.exit_block = exits[0]
        self.args: list[Value] = []

    # -- structure ------------------------------------------------------------
    def _outer_loop(self) -> Loop:
        sol = self.match.solution
        iterator = sol.get("iterator") or sol.get("iterator[0]")
        if not isinstance(iterator, PhiInst) or iterator.parent is None:
            raise TransformError("match has no loop iterator phi")
        info = LoopInfo(self.function)
        for loop in info.loops:
            if loop.header is iterator.parent:
                return loop
        raise TransformError("iterator is not a loop header phi")

    def check_escapes(self, allowed: list[Value]) -> None:
        """Reject the region if any loop-defined SSA value other than the
        allowed results is used outside the loop (paper §6.1)."""
        loop_blocks = {id(b) for b in self.loop.blocks}
        allowed_ids = {id(v) for v in allowed}
        for block in self.loop.blocks:
            for inst in block.instructions:
                if id(inst) in allowed_ids or not inst.uses:
                    continue
                for user in inst.users():
                    parent = getattr(user, "parent", None)
                    if parent is not None and id(parent) not in loop_blocks:
                        raise TransformError(
                            f"value {inst.ref()} escapes the matched region")

    def arg(self, value: Value) -> int:
        """Append a call argument, verifying it's available at the site."""
        if isinstance(value, Instruction):
            if not self.analyses.dom.dominates(
                    value, self.preheader.terminator):
                raise TransformError(
                    f"argument {value.ref()} unavailable at call site")
        self.args.append(value)
        return len(self.args) - 1

    # -- rewiring -------------------------------------------------------------
    def insert_call(self, site: ApiCallSite,
                    result_value: Value | None = None) -> None:
        """Insert the API call; route the idiom's result to its users."""
        ret_type = VOID if result_value is None else result_value.type
        call = CallInst(site.callee, self.args, ret_type)
        if not ret_type.is_void():
            call.name = self.function.unique_name("apiresult")
        term = self.preheader.terminator
        self.preheader.insert(term.index_in_block(), call)

        if result_value is not None:
            loop_blocks = {id(b) for b in self.loop.blocks}
            for use in list(result_value.uses):
                parent = getattr(use.user, "parent", None)
                if parent is not None and id(parent) not in loop_blocks:
                    use.user.set_operand(use.index, call)

    def bypass_loop(self) -> None:
        """Retarget the preheader branch from the loop header to the exit;
        unreachable-block cleanup then deletes the original loop."""
        term = self.preheader.terminator
        for i, op in enumerate(term.operands):
            if op is self.loop.header:
                term.set_operand(i, self.exit_block)

    def can_guard(self) -> bool:
        """Whether the guarded multi-version structure applies here: the
        exit must be phi-free (the fast path adds a predecessor) and the
        preheader must fall through to the header unconditionally."""
        term = self.preheader.terminator
        if term is None or not isinstance(term, BranchInst) or \
                term.is_conditional():
            return False
        return not any(isinstance(i, PhiInst)
                       for i in self.exit_block.instructions)

    def insert_guarded_call(self, site: ApiCallSite,
                            guard: ApiCallSite) -> None:
        """Multi-version the region (paper §6.3)::

            preheader:  %safe = call i1 repro.api.<guard>(args...)
                        br %safe, %apifast, %loop_header
            apifast:    %ok = call i1 repro.api.<site>(args...)
                        br %ok, %exit, %loop_header

        The original loop stays intact and runs whenever the guard trips
        (potentially-overlapping buffers), keeping the transformation
        bit-exact under aliasing. The API call itself also returns an i1:
        the dispatch layer answers 0 when the backend failed (after
        rolling back any partial writes), steering execution onto that
        same original loop — so a crashing backend degrades to the
        pre-transformation result instead of aborting the workload.
        Every loop-header phi gains an incoming for the new apifast edge,
        carrying its preheader value (the loop starts from scratch
        exactly as if the guard had tripped).
        """
        if not self.can_guard():
            raise TransformError("region does not admit a guarded call")
        term = self.preheader.terminator
        fast = self.function.append_block("apifast")
        call = CallInst(site.callee, self.args, I1,
                        name=self.function.unique_name("apiok"))
        fast.append(call)
        fast.append(BranchInst(call, self.exit_block, self.loop.header))
        for inst in self.loop.header.instructions:
            if isinstance(inst, PhiInst):
                inst.add_incoming(inst.incoming_value_for(self.preheader),
                                  fast)

        guard_call = CallInst(guard.callee, self.args, I1,
                              name=self.function.unique_name("apisafe"))
        self.preheader.insert(term.index_in_block(), guard_call)
        self.preheader.remove(term)
        term.drop_all_operands()
        self.preheader.append(BranchInst(guard_call, fast,
                                         self.loop.header))


def make_alias_guard(reads: tuple, writes: tuple):
    """Handler for an aliasing-guard site: 1 iff no written buffer is
    also read through a *different* argument (buffer identity is the
    paper's runtime non-overlap check; identity is conservative — two
    disjoint views of one buffer still trip the guard, trading speed for
    soundness, never correctness)."""

    def guard(args, engine):
        write_buffers = {}
        for index in writes:
            buffer = getattr(args[index], "buffer", None)
            if buffer is not None:
                write_buffers[id(buffer)] = index
        for index in reads:
            if index in writes:
                continue
            buffer = getattr(args[index], "buffer", None)
            if buffer is not None and id(buffer) in write_buffers:
                return 0
        return 1

    return guard
