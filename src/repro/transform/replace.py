"""Idiom replacement: cut the matched loops out, call the API instead.

Implements paper §6 as **contract-driven lowering** over the structural
:class:`~repro.transform.region.Region` layer: for every
:class:`IdiomMatch` the transformer

1. extracts the region (loop nest, preheader/exit, escape verification —
   see :mod:`repro.transform.region`),
2. resolves a :class:`~repro.backends.registry.LoweringContract` for the
   idiom's category from the backend registry — the match must supply
   every solution key the contract requires, and the contract supplies
   the numeric kernels the handler computes with (no hard-coded backend
   imports),
3. extracts kernel functions (for reductions/histograms/stencils) into
   portable kernel expressions,
4. registers a runtime handler with the :class:`ApiRuntime`, annotated
   with its read/write pointer-argument schema (the residency planner's
   buffer-access model),
5. rewires the CFG: idioms with a scalar result bypass the loop outright;
   void idioms in singleton groups whose region admits it (phi-free exit,
   unconditional preheader fall-through) get the paper §6.3 **guarded
   multi-version** — a runtime aliasing check that falls back to the
   intact original loop when the handler's buffers might overlap
   (``site.guarded``). Shared-loop groups and irregular regions keep the
   seed's unguarded replacement, accepted as unsound in corner cases
   exactly as the paper concedes.

A group that fails any check raises :class:`TransformError` *before* the
function is mutated; :meth:`Transformer.apply` records the rejection and
leaves the original loop bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.info import FunctionAnalyses
from ..backends.api import ApiCallSite, ApiRuntime
from ..backends.registry import (
    BackendRegistry,
    LoweringContract,
    default_registry,
)
from ..errors import TransformError
from ..idioms.matches import IdiomMatch
from ..ir.instructions import Instruction
from ..ir.module import Function, Module
from ..ir.types import ArrayType, PointerType
from ..ir.values import ConstantInt, Value
from ..passes.dce import eliminate_dead_code
from ..passes.simplifycfg import remove_unreachable_blocks
from ..runtime.memory import Pointer
from .kernels import KernelExtractor, match_accumulator_form
from .region import Region, make_alias_guard


@dataclass
class AppliedTransform:
    match: IdiomMatch
    site: ApiCallSite
    function: Function


@dataclass
class RejectedTransform:
    """A match the transformer refused; its loop is left untouched."""

    match: IdiomMatch
    reason: str


class Transformer:
    """Applies idiom replacements to a module.

    ``backends`` restricts which registry entries may lower matches (the
    ``--backends`` CLI flag); ``None`` means all registered backends.
    """

    def __init__(self, module: Module, runtime: ApiRuntime,
                 registry: BackendRegistry | None = None,
                 backends: list[str] | None = None):
        self.module = module
        self.runtime = runtime
        self.registry = registry if registry is not None \
            else default_registry()
        self.backends = list(backends) if backends is not None else None
        # Unknown backend names fail here, before any group is touched —
        # a mid-apply BackendError would leave the module half-transformed.
        self.registry.entries(self.backends)
        self.rejected: list[RejectedTransform] = []

    def apply(self, matches: list[IdiomMatch]) -> list[AppliedTransform]:
        """Matches sharing one loop (EP's histogram + conditional sum)
        are replaced jointly: one call per idiom, one loop rewiring.
        Groups that fail validation are skipped (recorded in
        ``self.rejected``) with their original loops intact."""
        groups: dict[tuple, list[IdiomMatch]] = {}
        for match in matches:
            iterator = match.value("iterator") or match.value("iterator[0]")
            key = (id(match.function), id(iterator))
            groups.setdefault(key, []).append(match)
        applied = []
        for group in groups.values():
            try:
                applied.extend(self.apply_group(group))
            except TransformError as exc:
                for match in group:
                    self.rejected.append(RejectedTransform(match, str(exc)))
        return applied

    def apply_group(self, group: list[IdiomMatch]) -> list[AppliedTransform]:
        function = group[0].function
        analyses = FunctionAnalyses(function)
        builders = [_SiteBuilder(m, function, analyses, self.registry,
                                 self.backends,
                                 quarantine=self.runtime.quarantine)
                    for m in group]
        # Values produced by sibling idioms in the same loop are not
        # escapes — their out-of-loop uses get each sibling's call result.
        shared = [b.expected_result() for b in builders]
        shared = [v for v in shared if v is not None]
        # Building validates (escapes, dominance, contracts) without
        # mutating the function: a TransformError here leaves the loop
        # bit-identical to the original. Sites already registered for
        # earlier members of a failing group are discarded so the runtime
        # never carries orphan call sites.
        sites: list[ApiCallSite] = []
        try:
            for builder in builders:
                sites.append(builder.build(self.runtime,
                                           allowed_escapes=shared))
        except TransformError:
            for site in sites:
                self.runtime.discard(site)
            raise
        only = builders[0]
        if len(builders) == 1 and only.result_value is None \
                and sites[0].writes and sites[0].reads \
                and only.region.can_guard():
            guard = self.runtime.new_guard(
                sites[0], make_alias_guard(sites[0].reads, sites[0].writes))
            only.region.insert_guarded_call(sites[0], guard)
            sites[0].guarded = True
        else:
            for builder, site in zip(builders, sites):
                builder.region.insert_call(site, builder.result_value)
            only.region.bypass_loop()
        remove_unreachable_blocks(function)
        eliminate_dead_code(function)
        return [AppliedTransform(m, s, function)
                for m, s in zip(group, sites)]

    def apply_one(self, match: IdiomMatch) -> AppliedTransform:
        applied = self.apply_group([match])
        return applied[0]


class _SiteBuilder:
    """Lowers one match under a registry contract, via its Region."""

    def __init__(self, match: IdiomMatch, function: Function,
                 analyses: FunctionAnalyses, registry: BackendRegistry,
                 backends: list[str] | None, quarantine=None):
        self.match = match
        self.function = function
        self.registry = registry
        self.backends = backends
        self.quarantine = quarantine
        self.region = Region(match, function, analyses)
        self.result_value: Value | None = None  # SSA value the call replaces

    @property
    def args(self) -> list[Value]:
        return self.region.args

    def _arg(self, value: Value) -> int:
        return self.region.arg(value)

    def _check_escapes(self, allowed: list[Value]) -> None:
        self.region.check_escapes(allowed + self._shared_escapes)

    def expected_result(self) -> Value | None:
        """The SSA value this idiom's call will replace (if any)."""
        if self.match.idiom == "Reduction":
            return self.match.solution.get("old_value")
        return None

    def _contract(self, category: str) -> LoweringContract:
        """First registered, non-quarantined contract the match satisfies."""
        contracts = self.registry.contracts_for(category, self.backends,
                                                quarantine=self.quarantine)
        if not contracts:
            scope = "" if self.backends is None else \
                f" with backends limited to {', '.join(self.backends)}"
            if self.quarantine is not None and self.quarantine.quarantined():
                scope += " (quarantined: " + ", ".join(
                    f"{b}/{c}" for b, c in self.quarantine.quarantined()) \
                    + ")"
            raise TransformError(
                f"no registered backend lowers {category!r}{scope}")
        solution = self.match.solution
        for contract in contracts:
            if contract.satisfied_by(solution):
                return contract
        first = contracts[0]
        raise TransformError(
            f"match for {category!r} satisfies no lowering contract "
            f"(e.g. {first.backend!r} needs {first.missing(solution)})")

    # -- dispatch -------------------------------------------------------------
    def build(self, runtime: ApiRuntime,
              allowed_escapes: list[Value] | None = None) -> ApiCallSite:
        self._shared_escapes = list(allowed_escapes or [])
        idiom = self.match.idiom
        if idiom == "Reduction":
            return self._build_reduction(runtime)
        if idiom == "Histogram":
            return self._build_histogram(runtime)
        if idiom == "SPMV":
            return self._build_spmv(runtime)
        if idiom == "GEMM":
            return self._build_gemm(runtime)
        if idiom.startswith("Stencil"):
            return self._build_stencil(runtime)
        raise TransformError(f"no transformation for idiom {idiom!r}")

    # -- shared helpers ----------------------------------------------------------
    def _read_pointer_base(self, prefix: str) -> Value:
        """The loop-invariant pointer the final index gep applies to."""
        sol = self.match.solution
        address = sol.get(f"{prefix}.address")
        if not isinstance(address, Instruction):
            raise TransformError(f"{prefix}: no address gep in solution")
        return address.operands[0]

    def _extractor(self, inputs: list[Value], outer_key: str = "begin",
                   inner_key: str = "body.begin") -> KernelExtractor:
        sol = self.match.solution
        outer = sol[outer_key]
        inner = sol[inner_key]
        return KernelExtractor(self.region.analyses, outer, inner, inputs)

    def _range_args(self, begin_key: str, end_key: str) -> tuple[int, int]:
        sol = self.match.solution
        return self._arg(sol[begin_key]), self._arg(sol[end_key])

    # -- Reduction -----------------------------------------------------------------
    def _build_reduction(self, runtime: ApiRuntime) -> ApiCallSite:
        contract = self._contract("scalar_reduction")
        evaluate = contract.kernels["evaluate"]
        sol = self.match.solution
        old_value = sol["old_value"]
        self.result_value = old_value
        self._check_escapes([old_value])

        reads = self.match.family("read_value")
        inputs = reads + [old_value]
        extractor = self._extractor(inputs)
        kernel = extractor.extract(sol["kernel.output"])
        acc_index = len(reads)
        fast = match_accumulator_form(kernel.expr, acc_index)

        i_begin = self._arg(sol["iter_begin"])
        i_end = self._arg(sol["iter_end"])
        i_init = self._arg(sol["ind_init"])
        cap_lo = len(self.args)
        for cap in kernel.captures:
            self._arg(cap)
        cap_hi = len(self.args)
        ptr_lo = len(self.args)
        for i in range(len(reads)):
            self._arg(self._read_pointer_base(f"read[{i}]"))

        n_reads = len(reads)

        def handler(args, interpreter, _site=[None]):
            begin, end, init = args[i_begin], args[i_end], args[i_init]
            caps = list(args[cap_lo:cap_hi])
            n = max(0, int(end) - int(begin))
            site = _site[0]
            site.stats["calls"] = site.stats.get("calls", 0) + 1
            site.stats["elements"] = site.stats.get("elements", 0) + n
            site.stats["bytes"] = site.stats.get("bytes", 0) + \
                8 * n * max(1, n_reads)
            if n == 0:
                return init
            views = []
            for p in range(n_reads):
                pointer = args[ptr_lo + p]
                views.append(pointer.view()[int(begin):int(end)])
            params = views + [None]
            if fast is not None:
                kind, delta = fast
                arr = evaluate(delta, params, caps)
                arr = np.broadcast_to(np.asarray(arr), (n,))
                if kind == "sum":
                    return init + arr.sum()
                if kind == "max":
                    return max(init, arr.max())
                return min(init, arr.min())
            acc = init
            for i in range(n):
                params_i = [v[i] for v in views] + [acc]
                acc = evaluate(kernel.expr, params_i, caps)
            return acc

        site = runtime.new_site(
            "Reduction", "scalar_reduction", handler,
            f"reduction in @{self.function.name}",
            backend=contract.backend,
            reads=tuple(range(ptr_lo, ptr_lo + n_reads)))
        handler.__defaults__[0][0] = site
        site.stats["reads_per_element"] = n_reads
        site.stats["flops_per_element"] = _expr_flops(kernel.expr)
        return site

    # -- Histogram -----------------------------------------------------------------
    def _build_histogram(self, runtime: ApiRuntime) -> ApiCallSite:
        contract = self._contract("histogram_reduction")
        evaluate = contract.kernels["evaluate"]
        sol = self.match.solution
        self._check_escapes([])

        reads = self.match.family("read_value")
        old_value = sol["old_value"]
        value_inputs = reads + [old_value]
        acc_index = len(reads)

        extractor = self._extractor(value_inputs)
        value_kernel = extractor.extract(sol["kernel.output"])
        index_kernel = extractor.extract(sol["indexkernel.output"])
        guard = extractor.extract_guard(sol["store"])
        fast = match_accumulator_form(value_kernel.expr, acc_index)

        i_begin = self._arg(sol["iter_begin"])
        i_end = self._arg(sol["iter_end"])
        bin_arg = self._arg(sol["base_pointer"])
        cap_lo = len(self.args)
        for cap in extractor.captures:
            self._arg(cap)
        cap_hi = len(self.args)
        ptr_lo = len(self.args)
        for i in range(len(reads)):
            self._arg(self._read_pointer_base(f"read[{i}]"))
        n_reads = len(reads)

        def handler(args, interpreter, _site=[None]):
            begin, end = int(args[i_begin]), int(args[i_end])
            caps = list(args[cap_lo:cap_hi])
            bins: Pointer = args[bin_arg]
            n = max(0, end - begin)
            site = _site[0]
            site.stats["calls"] = site.stats.get("calls", 0) + 1
            site.stats["elements"] = site.stats.get("elements", 0) + n
            site.stats["bytes"] = site.stats.get("bytes", 0) + \
                8 * n * max(1, n_reads + 2)
            if n == 0:
                return None
            views = [args[ptr_lo + p].view()[begin:end]
                     for p in range(n_reads)]
            params = views + [None]
            idx = np.broadcast_to(
                np.asarray(evaluate(index_kernel.expr, params, caps)), (n,))
            idx = idx.astype(np.int64) + bins.offset
            mask = None
            if guard is not None:
                mask = np.broadcast_to(
                    np.asarray(evaluate(guard, params, caps)), (n,)
                ).astype(bool)
            data = bins.buffer.data
            if fast is not None and fast[0] == "sum":
                delta = np.broadcast_to(
                    np.asarray(evaluate(fast[1], params, caps)), (n,))
                if mask is not None:
                    np.add.at(data, idx[mask], delta[mask])
                else:
                    np.add.at(data, idx, delta)
                return None
            for i in range(n):
                if mask is not None and not mask[i]:
                    continue
                old = data[idx[i]]
                params_i = [v[i] for v in views] + [old]
                data[idx[i]] = evaluate(value_kernel.expr, params_i, caps)
            return None

        site = runtime.new_site(
            "Histogram", "histogram_reduction", handler,
            f"histogram in @{self.function.name}",
            backend=contract.backend,
            reads=tuple(range(ptr_lo, ptr_lo + n_reads)),
            writes=(bin_arg,))
        handler.__defaults__[0][0] = site
        site.stats["reads_per_element"] = n_reads
        site.stats["flops_per_element"] = _expr_flops(value_kernel.expr) + \
            _expr_flops(index_kernel.expr)
        return site

    # -- SPMV --------------------------------------------------------------------
    def _build_spmv(self, runtime: ApiRuntime) -> ApiCallSite:
        contract = self._contract("sparse_matrix_op")
        spmv = contract.kernels["spmv"]
        sol = self.match.solution
        self._check_escapes([])
        i_begin = self._arg(sol["iter_begin"])
        i_end = self._arg(sol["iter_end"])
        rows_arg = self._arg(sol["ranges.lo_address"].operands[0])
        cols_arg = self._arg(self._read_pointer_base("idx_read"))
        vals_arg = self._arg(self._read_pointer_base("seq_read"))
        x_arg = self._arg(self._read_pointer_base("indir_read"))
        y_arg = self._arg(sol["output.address"].operands[0])

        def handler(args, interpreter, _site=[None]):
            begin, end = int(args[i_begin]), int(args[i_end])
            m = max(0, end - begin)
            site = _site[0]
            rows: Pointer = args[rows_arg]
            row_ptr = rows.view()[begin:end + 1].astype(np.int64)
            nnz = int(row_ptr[-1] - row_ptr[0]) if m else 0
            site.stats["calls"] = site.stats.get("calls", 0) + 1
            site.stats["elements"] = site.stats.get("elements", 0) + nnz
            site.stats["rows"] = site.stats.get("rows", 0) + m
            site.stats["bytes"] = site.stats.get("bytes", 0) + \
                nnz * 20 + m * 12
            if m == 0:
                return None
            col = args[cols_arg].view()
            val = args[vals_arg].view()
            x = args[x_arg].view()
            y = args[y_arg].view()
            y[begin:end] = spmv(row_ptr, col, val, x)
            return None

        site = runtime.new_site(
            "SPMV", "sparse_matrix_op", handler,
            f"csr spmv in @{self.function.name}",
            backend=contract.backend,
            reads=(rows_arg, cols_arg, vals_arg, x_arg),
            writes=(y_arg,))
        handler.__defaults__[0][0] = site
        site.stats["flops_per_element"] = 2
        return site

    # -- GEMM --------------------------------------------------------------------
    def _build_gemm(self, runtime: ApiRuntime) -> ApiCallSite:
        contract = self._contract("matrix_op")
        matmul = contract.kernels["matmul_tt"]
        sol = self.match.solution
        self._check_escapes([])
        for key in ("loop[0].iter_begin", "loop[1].iter_begin",
                    "loop[2].iter_begin"):
            begin = sol[key]
            if not (isinstance(begin, ConstantInt) and begin.value == 0):
                raise TransformError("GEMM loops must start at zero")
        m_arg = self._arg(sol["loop[0].iter_end"])
        n_arg = self._arg(sol["loop[1].iter_end"])
        k_arg = self._arg(sol["loop[2].iter_end"])

        operands = {}
        for name in ("input1", "input2", "output"):
            operands[name] = self._gemm_operand(name)
        alpha = sol.get("dotp.alpha")
        beta = sol.get("dotp.beta")
        alpha_arg = self._arg(alpha) if alpha is not None else None
        beta_arg = self._arg(beta) if beta is not None else None

        def handler(args, interpreter, _site=[None]):
            m, n, k = int(args[m_arg]), int(args[n_arg]), int(args[k_arg])
            site = _site[0]
            site.stats["calls"] = site.stats.get("calls", 0) + 1
            site.stats["elements"] = site.stats.get("elements", 0) + m * n * k
            site.stats["bytes"] = site.stats.get("bytes", 0) + \
                8 * (m * k + n * k + 2 * m * n)
            al = float(args[alpha_arg]) if alpha_arg is not None else 1.0
            be = float(args[beta_arg]) if beta_arg is not None else 0.0
            a_eff = operands["input1"].matrix(args, k)   # [col=m, row=k]
            b_eff = operands["input2"].matrix(args, k)   # [col=n, row=k]
            a2, b2 = a_eff(m), b_eff(n)
            prod = matmul(a2, b2)
            operands["output"].write(args, m, n, al, be, prod)
            return None

        site = runtime.new_site(
            "GEMM", "matrix_op", handler,
            f"gemm in @{self.function.name}",
            backend=contract.backend,
            reads=(operands["input1"].base_arg, operands["input2"].base_arg),
            writes=(operands["output"].base_arg,))
        handler.__defaults__[0][0] = site
        site.stats["flops_per_element"] = 2
        return site

    def _gemm_operand(self, name: str) -> "_GemmOperand":
        sol = self.match.solution
        if f"{name}.flat_idx" in sol:
            base = sol[f"{name}.address"].operands[0]
            base_arg = self._arg(base)
            ld_arg = self._arg(sol[f"{name}.ld"])
            return _GemmOperand("flat", base_arg, ld_arg, None,
                                name == "output")
        # Nested-array form: orientation from which index equals `col`.
        outer_gep = sol[f"{name}.outer_gep"]
        base = outer_gep.operands[0]
        base_arg = self._arg(base)
        pointee = base.type.pointee
        if not isinstance(pointee, ArrayType) or \
                not isinstance(pointee.element, ArrayType):
            # argument of type [C x T]* — a row-major 2-D array parameter
            cols = pointee.count if isinstance(pointee, ArrayType) else None
        else:
            cols = pointee.element.count
        if cols is None:
            raise TransformError(f"{name}: cannot determine 2-D layout")
        # The operand's `col` binding was renamed to the GEMM iterator
        # (Figure 10): iterator[0] for input1/output, iterator[1] for
        # input2. Orientation = whether the first subscript is that value.
        col_key = "iterator[1]" if name == "input2" else "iterator[0]"
        col_binding = sol[col_key]
        first_idx = sol[f"{name}.first_idx"]
        col_first = first_idx is col_binding
        return _GemmOperand("2d", base_arg, None,
                            (cols, col_first), name == "output")

    # -- Stencil ---------------------------------------------------------------------
    def _build_stencil(self, runtime: ApiRuntime) -> ApiCallSite:
        contract = self._contract("stencil")
        evaluate = contract.kernels["evaluate"]
        sol = self.match.solution
        self._check_escapes([])
        dims = {"Stencil1D": 1, "Stencil2D": 2, "Stencil3D": 3}[
            self.match.idiom]
        if dims == 1:
            range_keys = [("iter_begin", "iter_end")]
            inner_key = "body.begin"
        else:
            range_keys = [(f"loop[{d}].iter_begin", f"loop[{d}].iter_end")
                          for d in range(dims)]
            inner_key = f"loop[{dims - 1}].body.begin"
        ranges = [self._range_args(b, e) for b, e in range_keys]

        reads = self.match.family("kernel.input")
        offsets = self.match.stencil_offsets()
        extractor = self._extractor(
            reads, outer_key="begin" if dims == 1 else "loop[0].begin",
            inner_key=inner_key)
        kernel = extractor.extract(sol["kernel.output"])

        write_base = sol["write.address"].operands[0] if dims == 1 else \
            sol[f"write.{'outer_gep' if dims == 2 else 'gep1'}"].operands[0]
        write_arg = self._arg(write_base)
        write_shape = _array_shape(write_base, dims)

        cap_lo = len(self.args)
        for cap in kernel.captures:
            self._arg(cap)
        cap_hi = len(self.args)
        read_info = []
        for i in range(len(reads)):
            if dims == 1:
                base = self.match.solution[f"reads[{i}].address"].operands[0]
            elif dims == 2:
                base = self.match.solution[f"reads[{i}].outer_gep"].operands[0]
            else:
                base = self.match.solution[f"reads[{i}].gep1"].operands[0]
            read_info.append((self._arg(base), offsets[i],
                              _array_shape(base, dims)))

        def handler(args, interpreter, _site=[None]):
            bounds = [(int(args[b]), int(args[e])) for b, e in ranges]
            sizes = [max(0, e - b) for b, e in bounds]
            n = int(np.prod(sizes)) if sizes else 0
            site = _site[0]
            site.stats["calls"] = site.stats.get("calls", 0) + 1
            site.stats["elements"] = site.stats.get("elements", 0) + n
            site.stats["bytes"] = site.stats.get("bytes", 0) + \
                8 * n * (len(read_info) + 1)
            if n == 0:
                return None
            caps = list(args[cap_lo:cap_hi])
            views = []
            for arg_index, offset, shape in read_info:
                arr = _shaped(args[arg_index], shape)
                slices = tuple(
                    slice(b + o, e + o)
                    for (b, e), o in zip(bounds, offset))
                views.append(arr[slices])
            result = evaluate(kernel.expr, views, caps)
            out = _shaped(args[write_arg], write_shape)
            out_slices = tuple(slice(b, e) for b, e in bounds)
            out[out_slices] = result
            return None

        site = runtime.new_site(
            self.match.idiom, "stencil", handler,
            f"{dims}-D stencil in @{self.function.name}",
            backend=contract.backend,
            reads=tuple(info[0] for info in read_info),
            writes=(write_arg,))
        handler.__defaults__[0][0] = site
        site.stats["reads_per_element"] = len(read_info)
        site.stats["flops_per_element"] = _expr_flops(kernel.expr)
        return site


@dataclass
class _GemmOperand:
    form: str  # 'flat' | '2d'
    base_arg: int
    ld_arg: int | None
    layout: tuple | None  # (cols, col_first) for 2d
    is_output: bool

    def matrix(self, args, k: int):
        """Returns fn(extent) -> 2-D array indexed [out_index, contraction]."""
        pointer: Pointer = args[self.base_arg]
        if self.form == "flat":
            ld = int(args[self.ld_arg])

            def eff(extent: int):
                flat = pointer.view(ld * k)
                return np.reshape(flat, (k, ld))[:, :extent].T
            return eff
        cols, col_first = self.layout

        def eff(extent: int):
            arr = _shaped(pointer, (None, cols))
            if col_first:
                return arr[:extent, :k]
            return arr[:k, :extent].T
        return eff

    def write(self, args, m: int, n: int, alpha: float, beta: float,
              prod: np.ndarray) -> None:
        pointer: Pointer = args[self.base_arg]
        if self.form == "flat":
            ld = int(args[self.ld_arg])
            view = np.reshape(pointer.view(ld * n), (n, ld))
            view[:, :m] = beta * view[:, :m] + alpha * prod.T
            return
        cols, col_first = self.layout
        arr = _shaped(pointer, (None, cols))
        if col_first:
            arr[:m, :n] = beta * arr[:m, :n] + alpha * prod
        else:
            arr[:n, :m] = beta * arr[:n, :m] + alpha * prod.T


def _shaped(pointer: Pointer, shape: tuple) -> np.ndarray:
    """Reshape a pointer's underlying data to the given trailing shape."""
    data = pointer.view()
    trailing = [d for d in shape[1:] if d is not None]
    inner = int(np.prod(trailing)) if trailing else 1
    rows = data.size // inner
    return np.reshape(data[:rows * inner], (rows, *trailing))


def _array_shape(base: Value, dims: int) -> tuple:
    """Static array extents of a stencil operand (trailing dims known)."""
    ty = base.type
    if not isinstance(ty, PointerType):
        raise TransformError("stencil base is not a pointer")
    extents: list = []
    current = ty.pointee
    while isinstance(current, ArrayType):
        extents.append(current.count)
        current = current.element
    if dims == 1:
        return (None,)
    if len(extents) < dims:
        raise TransformError("stencil operand has too few dimensions")
    return (None, *extents[-(dims - 1):]) if len(extents) == dims - 1 else \
        (None, *extents[1:dims])


def _expr_flops(expr) -> int:
    from .kernels import KBin, KCall, KCast, KCmp, KSelect

    if isinstance(expr, KBin):
        return 1 + _expr_flops(expr.lhs) + _expr_flops(expr.rhs)
    if isinstance(expr, KCmp):
        return 1 + _expr_flops(expr.lhs) + _expr_flops(expr.rhs)
    if isinstance(expr, KSelect):
        return 1 + sum(_expr_flops(e) for e in
                       (expr.cond, expr.on_true, expr.on_false))
    if isinstance(expr, KCast):
        return _expr_flops(expr.operand)
    if isinstance(expr, KCall):
        return 4 + sum(_expr_flops(a) for a in expr.args)
    return 0
