"""Idiom replacement: kernel extraction, API call generation, C backend."""

from .c_backend import expr_to_c, kernel_to_c
from .kernels import (
    ExtractedKernel,
    KBin,
    KCall,
    KCapture,
    KCast,
    KCmp,
    KConst,
    KParam,
    KSelect,
    KernelExtractor,
    evaluate,
    match_accumulator_form,
)
from .region import Region, make_alias_guard
from .replace import AppliedTransform, RejectedTransform, Transformer

__all__ = [
    "expr_to_c", "kernel_to_c",
    "ExtractedKernel", "KBin", "KCall", "KCapture", "KCast", "KCmp",
    "KConst", "KParam", "KSelect", "KernelExtractor", "evaluate",
    "match_accumulator_form",
    "Region", "make_alias_guard",
    "AppliedTransform", "RejectedTransform", "Transformer",
]
