"""Idiom replacement: kernel extraction, API call generation, C backend."""

from .c_backend import expr_to_c, kernel_to_c
from .kernels import (
    ExtractedKernel,
    KBin,
    KCall,
    KCapture,
    KCast,
    KCmp,
    KConst,
    KParam,
    KSelect,
    KernelExtractor,
    evaluate,
    match_accumulator_form,
)
from .replace import AppliedTransform, Transformer

__all__ = [
    "expr_to_c", "kernel_to_c",
    "ExtractedKernel", "KBin", "KCall", "KCapture", "KCast", "KCmp",
    "KConst", "KParam", "KSelect", "KernelExtractor", "evaluate",
    "match_accumulator_form",
    "AppliedTransform", "Transformer",
]
