"""JSON wire format for whole detection reports and placement requests.

The daemon's line protocol ships reports as pure JSON: matches carry the
scheduler's structural solution tokens (block/instruction indices,
argument positions, global names, constant values) plus an identity-
interned pool of per-match solver stats — the same discipline the
artifact cache and process-mode workers use, lifted from one function to
one report. A client that parses the module text it submitted can
:func:`decode_report` the payload back into a
:class:`~repro.idioms.matches.DetectionReport` whose matches reference
its own IR objects, bit-identical (under the structural fingerprint) to
a local :func:`~repro.idioms.detect_idioms` run — the property the
service benchmark gates on.

Placement requests travel the same way: :func:`encode_plan_request`
flattens a :class:`~repro.platform.placement.PlacementRequest` (sites as
metadata dicts — handlers never cross the wire — events as nested
lists), :func:`decode_plan_request` rebuilds it daemon-side, and
:func:`encode_plan_result` ships one tenant's slice of the joint plan:
its ``API@device`` assignment, its completion under contention, and the
batch-level totals so the client can see who it shared the machine with.
"""

from __future__ import annotations

import hashlib
import json

from ..backends.api import ApiCallSite
from ..errors import IDLError, InjectedFault, ReproError
from ..idl.solver import SolverStats
from ..idioms.matches import DetectionReport, IdiomMatch
from ..idioms.scheduler import decode_solution, encode_solution
from ..ir.module import Module
from ..platform.placement import PlacementRequest
from .core import (
    DeadlineExpired,
    PlanResult,
    ServiceDraining,
    ServiceError,
    ServiceOverloaded,
)

#: Bump on any report payload schema change.
WIRE_VERSION = 1

#: Every ``kind`` an error response may carry. ``overloaded`` and
#: ``draining`` are retryable (honour ``retry_after_s``); ``deadline``
#: and ``bad-request`` are the caller's to fix; ``internal`` is fatal.
ERROR_KINDS = ("overloaded", "draining", "deadline", "bad-request",
               "internal")


def encode_error(exc: BaseException) -> dict:
    """One failed request as a structured error response.

    Clients discriminate on ``kind`` instead of string-matching
    ``error``: typed :class:`~repro.service.core.ServiceError` failures
    keep their own kind (plus ``retry_after_s`` when the service set
    one); other :class:`~repro.errors.ReproError` subclasses and
    payload-shape errors are the caller's fault (``bad-request``);
    everything else — including injected faults — is ``internal``."""
    response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    if isinstance(exc, ServiceError):
        response["kind"] = exc.kind
        if exc.retry_after_s is not None:
            response["retry_after_s"] = round(float(exc.retry_after_s), 4)
    elif isinstance(exc, InjectedFault):
        response["kind"] = "internal"
    elif isinstance(exc, (ReproError, ValueError, KeyError, TypeError)):
        response["kind"] = "bad-request"
    else:
        response["kind"] = "internal"
    return response


def error_from_response(response: dict) -> IDLError:
    """The client-side inverse of :func:`encode_error`: rebuild the
    typed exception a daemon error response stands for."""
    kind = response.get("kind", "internal")
    message = str(response.get("error", "unknown daemon error"))
    retry_after = response.get("retry_after_s")
    if kind == "overloaded":
        return ServiceOverloaded(f"daemon overloaded: {message}",
                                 retry_after_s=retry_after)
    if kind == "draining":
        return ServiceDraining(f"daemon draining: {message}",
                               retry_after_s=retry_after)
    if kind == "deadline":
        return DeadlineExpired(f"daemon: {message}")
    return IDLError(f"daemon error ({kind}): {message}")


def _stats_from(payload_stats: dict, max_steps) -> SolverStats:
    return SolverStats(max_steps=int(max_steps),
                       **{k: int(v) for k, v in payload_stats.items()})


def encode_report(report: DetectionReport) -> dict:
    """One report as a JSON-safe dict.

    Per-match stats are pooled by object identity (forest-mode matches
    of one function share one stats object; the round trip preserves
    the sharing). Raises :class:`~repro.errors.IDLError` if a solution
    binds a value the wire format cannot express."""
    pool: list = []
    pool_index: dict[int, int] = {}
    matches = []
    for m in report.matches:
        index = None
        if m.stats is not None:
            index = pool_index.get(id(m.stats))
            if index is None:
                index = pool_index[id(m.stats)] = len(pool)
                pool.append((m.stats.as_dict(), m.stats.max_steps))
        matches.append((m.idiom, m.function.name,
                        encode_solution(m.solution, m.function), index))
    return {
        "wire_version": WIRE_VERSION,
        "module": report.module_name,
        "matches": matches,
        "stats_pool": pool,
        "stats": report.stats.as_dict(),
        "max_steps": report.stats.max_steps,
        "total": report.total(),
        "by_category": report.by_category(),
        "outcomes": report.outcomes.as_dict()
        if report.outcomes is not None else None,
    }


def report_wire_fingerprint(report: DetectionReport) -> str:
    """Structural identity that survives re-parsing.

    :func:`~repro.idioms.report_fingerprint` keys non-constant values by
    object identity, which is exact within one parsed module but useless
    across two parses of the same text (a daemon client vs a local run).
    This digest keys every binding by its wire token — block/instruction
    index, argument position, global name, constant value — so two
    reports over *any* parses of the same module fingerprint equal iff
    they contain the same matches with the same bindings. Per-match
    bindings are sorted; match order is preserved."""
    blob = [(m.idiom, m.function.name,
             sorted(encode_solution(m.solution, m.function)))
            for m in report.matches]
    return hashlib.sha256(
        json.dumps(blob, sort_keys=True).encode("utf-8")).hexdigest()


def decode_report(payload: dict, module: Module) -> DetectionReport:
    """Rebind an :func:`encode_report` payload against the caller's
    parse of the module it was computed for. Raises on a mis-shaped
    payload or a module that does not contain the referenced IR."""
    report = DetectionReport(str(payload["module"]))
    report.stats = _stats_from(payload["stats"], payload["max_steps"])
    pool = [_stats_from(blob, max_steps)
            for blob, max_steps in payload["stats_pool"]]
    for idiom, fname, encoded, index in payload["matches"]:
        function = module.functions[fname]
        report.matches.append(
            IdiomMatch(str(idiom), function,
                       decode_solution(encoded, function, module),
                       stats=None if index is None else pool[index]))
    return report


# ---------------------------------------------------------------------------
# Placement requests and joint-plan results
# ---------------------------------------------------------------------------

def encode_plan_request(request: PlacementRequest) -> dict:
    """One placement request as a JSON-safe dict.

    Sites ship as cost-model metadata only — the handler callable stays
    on the client; the daemon's planner never executes sites, it only
    costs them."""
    return {
        "sites": [
            {
                "call_id": s.call_id,
                "idiom": s.idiom,
                "category": s.category,
                "stats": dict(s.stats),
                "backend": s.backend,
                "reads": list(s.reads),
                "writes": list(s.writes),
            }
            for s in request.call_sites()
        ],
        "events": [
            [call_id, [[key, nbytes, mode]
                       for key, nbytes, mode in accesses]]
            for call_id, accesses in request.events
        ],
        "host_seconds": request.host_seconds,
        "scale": request.scale,
        "greedy_lazy": bool(request.greedy_lazy),
        "label": request.label,
    }


def decode_plan_request(payload: dict) -> PlacementRequest:
    """The daemon-side inverse of :func:`encode_plan_request`. Raises
    :class:`~repro.errors.IDLError` on a mis-shaped payload (reported to
    the client as ``bad-request``)."""
    try:
        sites = [
            ApiCallSite(int(s["call_id"]), str(s["idiom"]),
                        str(s["category"]), None,
                        stats=dict(s.get("stats", {})),
                        backend=str(s.get("backend", "")),
                        reads=tuple(s.get("reads", ())),
                        writes=tuple(s.get("writes", ())))
            for s in payload["sites"]
        ]
        events = [
            (int(call_id), tuple((key, float(nbytes), str(mode))
                                 for key, nbytes, mode in accesses))
            for call_id, accesses in payload.get("events", [])
        ]
        return PlacementRequest(
            sites, events,
            host_seconds=float(payload.get("host_seconds", 0.0)),
            scale=float(payload.get("scale", 1.0)),
            greedy_lazy=bool(payload.get("greedy_lazy", True)),
            label=str(payload.get("label", "")))
    except (KeyError, TypeError, ValueError) as exc:
        raise IDLError(f"malformed placement request: {exc}") from exc


def encode_plan_result(result: PlanResult) -> dict:
    """One tenant's slice of a joint plan as a JSON-safe dict: its own
    ``API@device`` assignment and completion, plus the batch totals."""
    plan = result.plan
    i = result.index
    return {
        "assignment": {str(cid): p.describe()
                       for cid, p in sorted(plan.assignments[i].items())},
        "locations": {str(cid): loc
                      for cid, loc in sorted(plan.locations(i).items())},
        "completion_ms": plan.completions[i] * 1e3,
        "wait_ms": plan.wait_s[i] * 1e3,
        "batch": {
            "strategy": plan.strategy,
            "requests": len(plan.requests),
            "sum_completion_ms": plan.sum_completion_s * 1e3,
            "makespan_ms": plan.makespan_s * 1e3,
        },
    }
