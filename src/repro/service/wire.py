"""JSON wire format for whole detection reports.

The daemon's line protocol ships reports as pure JSON: matches carry the
scheduler's structural solution tokens (block/instruction indices,
argument positions, global names, constant values) plus an identity-
interned pool of per-match solver stats — the same discipline the
artifact cache and process-mode workers use, lifted from one function to
one report. A client that parses the module text it submitted can
:func:`decode_report` the payload back into a
:class:`~repro.idioms.matches.DetectionReport` whose matches reference
its own IR objects, bit-identical (under the structural fingerprint) to
a local :func:`~repro.idioms.detect_idioms` run — the property the
service benchmark gates on.
"""

from __future__ import annotations

import hashlib
import json

from ..errors import IDLError, InjectedFault, ReproError
from ..idl.solver import SolverStats
from ..idioms.matches import DetectionReport, IdiomMatch
from ..idioms.scheduler import decode_solution, encode_solution
from ..ir.module import Module
from .core import (
    DeadlineExpired,
    ServiceDraining,
    ServiceError,
    ServiceOverloaded,
)

#: Bump on any report payload schema change.
WIRE_VERSION = 1

#: Every ``kind`` an error response may carry. ``overloaded`` and
#: ``draining`` are retryable (honour ``retry_after_s``); ``deadline``
#: and ``bad-request`` are the caller's to fix; ``internal`` is fatal.
ERROR_KINDS = ("overloaded", "draining", "deadline", "bad-request",
               "internal")


def encode_error(exc: BaseException) -> dict:
    """One failed request as a structured error response.

    Clients discriminate on ``kind`` instead of string-matching
    ``error``: typed :class:`~repro.service.core.ServiceError` failures
    keep their own kind (plus ``retry_after_s`` when the service set
    one); other :class:`~repro.errors.ReproError` subclasses and
    payload-shape errors are the caller's fault (``bad-request``);
    everything else — including injected faults — is ``internal``."""
    response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    if isinstance(exc, ServiceError):
        response["kind"] = exc.kind
        if exc.retry_after_s is not None:
            response["retry_after_s"] = round(float(exc.retry_after_s), 4)
    elif isinstance(exc, InjectedFault):
        response["kind"] = "internal"
    elif isinstance(exc, (ReproError, ValueError, KeyError, TypeError)):
        response["kind"] = "bad-request"
    else:
        response["kind"] = "internal"
    return response


def error_from_response(response: dict) -> IDLError:
    """The client-side inverse of :func:`encode_error`: rebuild the
    typed exception a daemon error response stands for."""
    kind = response.get("kind", "internal")
    message = str(response.get("error", "unknown daemon error"))
    retry_after = response.get("retry_after_s")
    if kind == "overloaded":
        return ServiceOverloaded(f"daemon overloaded: {message}",
                                 retry_after_s=retry_after)
    if kind == "draining":
        return ServiceDraining(f"daemon draining: {message}",
                               retry_after_s=retry_after)
    if kind == "deadline":
        return DeadlineExpired(f"daemon: {message}")
    return IDLError(f"daemon error ({kind}): {message}")


def _stats_from(payload_stats: dict, max_steps) -> SolverStats:
    return SolverStats(max_steps=int(max_steps),
                       **{k: int(v) for k, v in payload_stats.items()})


def encode_report(report: DetectionReport) -> dict:
    """One report as a JSON-safe dict.

    Per-match stats are pooled by object identity (forest-mode matches
    of one function share one stats object; the round trip preserves
    the sharing). Raises :class:`~repro.errors.IDLError` if a solution
    binds a value the wire format cannot express."""
    pool: list = []
    pool_index: dict[int, int] = {}
    matches = []
    for m in report.matches:
        index = None
        if m.stats is not None:
            index = pool_index.get(id(m.stats))
            if index is None:
                index = pool_index[id(m.stats)] = len(pool)
                pool.append((m.stats.as_dict(), m.stats.max_steps))
        matches.append((m.idiom, m.function.name,
                        encode_solution(m.solution, m.function), index))
    return {
        "wire_version": WIRE_VERSION,
        "module": report.module_name,
        "matches": matches,
        "stats_pool": pool,
        "stats": report.stats.as_dict(),
        "max_steps": report.stats.max_steps,
        "total": report.total(),
        "by_category": report.by_category(),
        "outcomes": report.outcomes.as_dict()
        if report.outcomes is not None else None,
    }


def report_wire_fingerprint(report: DetectionReport) -> str:
    """Structural identity that survives re-parsing.

    :func:`~repro.idioms.report_fingerprint` keys non-constant values by
    object identity, which is exact within one parsed module but useless
    across two parses of the same text (a daemon client vs a local run).
    This digest keys every binding by its wire token — block/instruction
    index, argument position, global name, constant value — so two
    reports over *any* parses of the same module fingerprint equal iff
    they contain the same matches with the same bindings. Per-match
    bindings are sorted; match order is preserved."""
    blob = [(m.idiom, m.function.name,
             sorted(encode_solution(m.solution, m.function)))
            for m in report.matches]
    return hashlib.sha256(
        json.dumps(blob, sort_keys=True).encode("utf-8")).hexdigest()


def decode_report(payload: dict, module: Module) -> DetectionReport:
    """Rebind an :func:`encode_report` payload against the caller's
    parse of the module it was computed for. Raises on a mis-shaped
    payload or a module that does not contain the referenced IR."""
    report = DetectionReport(str(payload["module"]))
    report.stats = _stats_from(payload["stats"], payload["max_steps"])
    pool = [_stats_from(blob, max_steps)
            for blob, max_steps in payload["stats_pool"]]
    for idiom, fname, encoded, index in payload["matches"]:
        function = module.functions[fname]
        report.matches.append(
            IdiomMatch(str(idiom), function,
                       decode_solution(encoded, function, module),
                       stats=None if index is None else pool[index]))
    return report
