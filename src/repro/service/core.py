"""Detection-as-a-service: the resident, multi-tenant in-process core.

:class:`DetectionService` keeps everything expensive resident across
requests — the warmed :class:`~repro.idioms.IdiomDetector` (compiled
idiom forest, lowered plans), a shared :class:`~repro.cache.ArtifactStore`
under an LRU byte budget, a parse cache mapping IR-text digests to
shared :class:`~repro.ir.module.Module` objects, and an
:class:`~repro.idioms.InflightLedger` for cross-batch in-flight dedupe —
then serves concurrent :meth:`submit` calls from many tenants.

Requests arriving within ``batch_window_s`` of each other are
micro-batched: a batcher thread drains the queues into one
:meth:`~repro.idioms.scheduler.DetectionSession.detect_many` fan-out per
batch, so ten tenants editing the same popular library produce one solve
plus nine structural replays rather than ten solves. Dispatcher threads
run batches concurrently, so one slow batch never blocks the window for
the next.

The service is built to survive overload and partial failure, not just
to go fast when healthy:

* **Admission control** — the pending queue is bounded
  (``max_pending``) with per-tenant quotas (``tenant_quota``); a full
  queue or an over-quota tenant gets a typed :class:`ServiceOverloaded`
  carrying a ``retry_after_s`` estimate instead of unbounded queueing.
  The batcher only forms a new batch when a dispatcher slot is free, so
  backpressure is real: work waits in the quota-governed tenant queues,
  never in a hidden unbounded executor queue.
* **Per-tenant fairness** — batches are drained by weighted round-robin
  over the tenant queues (each pass grants every waiting tenant up to
  its weight in slots), so a tenant submitting 100 modules cannot
  monopolise ``max_batch``. Per-tenant depth, admits, sheds and p95
  latency appear in :meth:`stats`.
* **Deadline propagation** — :meth:`submit` accepts ``deadline_s``
  (remaining wall-clock budget). Already-expired work is rejected at
  admission with :class:`DeadlineExpired`; work that expires while
  queued fails the same way when its batch starts; the tightest
  remaining budget in a batch is threaded into the PR-7
  :class:`~repro.reliability.supervisor.RetryPolicy` per-function
  deadline (:meth:`~repro.reliability.supervisor.RetryPolicy.tightened`),
  so a slow solve degrades to a ``timed-out-partial`` outcome instead
  of hanging a handler thread.
* **Lifecycle** — ``starting → ready → draining → stopped``.
  :meth:`drain` stops admission (new submits get a typed
  :class:`ServiceDraining`) while in-flight and queued batches complete;
  :meth:`health` is the cheap state/queue-depth probe the daemon's
  ``health`` op returns.

Beyond detection, the service also serves **placement**:
:meth:`submit_plan` enqueues a tenant's offload-placement problem (a
:class:`~repro.platform.placement.PlacementRequest`) through the same
admission/fairness/deadline path, and every placement request that lands
in one micro-batch is placed **jointly** by
:func:`~repro.platform.placement.plan_concurrent` under the service's
calibration profile — the batch window is the contention domain, so
co-arriving tenants share the simulated accelerators instead of each
assuming an idle machine.

Fault seams (:mod:`repro.reliability.faults`): ``service.admit`` fires
per submission attempt (key: tenant), ``service.batch`` per formed batch
(key: batch size) — both drive the ``bench_service_faults`` chaos
matrix.

The daemon (:mod:`.daemon`) is a thin socket skin over this class; tests
and the benchmarks drive it directly with no networking.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..cache import EVICTION_POLICIES, ArtifactStore
from ..errors import IDLError
from ..idioms import IdiomDetector, InflightLedger
from ..idioms.matches import DetectionReport
from ..idioms.scheduler import DetectionSession
from ..ir.module import Module
from ..ir.parser import parse_module
from ..experiments.timing import percentile, summarize_latencies
from ..platform.placement import ConcurrentPlan, plan_concurrent
from ..reliability import faults


class ServiceError(IDLError):
    """Base of the typed serving-layer failures.

    ``kind`` is the wire discriminator the daemon ships in error
    responses so clients can tell retryable conditions (overloaded,
    draining) from caller errors (deadline, bad request) without
    string-matching; ``retry_after_s``, when set, is the service's
    estimate of when capacity returns."""

    kind = "internal"

    def __init__(self, message: str, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceOverloaded(ServiceError):
    """Admission shed the request: pending queue full or tenant over
    quota. Retry after ``retry_after_s``."""

    kind = "overloaded"


class ServiceDraining(ServiceError):
    """The service no longer admits work (draining or stopped); finish
    or reconnect elsewhere (e.g. the restarted daemon)."""

    kind = "draining"


class DeadlineExpired(ServiceError):
    """The request's wall-clock budget lapsed before (or while) it could
    be served. Not retryable — the caller's deadline has passed."""

    kind = "deadline"


@dataclass
class ServiceConfig:
    """Every knob of a resident detection service, in one place.

    ``workers``/``mode``/``deadline_s``/``max_retries`` configure each
    batch's :class:`~repro.idioms.scheduler.DetectionSession`;
    ``ordering`` the resident detector; ``cache_dir``/``budget_bytes``/
    ``eviction``/``durable`` the shared artifact store;
    ``batch_window_s``/``max_batch``/``dispatchers`` the micro-batcher;
    ``max_pending``/``tenant_quota``/``tenant_weights`` admission and
    fairness.
    """

    workers: int = 1
    mode: str = "thread"
    ordering: str = "forest"
    cache_dir: str | None = None
    budget_bytes: int | None = None
    eviction: str = "lru"
    durable: bool = False
    #: How long the batcher waits for co-travellers after the first
    #: request of a batch arrives. A couple of milliseconds is enough to
    #: capture concurrent tenants without a visible latency tax.
    batch_window_s: float = 0.002
    max_batch: int = 32
    #: Concurrent batch executors. Two keeps the window responsive while
    #: a large batch is still solving.
    dispatchers: int = 2
    deadline_s: float | None = None
    max_retries: int = 2
    #: Distinct module texts kept parsed in memory (LRU).
    parse_cache_entries: int = 64
    #: Most recent per-request latencies retained for the stats endpoint.
    latency_window: int = 2048
    #: Admission bound across all tenants: submits past it shed with a
    #: typed :class:`ServiceOverloaded` instead of queueing unboundedly.
    max_pending: int = 1024
    #: Per-tenant pending bound; ``None`` derives ``max_pending // 4``
    #: so one flooding tenant can never fill the whole queue.
    tenant_quota: int | None = None
    #: Round-robin weights (slots granted per drain pass) for known
    #: tenants; everyone else gets ``default_weight``.
    tenant_weights: dict = field(default_factory=dict)
    default_weight: int = 1
    #: Calibration profile
    #: (:class:`~repro.platform.calibrate.CalibrationProfile`) used to
    #: cost joint placement batches; None keeps the static constants.
    profile: object | None = None

    def __post_init__(self):
        if self.mode not in ("thread", "process"):
            raise IDLError(f"unknown detection mode {self.mode!r}")
        if self.eviction not in EVICTION_POLICIES:
            raise IDLError(f"unknown eviction policy {self.eviction!r}")
        if self.max_batch < 1:
            raise IDLError("max_batch must be >= 1")
        if self.dispatchers < 1:
            raise IDLError("dispatchers must be >= 1")
        if self.max_pending < 1:
            raise IDLError("max_pending must be >= 1")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise IDLError("tenant_quota must be >= 1 (or None)")
        if self.default_weight < 1 or any(
                w < 1 for w in self.tenant_weights.values()):
            raise IDLError("tenant weights must be >= 1")

    @property
    def effective_tenant_quota(self) -> int:
        if self.tenant_quota is not None:
            return min(self.tenant_quota, self.max_pending)
        return max(1, self.max_pending // 4)


@dataclass
class ServiceResult:
    """One request's answer: the report, the (shared) parsed module it
    references, which tenant asked, and the request's wall-clock from
    submit to report (queueing + batching window included)."""

    report: DetectionReport
    module: Module
    tenant: str
    latency_s: float


@dataclass
class PlanResult:
    """One placement request's answer: the **joint** plan over every
    placement request co-batched with it, plus this tenant's index into
    that plan. Two tenants whose requests shared a batch see the same
    ``plan`` object with different indices."""

    plan: ConcurrentPlan
    index: int
    tenant: str
    latency_s: float

    @property
    def assignment(self) -> dict:
        """call_id -> SitePlacement for this tenant's request."""
        return self.plan.assignments[self.index]

    @property
    def completion_s(self) -> float:
        return self.plan.completions[self.index]

    def locations(self) -> dict:
        """call_id -> location, the runtime tracker's input."""
        return self.plan.locations(self.index)


class _Request:
    __slots__ = ("module", "tenant", "future", "t_submit", "deadline_at",
                 "kind", "payload")

    def __init__(self, module, tenant, deadline_s=None, kind="detect",
                 payload=None):
        self.module = module
        self.tenant = tenant
        self.future: Future = Future()
        self.t_submit = time.perf_counter()
        #: Absolute monotonic expiry, set at admission from the remaining
        #: budget the client sent.
        self.deadline_at = (None if deadline_s is None
                            else time.monotonic() + deadline_s)
        #: "detect" (module solve) or "plan" (joint placement); plan
        #: requests carry their PlacementRequest in ``payload``.
        self.kind = kind
        self.payload = payload


class _TenantState:
    """One tenant's queue plus its fairness/telemetry counters, all
    guarded by the service lock."""

    __slots__ = ("queue", "weight", "admits", "sheds", "expired",
                 "completed", "latencies")

    def __init__(self, weight: int, latency_window: int = 512):
        self.queue: deque[_Request] = deque()
        self.weight = weight
        self.admits = 0
        self.sheds = 0
        self.expired = 0
        self.completed = 0
        self.latencies: deque[float] = deque(maxlen=latency_window)

    def as_dict(self) -> dict:
        return {
            "pending": len(self.queue),
            "weight": self.weight,
            "admits": self.admits,
            "sheds": self.sheds,
            "expired": self.expired,
            "completed": self.completed,
            "p95_latency_s": round(percentile(self.latencies, 95), 6),
        }


class DetectionService:
    """The resident multi-tenant detection facade (see module docstring).

    Thread-safe; :meth:`submit` may be called from any number of tenant
    threads. Use as a context manager or call :meth:`close`."""

    def __init__(self, config: ServiceConfig | None = None,
                 store: ArtifactStore | None = None):
        self.config = config or ServiceConfig()
        if store is None and self.config.cache_dir is not None:
            store = ArtifactStore(self.config.cache_dir,
                                  durable=self.config.durable,
                                  budget_bytes=self.config.budget_bytes,
                                  eviction=self.config.eviction)
        self.store = store
        self.detector = IdiomDetector(ordering=self.config.ordering,
                                      cache=store)
        self.ledger = InflightLedger()
        self.warmup_s = 0.0
        #: One lock guards every counter, the tenant queues and the parse
        #: cache; the batcher's condition shares it, so a stats snapshot
        #: can never observe a torn (mid-batch) counter update.
        self._lock = threading.Lock()
        self._queue_cond = threading.Condition(self._lock)
        self._tenants: dict[str, _TenantState] = {}
        self._tenant_order: list[str] = []
        self._rr_next = 0
        self._pending = 0
        self._inflight = 0
        self._parse_cache: OrderedDict[str, Module] = OrderedDict()
        self._latencies = deque(maxlen=self.config.latency_window)
        self._batcher: threading.Thread | None = None
        self._dispatchers: ThreadPoolExecutor | None = None
        self._started = False
        self._draining = False
        self._closed = False
        self._t_start = time.monotonic()
        #: EWMA of per-request batch service time, feeding retry_after
        #: estimates (under self._lock).
        self._ewma_request_s: float | None = None
        # Aggregate counters (under self._lock).
        self._requests = 0
        self._batches = 0
        self._sheds = 0
        self._expired = 0
        self._module_dedupe_hits = 0
        self._functions_requested = 0
        self._store_hits = 0
        self._solved_functions = 0
        self._batch_dedupe_hits = 0
        self._inflight_hits = 0
        self._errors = 0
        self._parse_hits = 0
        self._parse_misses = 0
        self._plan_requests = 0
        self._plan_batches = 0

    # -- lifecycle ----------------------------------------------------------------
    @property
    def state(self) -> str:
        """``starting`` | ``ready`` | ``draining`` | ``stopped``."""
        if self._closed:
            return "stopped"
        if self._draining:
            return "draining"
        if self._started:
            return "ready"
        return "starting"

    def start(self) -> "DetectionService":
        """Warm the detector (compile the idiom forest) and start the
        batcher/dispatcher threads. Idempotent; :meth:`submit` calls it
        on first use, but a daemon should call it eagerly so the first
        request pays no compile cost."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise ServiceDraining("service is closed")
            self._started = True
        t0 = time.perf_counter()
        self.detector.warmup()
        self.warmup_s = time.perf_counter() - t0
        self._dispatchers = ThreadPoolExecutor(
            max_workers=self.config.dispatchers,
            thread_name_prefix="repro-service")
        self._batcher = threading.Thread(target=self._batch_loop,
                                         name="repro-service-batcher",
                                         daemon=True)
        self._batcher.start()
        return self

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting work and wait for queued + in-flight batches.

        New submits fail with :class:`ServiceDraining` from the moment
        this is called; queued and in-flight requests complete normally.
        Returns True once the service is empty, False if ``timeout``
        lapsed first (draining stays in effect either way)."""
        with self._queue_cond:
            self._draining = True
            self._queue_cond.notify_all()
            if not self._started or self._closed:
                return True
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            while self._pending or self._inflight:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._queue_cond.wait(timeout=remaining)
            return True

    def close(self):
        """Drain queued requests, stop the threads, release the pools.
        Idempotent. Requests submitted after close are refused."""
        with self._queue_cond:
            if self._closed:
                return
            self._draining = True
            self._closed = True
            self._queue_cond.notify_all()
        if self._batcher is not None:
            self._batcher.join(timeout=60.0)
        if self._dispatchers is not None:
            self._dispatchers.shutdown(wait=True)

    def __enter__(self) -> "DetectionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API ---------------------------------------------------------------
    def submit(self, source, tenant: str = "default",
               deadline_s: float | None = None) -> Future:
        """Enqueue one detection request; returns a future resolving to
        a :class:`ServiceResult`. ``source`` is module IR text (parsed
        once per distinct text, shared across tenants) or an
        already-parsed :class:`~repro.ir.module.Module`. ``deadline_s``
        is the request's remaining wall-clock budget: expired work is
        rejected here (:class:`DeadlineExpired`), queued work that
        outlives it fails the same way, and the surviving budget bounds
        the solve itself."""
        if not self._started:
            self.start()
        tenant = str(tenant)
        if deadline_s is not None and deadline_s <= 0:
            raise DeadlineExpired(
                f"request from tenant {tenant!r} arrived with an "
                f"already-expired deadline ({deadline_s:.4g}s)")
        # Shed before parsing: an over-capacity service must refuse work
        # without paying parse cost for it.
        with self._lock:
            self._check_admission_locked(tenant)
        module = self._resolve_module(source)
        faults.maybe_fire("service.admit", tenant)
        request = _Request(module, tenant, deadline_s)
        with self._queue_cond:
            # Re-check: capacity may have filled while we parsed.
            self._check_admission_locked(tenant)
            state = self._tenant_locked(tenant)
            self._requests += 1
            state.admits += 1
            state.queue.append(request)
            self._pending += 1
            self._queue_cond.notify_all()
        return request.future

    def detect(self, source, tenant: str = "default",
               timeout: float | None = None,
               deadline_s: float | None = None) -> ServiceResult:
        """Synchronous convenience: submit and wait."""
        return self.submit(source, tenant=tenant,
                           deadline_s=deadline_s).result(timeout=timeout)

    def submit_plan(self, request, tenant: str = "default",
                    deadline_s: float | None = None) -> Future:
        """Enqueue one offload-placement request
        (:class:`~repro.platform.placement.PlacementRequest`); returns a
        future resolving to a :class:`PlanResult`.

        Placement requests ride the same admission control, per-tenant
        fairness and deadline propagation as detection. Every placement
        request drained into one micro-batch is placed **jointly** —
        the batch window is the contention domain — so concurrent
        tenants are costed against shared accelerators and links rather
        than each assuming the machine to itself."""
        if not self._started:
            self.start()
        tenant = str(tenant)
        if deadline_s is not None and deadline_s <= 0:
            raise DeadlineExpired(
                f"placement request from tenant {tenant!r} arrived with "
                f"an already-expired deadline ({deadline_s:.4g}s)")
        faults.maybe_fire("service.admit", tenant)
        pending = _Request(None, tenant, deadline_s, kind="plan",
                           payload=request)
        with self._queue_cond:
            self._check_admission_locked(tenant)
            state = self._tenant_locked(tenant)
            self._requests += 1
            state.admits += 1
            state.queue.append(pending)
            self._pending += 1
            self._queue_cond.notify_all()
        return pending.future

    def plan(self, request, tenant: str = "default",
             timeout: float | None = None,
             deadline_s: float | None = None) -> PlanResult:
        """Synchronous convenience: submit a placement request and wait."""
        return self.submit_plan(request, tenant=tenant,
                                deadline_s=deadline_s).result(
                                    timeout=timeout)

    def health(self) -> dict:
        """The cheap liveness/lifecycle probe: state, queue depths,
        admission bounds. The daemon's ``health`` op returns this."""
        with self._lock:
            return {
                "state": self.state,
                "pending": self._pending,
                "inflight_batches": self._inflight,
                "max_pending": self.config.max_pending,
                "tenant_quota": self.config.effective_tenant_quota,
                "tenants": {name: len(state.queue)
                            for name, state in self._tenants.items()},
            }

    def stats(self) -> dict:
        """The service's counters, latency summary and store telemetry —
        the daemon's ``stats`` op returns exactly this. Every counter is
        read under the batcher's own lock, so the snapshot is coherent
        even mid-batch."""
        with self._lock:
            served = (self._store_hits + self._batch_dedupe_hits +
                      self._inflight_hits + self._module_dedupe_hits)
            total = self._functions_requested
            payload = {
                "uptime_s": time.monotonic() - self._t_start,
                "warmup_s": self.warmup_s,
                "state": self.state,
                "requests": self._requests,
                "batches": self._batches,
                "errors": self._errors,
                "sheds": self._sheds,
                "expired": self._expired,
                "pending": self._pending,
                "inflight_batches": self._inflight,
                "max_pending": self.config.max_pending,
                "tenant_quota": self.config.effective_tenant_quota,
                "functions_requested": total,
                "solved_functions": self._solved_functions,
                "store_hits": self._store_hits,
                "batch_dedupe_hits": self._batch_dedupe_hits,
                "inflight_hits": self._inflight_hits,
                "module_dedupe_hits": self._module_dedupe_hits,
                "dedupe_ratio": served / total if total else 0.0,
                "plan_requests": self._plan_requests,
                "plan_batches": self._plan_batches,
                "parse_cache": {"hits": self._parse_hits,
                                "misses": self._parse_misses,
                                "entries": len(self._parse_cache)},
                "latency": summarize_latencies(self._latencies),
                "tenants": {name: state.as_dict()
                            for name, state in self._tenants.items()},
            }
        if self.store is not None:
            payload["store"] = dict(self.store.stats.as_dict(),
                                    total_bytes=self.store.total_bytes(),
                                    budget_bytes=self.store.budget_bytes,
                                    eviction=self.store.eviction)
        return payload

    # -- admission ----------------------------------------------------------------
    def _tenant_locked(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            weight = self.config.tenant_weights.get(
                tenant, self.config.default_weight)
            state = self._tenants[tenant] = _TenantState(weight)
            self._tenant_order.append(tenant)
        return state

    def _check_admission_locked(self, tenant: str) -> None:
        """Raise the typed admission failure for this submit, if any."""
        if self._closed or self._draining:
            raise ServiceDraining(
                f"service is {'closed' if self._closed else 'draining'}; "
                f"not admitting new work",
                retry_after_s=self._retry_after_locked())
        if self._pending >= self.config.max_pending:
            self._sheds += 1
            self._tenant_locked(tenant).sheds += 1
            raise ServiceOverloaded(
                f"pending queue full "
                f"({self._pending}/{self.config.max_pending})",
                retry_after_s=self._retry_after_locked())
        state = self._tenant_locked(tenant)
        quota = self.config.effective_tenant_quota
        if len(state.queue) >= quota:
            self._sheds += 1
            state.sheds += 1
            raise ServiceOverloaded(
                f"tenant {tenant!r} over quota "
                f"({len(state.queue)}/{quota} pending)",
                retry_after_s=self._retry_after_locked())

    def _retry_after_locked(self) -> float:
        """When to come back: roughly one dispatch wave of the current
        backlog at the recently observed per-request service rate."""
        per = self._ewma_request_s
        if per is None:
            per = max(self.config.batch_window_s, 0.002) * 2
        wave = self.config.max_batch * self.config.dispatchers
        waves = 1 + self._pending // max(1, wave)
        return round(min(5.0, max(0.01, per * waves)), 4)

    # -- internals ----------------------------------------------------------------
    def _resolve_module(self, source) -> Module:
        if isinstance(source, Module):
            return source
        if not isinstance(source, str):
            raise IDLError(
                f"submit() takes IR text or a Module, "
                f"got {type(source).__name__}")
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        with self._lock:
            module = self._parse_cache.get(digest)
            if module is not None:
                self._parse_cache.move_to_end(digest)
                self._parse_hits += 1
                return module
            self._parse_misses += 1
        # Parse outside the lock (two threads may race to parse the same
        # new text; the loser's parse is discarded — harmless, and it
        # keeps parse time off the submit critical section).
        module = parse_module(source, name=f"m-{digest[:12]}")
        with self._lock:
            module = self._parse_cache.setdefault(digest, module)
            self._parse_cache.move_to_end(digest)
            while len(self._parse_cache) > self.config.parse_cache_entries:
                self._parse_cache.popitem(last=False)
        return module

    def _next_batch_locked(self, limit: int) -> list[_Request]:
        """Weighted round-robin drain across the tenant queues.

        Each pass grants every tenant with pending work up to ``weight``
        slots; passes repeat until the batch fills or the queues empty.
        The pass origin rotates per batch, so no tenant is structurally
        first. A flooding tenant therefore gets at most its weighted
        share of every batch while anyone else is waiting."""
        batch: list[_Request] = []
        order = self._tenant_order
        if not order:
            return batch
        start = self._rr_next % len(order)
        while len(batch) < limit:
            progressed = False
            for k in range(len(order)):
                state = self._tenants[order[(start + k) % len(order)]]
                quantum = state.weight
                while quantum and state.queue and len(batch) < limit:
                    batch.append(state.queue.popleft())
                    self._pending -= 1
                    quantum -= 1
                    progressed = True
            if not progressed:
                break
        self._rr_next = (start + 1) % len(order)
        return batch

    def _batch_loop(self):
        config = self.config
        while True:
            with self._queue_cond:
                while True:
                    if not self._pending and self._closed:
                        return
                    # Backpressure: only form a batch when a dispatcher
                    # can take it, so excess load waits in the bounded
                    # tenant queues where admission control sees it.
                    if self._pending and self._inflight < config.dispatchers:
                        break
                    self._queue_cond.wait()
                # Micro-batch window: the first request opens it; wait
                # for co-travellers until it lapses or the batch fills.
                deadline = time.monotonic() + config.batch_window_s
                while self._pending < config.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._closed:
                        break
                    self._queue_cond.wait(timeout=remaining)
                batch = self._next_batch_locked(config.max_batch)
                self._batches += 1
                self._inflight += 1
            self._dispatchers.submit(self._run_batch, batch)

    def _expire_locked(self, expired: list[_Request]) -> None:
        self._expired += len(expired)
        for request in expired:
            state = self._tenants.get(request.tenant)
            if state is not None:
                state.expired += 1

    def _serve_plans(self, batch: list[_Request]) -> None:
        """Jointly place every placement request in this micro-batch.

        The whole subset is one :func:`plan_concurrent` call — tenants
        that arrived within the batch window contend for the simulated
        accelerators, so each tenant's answer already accounts for its
        co-travellers. Failures resolve each future with the typed
        exception; detection requests in the same batch are unaffected.
        """
        try:
            plan = plan_concurrent([r.payload for r in batch],
                                   profile=self.config.profile)
            now = time.perf_counter()
            with self._lock:
                self._plan_requests += len(batch)
                self._plan_batches += 1
                for request in batch:
                    latency = now - request.t_submit
                    self._latencies.append(latency)
                    state = self._tenants.get(request.tenant)
                    if state is not None:
                        state.completed += 1
                        state.latencies.append(latency)
            for i, request in enumerate(batch):
                request.future.set_result(PlanResult(
                    plan, i, request.tenant, now - request.t_submit))
        except BaseException as exc:
            with self._lock:
                self._errors += sum(
                    1 for r in batch if not r.future.done())
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)

    def _run_batch(self, batch: list[_Request]):
        t_batch = time.perf_counter()
        size = len(batch)
        try:
            faults.maybe_fire("service.batch", str(size))
            # Deadline propagation, step 1: work whose budget lapsed in
            # the queue gets a typed failure, not a stale solve.
            now_mono = time.monotonic()
            live: list[_Request] = []
            expired: list[_Request] = []
            for request in batch:
                if request.deadline_at is not None and \
                        now_mono > request.deadline_at:
                    expired.append(request)
                else:
                    live.append(request)
            if expired:
                with self._lock:
                    self._expire_locked(expired)
                for request in expired:
                    request.future.set_exception(DeadlineExpired(
                        f"deadline expired after "
                        f"{time.perf_counter() - request.t_submit:.3f}s "
                        f"in the service queue"))
            batch = live
            if not batch:
                return
            # Placement requests co-batched here form one joint
            # contention domain; detection continues below on the rest.
            plan_batch = [r for r in batch if r.kind == "plan"]
            batch = [r for r in batch if r.kind == "detect"]
            if plan_batch:
                self._serve_plans(plan_batch)
            if not batch:
                return
            # Step 2: the tightest surviving budget bounds the solve via
            # the supervisor's per-function deadline.
            budget = None
            for request in batch:
                if request.deadline_at is not None:
                    remaining = request.deadline_at - now_mono
                    budget = (remaining if budget is None
                              else min(budget, remaining))
            unique: list[Module] = []
            index_of: dict[int, int] = {}
            for request in batch:
                if id(request.module) not in index_of:
                    index_of[id(request.module)] = len(unique)
                    unique.append(request.module)
            session = DetectionSession(
                self.detector, workers=self.config.workers,
                mode=self.config.mode,
                deadline_s=self.config.deadline_s,
                max_retries=self.config.max_retries)
            if budget is not None:
                session.policy = session.policy.tightened(budget)
            reports = session.detect_many(unique, inflight=self.ledger)
            now = time.perf_counter()
            per_module_functions = [
                sum(1 for f in module.functions.values()
                    if not f.is_declaration())
                for module in unique]
            with self._lock:
                self._store_hits += session.cache_hits
                self._solved_functions += session.solved_functions
                self._batch_dedupe_hits += session.dedupe_hits
                self._inflight_hits += session.inflight_hits
                for request in batch:
                    fcount = per_module_functions[
                        index_of[id(request.module)]]
                    self._functions_requested += fcount
                self._module_dedupe_hits += sum(
                    per_module_functions[index_of[id(r.module)]]
                    for r in batch) - sum(per_module_functions)
                for request in batch:
                    latency = now - request.t_submit
                    self._latencies.append(latency)
                    state = self._tenants.get(request.tenant)
                    if state is not None:
                        state.completed += 1
                        state.latencies.append(latency)
            for request in batch:
                request.future.set_result(ServiceResult(
                    reports[index_of[id(request.module)]],
                    request.module, request.tenant,
                    now - request.t_submit))
        except BaseException as exc:
            with self._lock:
                self._errors += sum(1 for r in batch if not r.future.done())
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
        finally:
            with self._queue_cond:
                self._inflight -= 1
                per = (time.perf_counter() - t_batch) / max(1, size)
                self._ewma_request_s = (
                    per if self._ewma_request_s is None
                    else 0.7 * self._ewma_request_s + 0.3 * per)
                self._queue_cond.notify_all()
