"""Detection-as-a-service: the resident, multi-tenant in-process core.

:class:`DetectionService` keeps everything expensive resident across
requests — the warmed :class:`~repro.idioms.IdiomDetector` (compiled
idiom forest, lowered plans), a shared :class:`~repro.cache.ArtifactStore`
under an LRU byte budget, a parse cache mapping IR-text digests to
shared :class:`~repro.ir.module.Module` objects, and an
:class:`~repro.idioms.InflightLedger` for cross-batch in-flight dedupe —
then serves concurrent :meth:`submit` calls from many tenants.

Requests arriving within ``batch_window_s`` of each other are
micro-batched: a batcher thread drains the queue into one
:meth:`~repro.idioms.scheduler.DetectionSession.detect_many` fan-out per
batch, so ten tenants editing the same popular library produce one solve
plus nine structural replays rather than ten solves. Dispatcher threads
run batches concurrently, so one slow batch never blocks the window for
the next.

The daemon (:mod:`.daemon`) is a thin socket skin over this class; tests
and the benchmark drive it directly with no networking.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..cache import EVICTION_POLICIES, ArtifactStore
from ..errors import IDLError
from ..idioms import IdiomDetector, InflightLedger
from ..idioms.matches import DetectionReport
from ..idioms.scheduler import DetectionSession
from ..ir.module import Module
from ..ir.parser import parse_module
from ..experiments.timing import summarize_latencies


@dataclass
class ServiceConfig:
    """Every knob of a resident detection service, in one place.

    ``workers``/``mode``/``deadline_s``/``max_retries`` configure each
    batch's :class:`~repro.idioms.scheduler.DetectionSession`;
    ``ordering`` the resident detector; ``cache_dir``/``budget_bytes``/
    ``eviction``/``durable`` the shared artifact store;
    ``batch_window_s``/``max_batch``/``dispatchers`` the micro-batcher.
    """

    workers: int = 1
    mode: str = "thread"
    ordering: str = "forest"
    cache_dir: str | None = None
    budget_bytes: int | None = None
    eviction: str = "lru"
    durable: bool = False
    #: How long the batcher waits for co-travellers after the first
    #: request of a batch arrives. A couple of milliseconds is enough to
    #: capture concurrent tenants without a visible latency tax.
    batch_window_s: float = 0.002
    max_batch: int = 32
    #: Concurrent batch executors. Two keeps the window responsive while
    #: a large batch is still solving.
    dispatchers: int = 2
    deadline_s: float | None = None
    max_retries: int = 2
    #: Distinct module texts kept parsed in memory (LRU).
    parse_cache_entries: int = 64
    #: Most recent per-request latencies retained for the stats endpoint.
    latency_window: int = 2048

    def __post_init__(self):
        if self.mode not in ("thread", "process"):
            raise IDLError(f"unknown detection mode {self.mode!r}")
        if self.eviction not in EVICTION_POLICIES:
            raise IDLError(f"unknown eviction policy {self.eviction!r}")
        if self.max_batch < 1:
            raise IDLError("max_batch must be >= 1")
        if self.dispatchers < 1:
            raise IDLError("dispatchers must be >= 1")


@dataclass
class ServiceResult:
    """One request's answer: the report, the (shared) parsed module it
    references, which tenant asked, and the request's wall-clock from
    submit to report (queueing + batching window included)."""

    report: DetectionReport
    module: Module
    tenant: str
    latency_s: float


class _Request:
    __slots__ = ("module", "tenant", "future", "t_submit")

    def __init__(self, module, tenant):
        self.module = module
        self.tenant = tenant
        self.future: Future = Future()
        self.t_submit = time.perf_counter()


class DetectionService:
    """The resident multi-tenant detection facade (see module docstring).

    Thread-safe; :meth:`submit` may be called from any number of tenant
    threads. Use as a context manager or call :meth:`close`."""

    def __init__(self, config: ServiceConfig | None = None,
                 store: ArtifactStore | None = None):
        self.config = config or ServiceConfig()
        if store is None and self.config.cache_dir is not None:
            store = ArtifactStore(self.config.cache_dir,
                                  durable=self.config.durable,
                                  budget_bytes=self.config.budget_bytes,
                                  eviction=self.config.eviction)
        self.store = store
        self.detector = IdiomDetector(ordering=self.config.ordering,
                                      cache=store)
        self.ledger = InflightLedger()
        self.warmup_s = 0.0
        self._lock = threading.Lock()
        self._queue_cond = threading.Condition(self._lock)
        self._queue: list[_Request] = []
        self._parse_cache: OrderedDict[str, Module] = OrderedDict()
        self._latencies = deque(maxlen=self.config.latency_window)
        self._batcher: threading.Thread | None = None
        self._dispatchers: ThreadPoolExecutor | None = None
        self._started = False
        self._closed = False
        self._t_start = time.monotonic()
        # Aggregate counters (under self._lock).
        self._requests = 0
        self._batches = 0
        self._module_dedupe_hits = 0
        self._functions_requested = 0
        self._store_hits = 0
        self._solved_functions = 0
        self._batch_dedupe_hits = 0
        self._inflight_hits = 0
        self._errors = 0
        self._parse_hits = 0
        self._parse_misses = 0

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "DetectionService":
        """Warm the detector (compile the idiom forest) and start the
        batcher/dispatcher threads. Idempotent; :meth:`submit` calls it
        on first use, but a daemon should call it eagerly so the first
        request pays no compile cost."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise IDLError("service is closed")
            self._started = True
        t0 = time.perf_counter()
        self.detector.warmup()
        self.warmup_s = time.perf_counter() - t0
        self._dispatchers = ThreadPoolExecutor(
            max_workers=self.config.dispatchers,
            thread_name_prefix="repro-service")
        self._batcher = threading.Thread(target=self._batch_loop,
                                         name="repro-service-batcher",
                                         daemon=True)
        self._batcher.start()
        return self

    def close(self):
        """Drain queued requests, stop the threads, release the pools.
        Idempotent. Requests submitted after close are refused."""
        with self._queue_cond:
            if self._closed:
                return
            self._closed = True
            self._queue_cond.notify_all()
        if self._batcher is not None:
            self._batcher.join(timeout=60.0)
        if self._dispatchers is not None:
            self._dispatchers.shutdown(wait=True)

    def __enter__(self) -> "DetectionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API ---------------------------------------------------------------
    def submit(self, source, tenant: str = "default") -> Future:
        """Enqueue one detection request; returns a future resolving to
        a :class:`ServiceResult`. ``source`` is module IR text (parsed
        once per distinct text, shared across tenants) or an
        already-parsed :class:`~repro.ir.module.Module`."""
        if not self._started:
            self.start()
        module = self._resolve_module(source)
        request = _Request(module, tenant)
        with self._queue_cond:
            if self._closed:
                raise IDLError("service is closed")
            self._requests += 1
            self._queue.append(request)
            self._queue_cond.notify_all()
        return request.future

    def detect(self, source, tenant: str = "default",
               timeout: float | None = None) -> ServiceResult:
        """Synchronous convenience: submit and wait."""
        return self.submit(source, tenant=tenant).result(timeout=timeout)

    def stats(self) -> dict:
        """The service's counters, latency summary and store telemetry —
        the daemon's ``stats`` op returns exactly this."""
        with self._lock:
            served = (self._store_hits + self._batch_dedupe_hits +
                      self._inflight_hits + self._module_dedupe_hits)
            total = self._functions_requested
            payload = {
                "uptime_s": time.monotonic() - self._t_start,
                "warmup_s": self.warmup_s,
                "requests": self._requests,
                "batches": self._batches,
                "errors": self._errors,
                "pending": len(self._queue),
                "functions_requested": total,
                "solved_functions": self._solved_functions,
                "store_hits": self._store_hits,
                "batch_dedupe_hits": self._batch_dedupe_hits,
                "inflight_hits": self._inflight_hits,
                "module_dedupe_hits": self._module_dedupe_hits,
                "dedupe_ratio": served / total if total else 0.0,
                "parse_cache": {"hits": self._parse_hits,
                                "misses": self._parse_misses,
                                "entries": len(self._parse_cache)},
                "latency": summarize_latencies(self._latencies),
            }
        if self.store is not None:
            payload["store"] = dict(self.store.stats.as_dict(),
                                    total_bytes=self.store.total_bytes(),
                                    budget_bytes=self.store.budget_bytes,
                                    eviction=self.store.eviction)
        return payload

    # -- internals ----------------------------------------------------------------
    def _resolve_module(self, source) -> Module:
        if isinstance(source, Module):
            return source
        if not isinstance(source, str):
            raise IDLError(
                f"submit() takes IR text or a Module, "
                f"got {type(source).__name__}")
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        with self._lock:
            module = self._parse_cache.get(digest)
            if module is not None:
                self._parse_cache.move_to_end(digest)
                self._parse_hits += 1
                return module
            self._parse_misses += 1
        # Parse outside the lock (two threads may race to parse the same
        # new text; the loser's parse is discarded — harmless, and it
        # keeps parse time off the submit critical section).
        module = parse_module(source, name=f"m-{digest[:12]}")
        with self._lock:
            module = self._parse_cache.setdefault(digest, module)
            self._parse_cache.move_to_end(digest)
            while len(self._parse_cache) > self.config.parse_cache_entries:
                self._parse_cache.popitem(last=False)
        return module

    def _batch_loop(self):
        config = self.config
        while True:
            with self._queue_cond:
                while not self._queue and not self._closed:
                    self._queue_cond.wait()
                if not self._queue:
                    return  # closed and drained
                # Micro-batch window: the first request opens it; wait
                # for co-travellers until it lapses or the batch fills.
                deadline = time.monotonic() + config.batch_window_s
                while len(self._queue) < config.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._closed:
                        break
                    self._queue_cond.wait(timeout=remaining)
                batch = self._queue[:config.max_batch]
                del self._queue[:len(batch)]
                self._batches += 1
            self._dispatchers.submit(self._run_batch, batch)

    def _run_batch(self, batch: list[_Request]):
        try:
            unique: list[Module] = []
            index_of: dict[int, int] = {}
            for request in batch:
                if id(request.module) not in index_of:
                    index_of[id(request.module)] = len(unique)
                    unique.append(request.module)
            session = DetectionSession(
                self.detector, workers=self.config.workers,
                mode=self.config.mode,
                deadline_s=self.config.deadline_s,
                max_retries=self.config.max_retries)
            reports = session.detect_many(unique, inflight=self.ledger)
            now = time.perf_counter()
            per_module_functions = [
                sum(1 for f in module.functions.values()
                    if not f.is_declaration())
                for module in unique]
            with self._lock:
                self._store_hits += session.cache_hits
                self._solved_functions += session.solved_functions
                self._batch_dedupe_hits += session.dedupe_hits
                self._inflight_hits += session.inflight_hits
                for request in batch:
                    fcount = per_module_functions[
                        index_of[id(request.module)]]
                    self._functions_requested += fcount
                self._module_dedupe_hits += sum(
                    per_module_functions[index_of[id(r.module)]]
                    for r in batch) - sum(per_module_functions)
                self._latencies.extend(
                    now - request.t_submit for request in batch)
            for request in batch:
                request.future.set_result(ServiceResult(
                    reports[index_of[id(request.module)]],
                    request.module, request.tenant,
                    now - request.t_submit))
        except BaseException as exc:
            with self._lock:
                self._errors += len(batch)
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
