"""CLI for the detection daemon.

``python -m repro.service serve`` runs a daemon in the foreground
(SIGTERM triggers a graceful drain before exit);
``detect``/``stats``/``health``/``ping``/``drain``/``shutdown`` are
thin clients for a running daemon. ``detect`` takes either a benchmark
workload name (compiled through the standard pipeline) or ``--file``
with module IR text, round-trips the report through the wire format and
prints the per-category totals a local run would print.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from .core import ServiceConfig
from .daemon import DEFAULT_PORT, DetectionDaemon, ServiceClient


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Resident multi-tenant idiom-detection daemon")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a daemon in the foreground")
    _add_endpoint(serve)
    serve.add_argument("--workers", type=int, default=1,
                       help="detection worker pool size per batch")
    serve.add_argument("--mode", choices=["thread", "process"],
                       default="thread", help="worker pool flavour")
    serve.add_argument("--ordering",
                       choices=["forest", "plan", "dynamic"],
                       default="forest", help="solve configuration")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact store directory (default: none)")
    serve.add_argument("--budget-mb", type=float, default=None,
                       metavar="MB",
                       help="artifact store byte budget; least-recently-"
                            "used entries are evicted past it")
    serve.add_argument("--eviction", choices=["lru", "generational"],
                       default="lru", help="store eviction policy")
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="micro-batch collection window (default 2ms)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="requests per micro-batch (default 32)")
    serve.add_argument("--dispatchers", type=int, default=2,
                       help="concurrent batch executors (default 2)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-function solve deadline")
    serve.add_argument("--max-retries", type=int, default=2)
    serve.add_argument("--max-pending", type=int, default=1024,
                       help="admission-control cap on queued requests "
                            "(default 1024); excess load is shed with a "
                            "typed retryable error")
    serve.add_argument("--tenant-quota", type=int, default=None,
                       metavar="N",
                       help="per-tenant pending-queue cap (default: "
                            "max-pending/4)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="how long SIGTERM waits for in-flight work "
                            "before exiting (default 30s)")
    serve.add_argument("--profile", default=None, metavar="PATH",
                       help="calibration profile JSON used to cost "
                            "joint placement ('plan') batches "
                            "(default: static constants)")

    detect = sub.add_parser("detect",
                            help="submit one module to a running daemon")
    _add_endpoint(detect)
    detect.add_argument("workload", nargs="?",
                        help="benchmark workload name to compile+submit")
    detect.add_argument("--file", default=None, metavar="PATH",
                        help="module IR text to submit instead of a "
                             "workload ('-' for stdin)")
    detect.add_argument("--tenant", default="cli")
    detect.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="end-to-end request deadline, enforced at "
                             "admission and inside the solver")
    detect.add_argument("--json", action="store_true",
                        help="print the raw wire response")

    drain = sub.add_parser(
        "drain", help="stop the daemon admitting; wait for in-flight")
    _add_endpoint(drain)
    drain.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="max wait for the queue to empty")

    for name, text in (("stats", "print a running daemon's counters"),
                       ("health", "print lifecycle state + queue depths"),
                       ("ping", "check a daemon is up"),
                       ("shutdown", "stop a running daemon")):
        command = sub.add_parser(name, help=text)
        _add_endpoint(command)
    return parser


def _serve(args) -> int:
    profile = None
    if args.profile is not None:
        from ..platform.calibrate import read_profile_json

        profile = read_profile_json(args.profile, strict=True)
    config = ServiceConfig(
        workers=args.workers, mode=args.mode, ordering=args.ordering,
        cache_dir=args.cache_dir,
        budget_bytes=None if args.budget_mb is None
        else int(args.budget_mb * 1024 * 1024),
        eviction=args.eviction,
        batch_window_s=args.window_ms / 1e3,
        max_batch=args.max_batch, dispatchers=args.dispatchers,
        deadline_s=args.deadline, max_retries=args.max_retries,
        max_pending=args.max_pending, tenant_quota=args.tenant_quota,
        profile=profile)
    daemon = DetectionDaemon(args.host, args.port, config=config)
    host, port = daemon.address

    def _graceful(_signum, _frame):
        # Drain in a helper thread (a signal handler must not block),
        # then stop the serve loop; the finally-close below finishes up.
        def drain_and_stop():
            daemon.drain(args.drain_timeout)
            daemon.shutdown()

        threading.Thread(target=drain_and_stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    print(f"repro detection daemon on {host}:{port} "
          f"(warmup {daemon.service.warmup_s:.2f}s, "
          f"workers={config.workers}/{config.mode}, "
          f"window={config.batch_window_s * 1e3:.1f}ms, "
          f"max_pending={config.max_pending})",
          flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
    return 0


def _module_text(args) -> str:
    if args.file is not None:
        if args.file == "-":
            return sys.stdin.read()
        with open(args.file, "r", encoding="utf-8") as fh:
            return fh.read()
    if not args.workload:
        raise SystemExit("detect needs a workload name or --file")
    from ..ir.printer import print_module
    from ..experiments.suites import compile_suite

    [(_, module)] = compile_suite([args.workload])
    return print_module(module)


def _detect(args) -> int:
    from ..ir.parser import parse_module

    text = _module_text(args)
    with ServiceClient(args.host, args.port) as client:
        response = client.detect(text, tenant=args.tenant,
                                 deadline_s=args.deadline)
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    from .wire import decode_report

    report = decode_report(response["report"], parse_module(text))
    print(f"{report.module_name}: {report.total()} match(es) "
          f"in {response['latency_s'] * 1e3:.1f}ms")
    for category, count in sorted(report.by_category().items()):
        print(f"  {category:24s} {count}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    if args.command == "detect":
        return _detect(args)
    with ServiceClient(args.host, args.port) as client:
        if args.command == "ping":
            print("pong" if client.ping() else "no answer")
        elif args.command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        elif args.command == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
        elif args.command == "drain":
            print(json.dumps(client.drain(args.timeout), indent=2,
                             sort_keys=True))
        elif args.command == "shutdown":
            client.shutdown()
            print("daemon shutting down")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
