"""The detection daemon: a socket skin over :class:`DetectionService`.

Protocol: line-delimited JSON over TCP. Each request line is an object
with an ``op`` — ``detect`` (fields ``module``: IR text, optional
``tenant`` and ``deadline_s``), ``plan`` (field ``request``: an encoded
:class:`~repro.platform.placement.PlacementRequest`, optional ``tenant``
and ``deadline_s``), ``stats``, ``health``, ``ping``, ``drain``
(optional ``timeout_s``), ``shutdown`` — and each response line an
object with ``ok``. A ``detect`` response carries the report in the
structural wire format (:mod:`.wire`); the client rebinds it against
its own parse of the submitted text, so daemon answers are bit-identical
to local :func:`~repro.idioms.detect_idioms` runs. A ``plan`` response
carries the tenant's slice of the joint placement its micro-batch was
costed under — concurrent ``plan`` calls contend for the simulated
accelerators together (see
:meth:`~repro.service.core.DetectionService.submit_plan`).

Error responses are structured: ``{"ok": false, "kind": ..., "error":
..., "retry_after_s": ...}`` with ``kind`` one of
:data:`~repro.service.wire.ERROR_KINDS`, so clients distinguish
retryable overload/drain sheds from bad requests and internal failures
without string-matching (see :func:`~repro.service.wire.encode_error`).

:class:`ServiceClient` is self-healing: it reconnects through dropped
connections and daemon restarts with bounded exponential backoff plus
jitter, honours ``retry_after_s`` from typed sheds, and keeps a
per-request timeout distinct from the connect timeout. ``detect`` is
idempotent on the daemon side (warm store + dedupe make replays cheap),
which is what makes blind resends safe.

Only the stdlib is used (:mod:`socketserver` threading TCP server), so
the daemon runs anywhere the repo does."""

from __future__ import annotations

import json
import random
import socket
import socketserver
import threading
import time

from ..errors import IDLError, InjectedFault
from ..ir.parser import parse_module
from ..reliability import faults
from ..platform.placement import PlacementRequest
from .core import DetectionService, ServiceConfig
from .wire import decode_plan_request, decode_report, encode_error, \
    encode_plan_request, encode_plan_result, encode_report, \
    error_from_response

#: The daemon's well-known default port (the CLI's default endpoint).
DEFAULT_PORT = 7199


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            request, op = None, None
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise IDLError("request must be a JSON object")
                op = request.get("op")
            except Exception as exc:  # malformed line: a bad request,
                response = encode_error(exc)  # never a dead connection
            else:
                try:
                    faults.maybe_fire("daemon.conn", str(op))
                except InjectedFault:
                    return  # injected connection drop: the client's
                    # reconnect path owns recovery from here
                try:
                    response = self.server.dispatch(request)
                except Exception as exc:  # one bad request must not
                    response = encode_error(exc)  # kill the daemon
            try:
                self.wfile.write(
                    (json.dumps(response) + "\n").encode("utf-8"))
                self.wfile.flush()
            except (OSError, ValueError):
                return  # client went away mid-response
            if op == "shutdown":
                return


class DetectionDaemon(socketserver.ThreadingTCPServer):
    """Serve a :class:`DetectionService` on a TCP port.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`address`). One handler thread per connection; all of them
    funnel into the shared service, whose micro-batcher coalesces their
    concurrent requests and whose admission control sheds overload with
    typed responses."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 config: ServiceConfig | None = None,
                 service: DetectionService | None = None):
        super().__init__((host, port), _Handler)
        self._conn_lock = threading.Lock()
        self._conns: set = set()
        self.service = (service or DetectionService(config)).start()

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    # -- connection tracking (for kill()) -----------------------------------------
    def process_request(self, request, client_address):
        with self._conn_lock:
            self._conns.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request):
        with self._conn_lock:
            self._conns.discard(request)
        super().shutdown_request(request)

    def handle_error(self, request, client_address):
        import sys
        exc = sys.exc_info()[1]
        # Dropped/killed connections are routine under chaos testing and
        # client restarts; only genuinely unexpected handler failures
        # deserve the default traceback spew.
        if isinstance(exc, (OSError, ValueError)):
            return
        super().handle_error(request, client_address)

    # -- ops ----------------------------------------------------------------------
    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True,
                    "state": self.service.state}
        if op == "stats":
            return {"ok": True, "stats": self.service.stats()}
        if op == "health":
            return {"ok": True, **self.service.health()}
        if op == "detect":
            text = request.get("module")
            if not isinstance(text, str):
                raise IDLError("detect needs a 'module' IR-text field")
            deadline_s = request.get("deadline_s")
            result = self.service.detect(
                text, tenant=str(request.get("tenant", "default")),
                deadline_s=None if deadline_s is None
                else float(deadline_s))
            return {"ok": True,
                    "report": encode_report(result.report),
                    "tenant": result.tenant,
                    "latency_s": result.latency_s}
        if op == "plan":
            payload = request.get("request")
            if not isinstance(payload, dict):
                raise IDLError("plan needs a 'request' object field "
                               "(an encoded PlacementRequest)")
            deadline_s = request.get("deadline_s")
            result = self.service.plan(
                decode_plan_request(payload),
                tenant=str(request.get("tenant", "default")),
                deadline_s=None if deadline_s is None
                else float(deadline_s))
            return {"ok": True,
                    "plan": encode_plan_result(result),
                    "tenant": result.tenant,
                    "latency_s": result.latency_s}
        if op == "drain":
            timeout = request.get("timeout_s")
            drained = self.service.drain(
                None if timeout is None else float(timeout))
            return {"ok": True, "drained": drained,
                    "state": self.service.state,
                    "pending": self.service.health()["pending"]}
        if op == "shutdown":
            # shutdown() blocks until serve_forever() exits; calling it
            # from this handler thread is safe (ThreadingTCPServer), but
            # the response must go out first — hence the helper thread.
            threading.Thread(target=self.shutdown, daemon=True).start()
            return {"ok": True, "shutting_down": True}
        raise IDLError(f"unknown op {op!r}")

    def serve_in_thread(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-daemon", daemon=True)
        thread.start()
        return thread

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown, phase 1: stop admitting, finish in-flight.
        The SIGTERM hook and the ``drain`` op both land here."""
        return self.service.drain(timeout)

    def close(self):
        self.shutdown()
        self.server_close()
        self.service.close()

    def kill(self):
        """Abrupt stop: drop every live connection and stop serving
        without waiting for handlers — the crash/restart simulation the
        chaos benchmark uses. Internally queued work is still drained
        (its clients are gone; the responses go nowhere), and the port
        is immediately rebindable by a replacement daemon."""
        self.shutdown()
        with self._conn_lock:
            conns = list(self._conns)
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self.server_close()
        self.service.close()


class ServiceClient:
    """A blocking, self-healing line-protocol client for
    :class:`DetectionDaemon`.

    One TCP connection, reused across requests and transparently
    re-established when it drops (daemon restart, injected connection
    fault, network blip): retryable requests are resent after a bounded
    exponential backoff with jitter — safe because ``detect`` is
    idempotent on the daemon side. Typed ``overloaded``/``draining``
    sheds are retried honouring the daemon's ``retry_after_s`` hint.
    ``timeout`` bounds each request round-trip; ``connect_timeout``
    bounds connection establishment separately. Usable as a context
    manager. :meth:`detect_report` returns a decoded
    :class:`~repro.idioms.matches.DetectionReport` bound to the client's
    own parse of the submitted text."""

    #: Error kinds worth another attempt (after honouring retry_after_s).
    RETRYABLE_KINDS = ("overloaded", "draining")

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: float = 120.0, connect_timeout: float = 10.0,
                 max_retries: int = 5, backoff_s: float = 0.05,
                 max_backoff_s: float = 2.0, reconnect: bool = True):
        if int(port) == 0:
            raise IDLError(
                "port 0 is the daemon's pick-an-ephemeral-port bind "
                "sentinel, not a connectable address; pass the daemon's "
                "actual bound port (DetectionDaemon.address)")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_retries = max(0, int(max_retries))
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.reconnect = reconnect
        #: Telemetry: connections re-established / requests re-attempted.
        self.reconnects = 0
        self.retries = 0
        self._sock: socket.socket | None = None
        self._rfile = None
        self._connect()

    # -- connection management ----------------------------------------------------
    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.connect_timeout)
        try:
            # The connect timeout has done its job; from here on the
            # per-request timeout governs reads and writes.
            sock.settimeout(self.timeout)
            rfile = sock.makefile("rb")
        except BaseException:
            sock.close()  # never leak the socket if makefile/settimeout
            raise         # fails after the connection was established
        if self._rfile is not None or self._sock is not None:
            self.reconnects += 1
        self._sock = sock
        self._rfile = rfile

    def _teardown(self) -> None:
        sock, rfile = self._sock, self._rfile
        self._sock = None
        # Keep _rfile's old object identity check out of _connect's
        # reconnect accounting by leaving it non-None until replaced.
        for resource in (rfile, sock):
            if resource is not None:
                try:
                    resource.close()
                except OSError:
                    pass

    def _sleep(self, attempt: int,
               retry_after_s: float | None = None) -> None:
        if retry_after_s:
            delay = float(retry_after_s)
        else:
            delay = self.backoff_s * (2 ** attempt)
        delay = min(self.max_backoff_s, delay)
        # Jitter decorrelates a fleet of clients retrying the same shed.
        time.sleep(delay + random.uniform(0, self.backoff_s))

    # -- request loop -------------------------------------------------------------
    def request(self, payload: dict, retryable: bool = True,
                deadline_at: float | None = None) -> dict:
        """One round-trip, with self-healing.

        Connection failures tear the socket down and (for ``retryable``
        requests) reconnect + resend after backoff; typed retryable
        error kinds back off per the daemon's ``retry_after_s``.
        ``deadline_at`` (monotonic) bounds the total retry effort."""
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self._connect()
                self._sock.sendall(
                    (json.dumps(payload) + "\n").encode("utf-8"))
                line = self._rfile.readline()
                if not line:
                    raise ConnectionError("daemon closed the connection")
                response = json.loads(line.decode("utf-8"))
            except (OSError, ValueError) as exc:
                # OSError covers resets, refusals and timeouts;
                # ValueError covers a line torn mid-write by a dying
                # daemon — both mean this attempt produced nothing
                # trustworthy, so the connection is rebuilt from scratch.
                self._teardown()
                if not (retryable and self.reconnect) \
                        or attempt >= self.max_retries \
                        or (deadline_at is not None
                            and time.monotonic() >= deadline_at):
                    raise ConnectionError(
                        f"daemon at {self.host}:{self.port} unreachable "
                        f"after {attempt + 1} attempt(s): {exc}") from exc
                self.retries += 1
                self._sleep(attempt)
                attempt += 1
                continue
            if response.get("ok"):
                return response
            if response.get("kind") in self.RETRYABLE_KINDS \
                    and retryable and attempt < self.max_retries \
                    and (deadline_at is None
                         or time.monotonic() < deadline_at):
                self.retries += 1
                self._sleep(attempt, response.get("retry_after_s"))
                attempt += 1
                continue
            raise error_from_response(response)

    # -- ops ----------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def health(self) -> dict:
        """Daemon lifecycle state + queue depths (cheap; no batching)."""
        return self.request({"op": "health"})

    def drain(self, timeout_s: float | None = None) -> dict:
        """Ask the daemon to stop admitting and finish in-flight work."""
        payload: dict = {"op": "drain"}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return self.request(payload)

    def detect(self, ir_text: str, tenant: str = "default",
               deadline_s: float | None = None) -> dict:
        """The raw response: ``report`` (wire payload), ``latency_s``.

        ``deadline_s`` is the per-attempt budget the daemon enforces
        from admission; the client additionally stops retrying once the
        budget is spent locally."""
        payload = {"op": "detect", "module": ir_text, "tenant": tenant}
        deadline_at = None
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
            deadline_at = time.monotonic() + deadline_s
        return self.request(payload, deadline_at=deadline_at)

    def plan(self, request, tenant: str = "default",
             deadline_s: float | None = None) -> dict:
        """Joint placement through the daemon: ``request`` is a
        :class:`~repro.platform.placement.PlacementRequest` (encoded
        here) or an already-encoded wire dict. Returns the ``plan``
        payload: this tenant's ``assignment``/``locations``, its
        ``completion_ms`` under contention with whatever co-batched
        with it, and the batch totals. Idempotent, hence retry-safe:
        planning is a pure costing computation."""
        if isinstance(request, PlacementRequest):
            request = encode_plan_request(request)
        payload = {"op": "plan", "request": request, "tenant": tenant}
        deadline_at = None
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
            deadline_at = time.monotonic() + deadline_s
        return self.request(payload, deadline_at=deadline_at)["plan"]

    def detect_report(self, ir_text: str, tenant: str = "default",
                      module=None, deadline_s: float | None = None):
        """Round-trip convenience: submit text, decode the answer
        against ``module`` (or a fresh local parse of the text)."""
        response = self.detect(ir_text, tenant=tenant,
                               deadline_s=deadline_s)
        if module is None:
            module = parse_module(ir_text)
        return decode_report(response["report"], module)

    def shutdown(self) -> dict:
        # Not retryable: a dropped connection after send most likely
        # means the shutdown worked.
        return self.request({"op": "shutdown"}, retryable=False)

    def close(self):
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
