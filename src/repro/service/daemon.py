"""The detection daemon: a socket skin over :class:`DetectionService`.

Protocol: line-delimited JSON over TCP. Each request line is an object
with an ``op`` — ``detect`` (fields ``module``: IR text, optional
``tenant``), ``stats``, ``ping``, ``shutdown`` — and each response line
an object with ``ok``. A ``detect`` response carries the report in the
structural wire format (:mod:`.wire`); the client rebinds it against its
own parse of the submitted text, so daemon answers are bit-identical to
local :func:`~repro.idioms.detect_idioms` runs.

Only the stdlib is used (:mod:`socketserver` threading TCP server), so
the daemon runs anywhere the repo does."""

from __future__ import annotations

import json
import socket
import socketserver
import threading

from ..errors import IDLError
from ..ir.parser import parse_module
from .core import DetectionService, ServiceConfig
from .wire import decode_report, encode_report


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            request = None
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise IDLError("request must be a JSON object")
                response = self.server.dispatch(request)
            except Exception as exc:  # one bad request must not kill the
                response = {"ok": False,  # connection, let alone the daemon
                            "error": f"{type(exc).__name__}: {exc}"}
            self.wfile.write(
                (json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if isinstance(request, dict) and \
                    request.get("op") == "shutdown":
                return


class DetectionDaemon(socketserver.ThreadingTCPServer):
    """Serve a :class:`DetectionService` on a TCP port.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`address`). One handler thread per connection; all of them
    funnel into the shared service, whose micro-batcher coalesces their
    concurrent requests."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 config: ServiceConfig | None = None,
                 service: DetectionService | None = None):
        super().__init__((host, port), _Handler)
        self.service = (service or DetectionService(config)).start()

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "stats":
            return {"ok": True, "stats": self.service.stats()}
        if op == "detect":
            text = request.get("module")
            if not isinstance(text, str):
                raise IDLError("detect needs a 'module' IR-text field")
            result = self.service.detect(
                text, tenant=str(request.get("tenant", "default")))
            return {"ok": True,
                    "report": encode_report(result.report),
                    "tenant": result.tenant,
                    "latency_s": result.latency_s}
        if op == "shutdown":
            # shutdown() blocks until serve_forever() exits; calling it
            # from this handler thread is safe (ThreadingTCPServer), but
            # the response must go out first — hence the helper thread.
            threading.Thread(target=self.shutdown, daemon=True).start()
            return {"ok": True, "shutting_down": True}
        raise IDLError(f"unknown op {op!r}")

    def serve_in_thread(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-daemon", daemon=True)
        thread.start()
        return thread

    def close(self):
        self.shutdown()
        self.server_close()
        self.service.close()


class ServiceClient:
    """A blocking line-protocol client for :class:`DetectionDaemon`.

    One TCP connection, reused across requests; usable as a context
    manager. :meth:`detect_report` returns a decoded
    :class:`~repro.idioms.matches.DetectionReport` bound to the client's
    own parse of the submitted text."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 120.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def request(self, payload: dict) -> dict:
        self._sock.sendall(
            (json.dumps(payload) + "\n").encode("utf-8"))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise IDLError(
                f"daemon error: {response.get('error', 'unknown')}")
        return response

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def detect(self, ir_text: str, tenant: str = "default") -> dict:
        """The raw response: ``report`` (wire payload), ``latency_s``."""
        return self.request({"op": "detect", "module": ir_text,
                             "tenant": tenant})

    def detect_report(self, ir_text: str, tenant: str = "default",
                      module=None):
        """Round-trip convenience: submit text, decode the answer
        against ``module`` (or a fresh local parse of the text)."""
        response = self.detect(ir_text, tenant=tenant)
        if module is None:
            module = parse_module(ir_text)
        return decode_report(response["report"], module)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self):
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
