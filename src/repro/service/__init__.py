"""Detection-as-a-service: a resident multi-tenant detection daemon.

The serving layer above the detection pipeline: a warmed detector,
LRU-governed artifact store, parse cache and in-flight ledger stay
resident in one process (:mod:`.core`) while concurrent tenants submit
modules; requests arriving together are micro-batched into single
:meth:`~repro.idioms.scheduler.DetectionSession.detect_many` fan-outs
with cross-tenant dedupe. :mod:`.daemon` exposes the service over a
line-delimited-JSON TCP protocol (stdlib only) with reports shipped in
the structural wire format (:mod:`.wire`); ``python -m repro.service``
is the CLI (:mod:`.__main__`).
"""

from .core import DetectionService, ServiceConfig, ServiceResult
from .daemon import DetectionDaemon, ServiceClient
from .wire import (
    WIRE_VERSION,
    decode_report,
    encode_report,
    report_wire_fingerprint,
)

__all__ = [
    "DetectionService", "ServiceConfig", "ServiceResult",
    "DetectionDaemon", "ServiceClient",
    "WIRE_VERSION", "decode_report", "encode_report",
    "report_wire_fingerprint",
]
