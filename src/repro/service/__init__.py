"""Detection-as-a-service: a resident multi-tenant detection daemon.

The serving layer above the detection pipeline: a warmed detector,
LRU-governed artifact store, parse cache and in-flight ledger stay
resident in one process (:mod:`.core`) while concurrent tenants submit
modules; requests arriving together are micro-batched into single
:meth:`~repro.idioms.scheduler.DetectionSession.detect_many` fan-outs
with cross-tenant dedupe. The service is overload-safe: a bounded
pending queue with per-tenant quotas sheds excess load with typed,
retryable errors; a weighted round-robin batcher keeps one flooding
tenant from starving the rest; request deadlines propagate from the
wire into the solver; and a ``starting → ready → draining → stopped``
lifecycle supports graceful drain. :mod:`.daemon` exposes the service
over a line-delimited-JSON TCP protocol (stdlib only) with reports
shipped in the structural wire format (:mod:`.wire`) and errors as
structured ``kind`` envelopes; its :class:`ServiceClient` self-heals
through connection drops and daemon restarts. ``python -m
repro.service`` is the CLI (:mod:`.__main__`).
"""

from .core import (
    DeadlineExpired,
    DetectionService,
    PlanResult,
    ServiceConfig,
    ServiceDraining,
    ServiceError,
    ServiceOverloaded,
    ServiceResult,
)
from .daemon import DEFAULT_PORT, DetectionDaemon, ServiceClient
from .wire import (
    ERROR_KINDS,
    WIRE_VERSION,
    decode_plan_request,
    decode_report,
    encode_error,
    encode_plan_request,
    encode_plan_result,
    encode_report,
    error_from_response,
    report_wire_fingerprint,
)

__all__ = [
    "DetectionService", "ServiceConfig", "ServiceResult", "PlanResult",
    "ServiceError", "ServiceOverloaded", "ServiceDraining",
    "DeadlineExpired",
    "DetectionDaemon", "ServiceClient", "DEFAULT_PORT",
    "WIRE_VERSION", "ERROR_KINDS",
    "decode_report", "encode_report", "report_wire_fingerprint",
    "encode_plan_request", "decode_plan_request", "encode_plan_result",
    "encode_error", "error_from_response",
]
