"""Parboil benchmark recreations (sequential C base versions, reduced scale).

Same discipline as :mod:`repro.workloads.nas`: each source reproduces the
original benchmark's idiom structure — sgemm is the paper's Figure 8 GEMM,
spmv its Figure 4 loop, stencil a 7-point 3-D Jacobi — inside realistic
driver code that must not match.
"""

from __future__ import annotations

import numpy as np

from .suite import Workload, register


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# bfs — breadth-first search: frontier expansion with indirect writes
# (unmatched) plus one conditional visited-count reduction.
# ---------------------------------------------------------------------------

BFS_SOURCE = """
void expand(int nodes, int *row, int *col, int *cost, int level) {
  for (int u = 0; u < nodes; u++) {
    if (cost[u] == level) {
      for (int e = row[u]; e < row[u+1]; e++) {
        int v = col[e];
        int cv = cost[v];
        if (cv < 0)
          cost[v] = level + 1;
      }
    }
  }
}

int visited_count(int nodes, int *cost) {
  int c = 0;
  for (int u = 0; u < nodes; u++)
    c += cost[u] >= 0 ? 1 : 0;
  return c;
}

int run(int nodes, int levels, int *row, int *col, int *cost) {
  for (int l = 0; l < levels; l++)
    expand(nodes, row, col, cost, l);
  return visited_count(nodes, cost);
}
"""


def _bfs_inputs(scale: int) -> dict:
    nodes = 600 * scale
    rng = _rng(30)
    degree = 6
    row = np.arange(0, nodes * degree + 1, degree, dtype=np.int32)
    col = rng.integers(0, nodes, nodes * degree, dtype=np.int32)
    cost = np.full(nodes, -1, dtype=np.int32)
    cost[0] = 0
    return {"nodes": nodes, "levels": 4, "row": row, "col": col,
            "cost": cost}


register(Workload(
    name="bfs", suite="Parboil", source=BFS_SOURCE, entry="run",
    make_inputs=_bfs_inputs,
    expected={"scalar_reduction": 1},
    dominant=False, paper_coverage=14.0))


# ---------------------------------------------------------------------------
# cutcp — cutoff coulombic potential: grid accumulation with distance
# guards (unmatched scatter) plus one simple energy reduction.
# ---------------------------------------------------------------------------

CUTCP_SOURCE = """
void spread(int atoms, int gdim, double *ax, double *ay, double *charge,
            double *wtab, double *grid) {
  for (int a = 0; a < atoms; a++) {
    double x = ax[a];
    double y = ay[a];
    double q = charge[a];
    int gx = (int) x;
    int gy = (int) y;
    for (int dx = 0; dx < 4; dx++) {
      for (int dy = 0; dy < 4; dy++) {
        int ix = gx + dx;
        int iy = gy + dy;
        double rx = x - (double) ix;
        double ry = y - (double) iy;
        double r2 = rx*rx + ry*ry;
        if (r2 < 4.0) {
          int cell = ix * gdim + iy;
          int slot = (int) (r2 * 4.0);
          grid[cell] = grid[cell] + q * wtab[slot];
        }
      }
    }
  }
}

double energy(int cells, double *grid) {
  double e = 0.0;
  for (int i = 0; i < cells; i++)
    e += grid[i];
  return e;
}

double run(int atoms, int gdim, double *ax, double *ay, double *charge,
           double *wtab, double *grid) {
  spread(atoms, gdim, ax, ay, charge, wtab, grid);
  return energy(gdim * gdim, grid);
}
"""


def _cutcp_inputs(scale: int) -> dict:
    atoms = 300 * scale
    gdim = 40
    rng = _rng(31)
    return {"atoms": atoms, "gdim": gdim,
            "ax": rng.uniform(0, gdim - 5, atoms),
            "ay": rng.uniform(0, gdim - 5, atoms),
            "charge": rng.uniform(-1, 1, atoms),
            "wtab": np.linspace(1.0, 0.0, 16),
            "grid": np.zeros(gdim * gdim)}


register(Workload(
    name="cutcp", suite="Parboil", source=CUTCP_SOURCE, entry="run",
    make_inputs=_cutcp_inputs,
    expected={"scalar_reduction": 1},
    dominant=False, paper_coverage=10.0))


# ---------------------------------------------------------------------------
# histo — the saturating image histogram benchmark: the histogram IS the
# program (coverage ~95%).
# ---------------------------------------------------------------------------

HISTO_SOURCE = """
void histo_kernel(int n, int *img, int *bins) {
  for (int i = 0; i < n; i++)
    bins[img[i]] = bins[img[i]] + 1;
}

int run(int n, int reps, int nbins, int *img, int *bins) {
  for (int r = 0; r < reps; r++)
    histo_kernel(n, img, bins);
  return bins[0] + bins[nbins - 1];
}
"""


def _histo_inputs(scale: int) -> dict:
    n = 3000 * scale
    nbins = 256
    rng = _rng(32)
    return {"n": n, "reps": 3, "nbins": nbins,
            "img": rng.integers(0, nbins, n, dtype=np.int32),
            "bins": np.zeros(nbins, dtype=np.int32)}


register(Workload(
    name="histo", paper_scale=120.0, suite="Parboil", source=HISTO_SOURCE, entry="run",
    make_inputs=_histo_inputs,
    expected={"histogram_reduction": 1},
    dominant=True, paper_coverage=95.0,
    paper_speedup=1.26, paper_platform="igpu"))


# ---------------------------------------------------------------------------
# lbm — lattice-Boltzmann: two 3-D stencil sweeps (collide + stream) over
# constant-size grids, iterated over time steps.
# ---------------------------------------------------------------------------

LBM_SOURCE = """
#define D 14

double src[D][D][D];
double dst[D][D][D];
double rho[D][D][D];

void seed_grid(double *seed) {
  for (int i = 0; i < D; i++)
    for (int j = 0; j < D; j++)
      for (int k = 0; k < D; k++) {
        src[i][j][k] = seed[(i*D+j)*D+k];
        dst[i][j][k] = 0.0;
        rho[i][j][k] = 0.0;
      }
}

void collide() {
  for (int i = 1; i < D - 1; i++)
    for (int j = 1; j < D - 1; j++)
      for (int k = 1; k < D - 1; k++)
        dst[i][j][k] = 0.6 * src[i][j][k]
          + 0.0666 * (src[i-1][j][k] + src[i+1][j][k]
                      + src[i][j-1][k] + src[i][j+1][k]
                      + src[i][j][k-1] + src[i][j][k+1]);
}

void stream() {
  for (int i = 1; i < D - 1; i++)
    for (int j = 1; j < D - 1; j++)
      for (int k = 1; k < D - 1; k++)
        rho[i][j][k] = dst[i][j][k]
          + 0.125 * (dst[i-1][j][k] - dst[i+1][j][k])
          + 0.125 * (dst[i][j-1][k] - dst[i][j+1][k])
          + 0.0625 * (dst[i][j][k-1] - dst[i][j][k+1])
          + 0.03 * (dst[i-1][j-1][k] + dst[i+1][j+1][k]);
}

void copy_back() {
  for (int i = 0; i < D; i++)
    for (int j = 0; j < D; j++)
      for (int k = 0; k < D; k++)
        src[i][j][k] = rho[i][j][k];
}

double run(int steps, double *seed) {
  seed_grid(seed);
  for (int t = 0; t < steps; t++) {
    collide();
    stream();
    copy_back();
  }
  return src[D/2][D/2][D/2];
}
"""


def _lbm_inputs(scale: int) -> dict:
    d = 14
    rng = _rng(33)
    return {"steps": 6, "seed": rng.uniform(0.5, 1.5, d * d * d)}


register(Workload(
    name="lbm", paper_scale=30000.0, suite="Parboil", source=LBM_SOURCE, entry="run",
    make_inputs=_lbm_inputs,
    expected={"stencil": 2},
    dominant=True, paper_coverage=90.0,
    paper_speedup=10.9, paper_platform="gpu"))


# ---------------------------------------------------------------------------
# mri-g — MRI gridding: scatter interpolation (unmatched) plus one
# gridding-weight reduction with trig calls.
# ---------------------------------------------------------------------------

MRI_G_SOURCE = """
void gridding(int samples, int gdim, int *order, double *kx,
              double *kval, double *grid) {
  for (int s = 0; s < samples; s++) {
    double pos = kx[order[s]];
    int cell = (int) pos;
    double w = pos - (double) cell;
    int c0 = cell % (gdim - 1);
    grid[c0] = grid[c0] + kval[s] * (1.0 - w);
    grid[c0 + 1] = grid[c0 + 1] + kval[s] * w;
  }
}

double weight_sum(int samples, double *kx, double *kval) {
  double s = 0.0;
  for (int i = 0; i < samples; i++)
    s += kval[i] * cos(kx[i] * 0.1);
  return s;
}

double run(int samples, int gdim, int *order, double *kx, double *kval,
           double *grid) {
  gridding(samples, gdim, order, kx, kval, grid);
  gridding(samples, gdim, order, kval, kx, grid);
  return weight_sum(samples, kx, kval);
}
"""


def _mri_g_inputs(scale: int) -> dict:
    samples = 700 * scale
    gdim = 128
    rng = _rng(34)
    return {"samples": samples, "gdim": gdim,
            "order": rng.permutation(samples).astype(np.int32),
            "kx": rng.uniform(0, gdim - 2, samples),
            "kval": rng.uniform(-1, 1, samples),
            "grid": np.zeros(gdim)}


register(Workload(
    name="mri-g", suite="Parboil", source=MRI_G_SOURCE, entry="run",
    make_inputs=_mri_g_inputs,
    expected={"scalar_reduction": 1},
    dominant=False, paper_coverage=18.0))


# ---------------------------------------------------------------------------
# mri-q — MRI Q computation: phase accumulation over sample points; the
# driver's per-voxel phase computation dominates (unmatched).
# ---------------------------------------------------------------------------

MRI_Q_SOURCE = """
void compute_phi(int voxels, int samples, int *sidx, double *x,
                 double *kx, double *phi) {
  for (int v = 0; v < voxels; v++) {
    double acc = 0.0;
    double pos = x[v];
    for (int s = 0; s < samples; s++) {
      double arg = 6.2831853 * kx[sidx[s]] * pos;
      acc = acc + arg * arg * 1.0e-4;
    }
    phi[v] = acc;
  }
}

double q_real(int voxels, double *phi, double *mag) {
  double q = 0.0;
  for (int v = 0; v < voxels; v++)
    q += mag[v] * cos(phi[v]);
  return q;
}

double run(int voxels, int samples, int *sidx, double *x, double *kx,
           double *phi, double *mag) {
  compute_phi(voxels, samples, sidx, x, kx, phi);
  return q_real(voxels, phi, mag);
}
"""


def _mri_q_inputs(scale: int) -> dict:
    voxels = 120 * scale
    samples = 90
    rng = _rng(35)
    return {"voxels": voxels, "samples": samples,
            "sidx": rng.permutation(samples).astype(np.int32),
            "x": rng.uniform(-1, 1, voxels),
            "kx": rng.uniform(-1, 1, samples),
            "phi": np.zeros(voxels),
            "mag": rng.uniform(0, 1, voxels)}


register(Workload(
    name="mri-q", suite="Parboil", source=MRI_Q_SOURCE, entry="run",
    make_inputs=_mri_q_inputs,
    expected={"scalar_reduction": 1},
    dominant=False, paper_coverage=20.0))


# ---------------------------------------------------------------------------
# sad — sum of absolute differences: block-search loops over shifted
# windows (unmatched: runtime offsets) plus one frame-level SAD reduction.
# ---------------------------------------------------------------------------

SAD_SOURCE = """
void block_sad(int blocks, int bsize, int *cur, int *ref, int *sads) {
  for (int b = 0; b < blocks; b++) {
    int base = b * bsize;
    int total = 0;
    for (int off = 0; off < 8; off++) {
      int acc = 0;
      for (int i = 0; i < bsize; i++) {
        int d = cur[base + i] - ref[base + i + off];
        acc = acc + (d > 0 ? d : -d);
      }
      total = total + acc;
    }
    sads[b] = total;
  }
}

double frame_sad(int n, int *cur, int *ref) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    int d = cur[i] - ref[i];
    s += (double) (d > 0 ? d : -d);
  }
  return s;
}

double run(int blocks, int bsize, int *cur, int *ref, int *sads) {
  block_sad(blocks, bsize, cur, ref, sads);
  return frame_sad(blocks * bsize, cur, ref);
}
"""


def _sad_inputs(scale: int) -> dict:
    blocks = 40 * scale
    bsize = 36
    rng = _rng(36)
    n = blocks * bsize + 16
    return {"blocks": blocks, "bsize": bsize,
            "cur": rng.integers(0, 256, n, dtype=np.int32),
            "ref": rng.integers(0, 256, n, dtype=np.int32),
            "sads": np.zeros(blocks, dtype=np.int32)}


register(Workload(
    name="sad", suite="Parboil", source=SAD_SOURCE, entry="run",
    make_inputs=_sad_inputs,
    expected={"scalar_reduction": 1},
    dominant=False, paper_coverage=22.0))


# ---------------------------------------------------------------------------
# sgemm — the paper's Figure 8 dense matrix multiply (flat layout with
# leading dimensions, alpha/beta update). Coverage ~99%.
# ---------------------------------------------------------------------------

SGEMM_SOURCE = """
void sgemm_kernel(int m, int n, int k, double *A, int lda, double *B,
                  int ldb, double *C, int ldc, double alpha, double beta) {
  for (int mm = 0; mm < m; mm++) {
    for (int nn = 0; nn < n; nn++) {
      double c = 0.0;
      for (int i = 0; i < k; i++) {
        double a = A[mm + i * lda];
        double b = B[nn + i * ldb];
        c += a * b;
      }
      C[mm + nn * ldc] = C[mm + nn * ldc] * beta + alpha * c;
    }
  }
}

double run(int m, int n, int k, double *A, double *B, double *C,
           double alpha, double beta) {
  sgemm_kernel(m, n, k, A, m, B, n, C, m, alpha, beta);
  return C[0];
}
"""


def _sgemm_inputs(scale: int) -> dict:
    m = n = 20 * scale
    k = 20 * scale
    rng = _rng(37)
    return {"m": m, "n": n, "k": k,
            "A": rng.uniform(-1, 1, m * k),
            "B": rng.uniform(-1, 1, n * k),
            "C": rng.uniform(-1, 1, m * n),
            "alpha": 1.5, "beta": 0.5}


register(Workload(
    name="sgemm", paper_scale=250000.0, suite="Parboil", source=SGEMM_SOURCE, entry="run",
    make_inputs=_sgemm_inputs,
    expected={"matrix_op": 1},
    dominant=True, paper_coverage=99.0,
    paper_speedup=275.0, paper_platform="gpu"))


# ---------------------------------------------------------------------------
# spmv — Parboil's JDS-format kernel, recreated (as the paper notes via
# its custom libSPMV) in CSR form: the Figure 4 loop plus input setup.
# ---------------------------------------------------------------------------

SPMV_SOURCE = """
void spmv_kernel(int m, double *val, int *rowptr, int *colidx, double *x,
                 double *y) {
  for (int j = 0; j < m; j++) {
    double d = 0.0;
    for (int k = rowptr[j]; k < rowptr[j+1]; k++)
      d = d + val[k] * x[colidx[k]];
    y[j] = d;
  }
}

double run(int m, int reps, double *val, int *rowptr, int *colidx,
           double *x, double *y) {
  for (int r = 0; r < reps; r++)
    spmv_kernel(m, val, rowptr, colidx, x, y);
  return y[0];
}
"""


def _spmv_inputs(scale: int) -> dict:
    from ..backends.sparse import random_csr

    m = 260 * scale
    rp, ci, vals = random_csr(m, m, 9, seed=38)
    rng = _rng(39)
    return {"m": m, "reps": 3, "val": vals, "rowptr": rp, "colidx": ci,
            "x": rng.uniform(-1, 1, m), "y": np.zeros(m)}


register(Workload(
    name="spmv", paper_scale=4000.0, suite="Parboil", source=SPMV_SOURCE, entry="run",
    make_inputs=_spmv_inputs,
    expected={"sparse_matrix_op": 1},
    dominant=True, paper_coverage=96.0,
    paper_speedup=11.8, paper_platform="gpu"))


# ---------------------------------------------------------------------------
# stencil — 7-point 3-D Jacobi on a constant-size grid, iterated.
# ---------------------------------------------------------------------------

STENCIL_SOURCE = """
#define S 20

double a0[S][S][S];
double a1[S][S][S];

void seed_grid(double *seed) {
  for (int i = 0; i < S; i++)
    for (int j = 0; j < S; j++)
      for (int k = 0; k < S; k++) {
        a0[i][j][k] = seed[(i*S+j)*S+k];
        a1[i][j][k] = 0.0;
      }
}

void jacobi13() {
  for (int i = 2; i < S - 2; i++)
    for (int j = 2; j < S - 2; j++)
      for (int k = 2; k < S - 2; k++)
        a1[i][j][k] = 0.76 * a0[i][j][k]
          + 0.0333 * (a0[i-1][j][k] + a0[i+1][j][k] + a0[i][j-1][k]
                      + a0[i][j+1][k] + a0[i][j][k-1] + a0[i][j][k+1])
          + 0.0066 * (a0[i-2][j][k] + a0[i+2][j][k] + a0[i][j-2][k]
                      + a0[i][j+2][k] + a0[i][j][k-2] + a0[i][j][k+2]);
}

void swap_grids() {
  for (int i = 0; i < S; i++)
    for (int j = 0; j < S; j++)
      for (int k = 0; k < S; k++)
        a0[i][j][k] = a1[i][j][k];
}

double run(int steps, double *seed) {
  seed_grid(seed);
  for (int t = 0; t < steps; t++) {
    jacobi13();
    swap_grids();
  }
  return a0[S/2][S/2][S/2];
}
"""


def _stencil_inputs(scale: int) -> dict:
    s = 20
    rng = _rng(40)
    return {"steps": 8, "seed": rng.uniform(0, 1, s * s * s)}


register(Workload(
    name="stencil", paper_scale=30000.0, suite="Parboil", source=STENCIL_SOURCE, entry="run",
    make_inputs=_stencil_inputs,
    expected={"stencil": 1},
    dominant=True, paper_coverage=95.0,
    paper_speedup=8.0, paper_platform="gpu"))


# ---------------------------------------------------------------------------
# tpacf — two-point angular correlation: pairwise distance histogram
# (dominant) plus two data-quality reductions.
# ---------------------------------------------------------------------------

TPACF_SOURCE = """
void correlate(int n, int nbins, double *x, double *y, double *z,
               int *bins) {
  for (int i = 0; i < n; i++) {
    double xi = x[i];
    double yi = y[i];
    double zi = z[i];
    for (int j = 0; j < n; j++) {
      double d = xi*x[j] + yi*y[j] + zi*z[j];
      double clamped = fmin(fmax(d, -1.0), 1.0);
      int bin = (int) ((clamped + 1.0) * 0.5 * (double)(nbins - 1));
      bins[bin] = bins[bin] + 1;
    }
  }
}

double norm_check(int n, double *x, double *y, double *z) {
  double worst = 0.0;
  for (int i = 0; i < n; i++) {
    double m = x[i]*x[i] + y[i]*y[i] + z[i]*z[i];
    double err = fabs(m - 1.0);
    worst = err > worst ? err : worst;
  }
  return worst;
}

double mean_z(int n, double *z) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += fabs(z[i]);
  return s;
}

double run(int n, int nbins, double *x, double *y, double *z, int *bins) {
  correlate(n, nbins, x, y, z, bins);
  double a = norm_check(n, x, y, z);
  double b = mean_z(n, z);
  return a + b;
}
"""


def _tpacf_inputs(scale: int) -> dict:
    n = 70 * scale
    rng = _rng(41)
    v = rng.normal(size=(3, n))
    v /= np.linalg.norm(v, axis=0)
    return {"n": n, "nbins": 32,
            "x": v[0].copy(), "y": v[1].copy(), "z": v[2].copy(),
            "bins": np.zeros(32, dtype=np.int32)}


register(Workload(
    name="tpacf", paper_scale=30000.0, suite="Parboil", source=TPACF_SOURCE, entry="run",
    make_inputs=_tpacf_inputs,
    expected={"scalar_reduction": 2, "histogram_reduction": 1},
    dominant=True, paper_coverage=100.0,
    paper_speedup=1.9, paper_platform="cpu",
    reference_rewrites_algorithm=True))
