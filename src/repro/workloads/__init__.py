"""NAS and Parboil workload recreations (21 benchmarks)."""

from .suite import (
    Workload,
    all_workloads,
    dominant_workloads,
    expected_totals,
    get_workload,
    register,
)

__all__ = [
    "Workload", "all_workloads", "dominant_workloads", "expected_totals",
    "get_workload", "register",
]
