"""Workload registry: mini-C recreations of NAS and Parboil benchmarks.

Each :class:`Workload` carries the benchmark's computational kernels
(faithful to the idioms the original contains — e.g. CG's CSR SPMV loop is
the paper's Figure 4 verbatim), an input generator, the expected idiom
census (the reproduction target for Table 1 / Figure 16) and the paper's
reported numbers used for shape checks in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import WorkloadError


@dataclass
class Workload:
    """One benchmark recreation."""

    name: str
    suite: str  # 'NAS' | 'Parboil'
    source: str
    entry: str
    #: inputs(scale) -> dict of entry-argument values (ints / numpy arrays).
    make_inputs: Callable[[int], dict]
    #: Expected idiom census: category -> count (Figure 16 target).
    expected: dict = field(default_factory=dict)
    #: Idioms dominate sequential runtime (the paper's 10 exploitable).
    dominant: bool = False
    #: Paper-reported approximate coverage percentage (Figure 17).
    paper_coverage: float = 0.0
    #: Paper-reported best end-to-end speedup and platform (Figure 18).
    paper_speedup: float | None = None
    paper_platform: str | None = None
    #: Reference (Figure 19): handwritten version rewrote the algorithm.
    reference_rewrites_algorithm: bool = False
    default_scale: int = 1
    #: Analytic extrapolation factor from interpreter-scale inputs to the
    #: paper's problem sizes (NAS class B / Parboil full inputs). Applied
    #: to dynamic statistics before costing; see EXPERIMENTS.md.
    paper_scale: float = 1.0

    def total_expected(self) -> int:
        return sum(self.expected.values())


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(f"unknown workload {name!r}") from None


def all_workloads() -> list[Workload]:
    """All 21 benchmarks, NAS first, in the paper's Figure 16 order."""
    _ensure_loaded()
    nas_order = ["BT", "CG", "DC", "EP", "FT", "IS", "LU", "MG", "SP", "UA"]
    parboil_order = ["bfs", "cutcp", "histo", "lbm", "mri-g", "mri-q",
                     "sad", "sgemm", "spmv", "stencil", "tpacf"]
    return [_REGISTRY[n] for n in nas_order + parboil_order]


def dominant_workloads() -> list[Workload]:
    return [w for w in all_workloads() if w.dominant]


def expected_totals() -> dict:
    """Suite-wide expected census (must equal Table 1's IDL row)."""
    totals: dict[str, int] = {}
    for workload in all_workloads():
        for category, count in workload.expected.items():
            totals[category] = totals.get(category, 0) + count
    return totals


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if not _loaded:
        from . import nas, parboil  # noqa: F401  (registration side effect)
        _loaded = True
