"""NAS Parallel Benchmark recreations (SNU NPB C versions, reduced scale).

Each source reproduces the *idiom structure* of the original benchmark —
the loops the paper's detector fires on, embedded in realistic surrounding
computation that must NOT match (flux sweeps, FFT butterflies, sorting
passes). Problem sizes are chosen so the interpreter executes each
benchmark in well under a second while preserving the paper's bimodal
runtime-coverage profile (Figure 17).

Randomness is supplied from outside (numpy arrays) because an in-language
PRNG loop is itself a generalized induction that the detector would
legitimately report — the original benchmarks seed from files/generators
outside the timed kernels as well.
"""

from __future__ import annotations

import numpy as np

from .suite import Workload, register


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# BT — block tridiagonal solver. Heavy 5-component flux sweeps (unmatched)
# plus two RMS-norm scalar reductions. Coverage is low (paper: ~4%).
# ---------------------------------------------------------------------------

BT_SOURCE = """
void compute_rhs(int n, double *u, double *rhs) {
  for (int sweep = 0; sweep < 14; sweep++) {
    for (int i = 1; i < n - 1; i++) {
      for (int m = 0; m < 5; m++) {
        double um = u[(i-1)*5+m];
        double up = u[(i+1)*5+m];
        double uc = u[i*5+m];
        rhs[i*5+m] = rhs[i*5+m]*0.5 + (up - 2.0*uc + um)
                     + 0.25*(up*up - um*um) - 0.1*uc;
      }
    }
  }
}

double rhs_norm(int n, double *rhs) {
  double rms = 0.0;
  for (int i = 0; i < n; i++)
    rms += rhs[i] * rhs[i];
  return rms;
}

double u_norm(int n, double *u) {
  double rms = 0.0;
  for (int i = 0; i < n; i++)
    rms += u[i] * u[i];
  return rms;
}

double run(int n, double *u, double *rhs) {
  compute_rhs(n, u, rhs);
  double a = rhs_norm(n * 5, rhs);
  double b = u_norm(n * 5, u);
  return a + b;
}
"""


def _bt_inputs(scale: int) -> dict:
    n = 220 * scale
    rng = _rng(10)
    return {"n": n,
            "u": rng.uniform(-1, 1, n * 5),
            "rhs": rng.uniform(-1, 1, n * 5)}


register(Workload(
    name="BT", suite="NAS", source=BT_SOURCE, entry="run",
    make_inputs=_bt_inputs,
    expected={"scalar_reduction": 2},
    dominant=False, paper_coverage=4.0))


# ---------------------------------------------------------------------------
# CG — conjugate gradient. The paper's flagship: two CSR SPMV instances
# (Figure 4 verbatim) and eight scalar reductions. Coverage ~98%.
# ---------------------------------------------------------------------------

CG_SOURCE = """
void spmv_pq(int m, double *a, int *rowstr, int *colidx, double *p,
             double *q) {
  for (int j = 0; j < m; j++) {
    double d = 0.0;
    for (int k = rowstr[j]; k < rowstr[j+1]; k++)
      d = d + a[k] * p[colidx[k]];
    q[j] = d;
  }
}

void spmv_z(int m, double *a, int *rowstr, int *colidx, double *z,
            double *r) {
  for (int j = 0; j < m; j++) {
    double d = 0.0;
    for (int k = rowstr[j]; k < rowstr[j+1]; k++)
      d = d + a[k] * z[colidx[k]];
    r[j] = d;
  }
}

double dot_rr(int n, double *r) {
  double rho = 0.0;
  for (int j = 0; j < n; j++)
    rho += r[j] * r[j];
  return rho;
}

double dot_pq(int n, double *p, double *q) {
  double d = 0.0;
  for (int j = 0; j < n; j++)
    d += p[j] * q[j];
  return d;
}

double dot_xz(int n, double *x, double *z) {
  double t = 0.0;
  for (int j = 0; j < n; j++)
    t += x[j] * z[j];
  return t;
}

double dot_zz(int n, double *z) {
  double t = 0.0;
  for (int j = 0; j < n; j++)
    t += z[j] * z[j];
  return t;
}

double sum_x(int n, double *x) {
  double s = 0.0;
  for (int j = 0; j < n; j++)
    s += x[j];
  return s;
}

double rho_first(int n, double *x) {
  double rho = 0.0;
  for (int j = 0; j < n; j++)
    rho += x[j] * x[j];
  return rho;
}

double max_abs_z(int n, double *z) {
  double best = 0.0;
  for (int j = 0; j < n; j++) {
    double az = fabs(z[j]);
    best = az > best ? az : best;
  }
  return best;
}

double resid_err(int n, double *x, double *r) {
  double err = 0.0;
  for (int j = 0; j < n; j++)
    err += fabs(x[j] - r[j]);
  return err;
}

double run(int n, int niter, double *a, int *rowstr, int *colidx,
           double *x, double *z, double *p, double *q, double *r) {
  double rho = rho_first(n, x);
  for (int j = 0; j < n; j++) {
    p[j] = x[j];
    r[j] = x[j];
    z[j] = 0.0;
  }
  for (int it = 0; it < niter; it++) {
    spmv_pq(n, a, rowstr, colidx, p, q);
    double d = dot_pq(n, p, q);
    double alpha = rho / (d + 1.0e-12);
    for (int j = 0; j < n; j++) {
      z[j] = z[j] + alpha * p[j];
      r[j] = r[j] - alpha * q[j];
    }
    double rho_new = dot_rr(n, r);
    double beta = rho_new / (rho + 1.0e-12);
    rho = rho_new;
    for (int j = 0; j < n; j++)
      p[j] = r[j] + beta * p[j];
  }
  spmv_z(n, a, rowstr, colidx, z, r);
  double t1 = dot_xz(n, x, z);
  double t2 = dot_zz(n, z);
  double s = sum_x(n, x);
  double mz = max_abs_z(n, z);
  double err = resid_err(n, x, r);
  return rho + t1 + t2 + s + mz + err;
}
"""


def _cg_inputs(scale: int) -> dict:
    from ..backends.sparse import random_csr

    n = 120 * scale
    rp, ci, vals = random_csr(n, n, 24, seed=11)
    rng = _rng(12)
    return {"n": n, "niter": 3,
            "a": vals, "rowstr": rp, "colidx": ci,
            "x": rng.uniform(-1, 1, n), "z": np.zeros(n),
            "p": np.zeros(n), "q": np.zeros(n), "r": np.zeros(n)}


register(Workload(
    name="CG", paper_scale=4000.0, suite="NAS", source=CG_SOURCE, entry="run",
    make_inputs=_cg_inputs,
    expected={"scalar_reduction": 8, "sparse_matrix_op": 2},
    dominant=True, paper_coverage=98.0,
    paper_speedup=17.0, paper_platform="gpu"))


# ---------------------------------------------------------------------------
# DC — data cube aggregation: one grouped histogram plus one total-sum
# reduction, surrounded by tuple-processing passes. Coverage low.
# ---------------------------------------------------------------------------

DC_SOURCE = """
void preprocess(int n, int *keys, int *tmp) {
  for (int pass = 0; pass < 14; pass++) {
    for (int i = 1; i < n; i++) {
      int k = keys[i];
      int t = tmp[i-1];
      tmp[i] = t + (k ^ (t >> 3)) % 97;
    }
  }
}

void aggregate(int n, int *group, double *vals, double *cube) {
  for (int i = 0; i < n; i++)
    cube[group[i]] = cube[group[i]] + vals[i];
}

double total(int n, double *vals) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += vals[i];
  return s;
}

double run(int n, int *keys, int *group, double *vals, double *cube,
           int *tmp) {
  preprocess(n, keys, tmp);
  aggregate(n, group, vals, cube);
  return total(n, vals);
}
"""


def _dc_inputs(scale: int) -> dict:
    n = 900 * scale
    rng = _rng(13)
    return {"n": n,
            "keys": rng.integers(0, 1000, n, dtype=np.int32),
            "group": rng.integers(0, 64, n, dtype=np.int32),
            "vals": rng.uniform(0, 1, n),
            "cube": np.zeros(64), "tmp": np.zeros(n, dtype=np.int32)}


register(Workload(
    name="DC", suite="NAS", source=DC_SOURCE, entry="run",
    make_inputs=_dc_inputs,
    expected={"scalar_reduction": 1, "histogram_reduction": 1},
    dominant=False, paper_coverage=9.0))


# ---------------------------------------------------------------------------
# EP — embarrassingly parallel gaussian pairs: one conditional histogram
# plus one conditional sum in the same accept/reject loop. The paper's
# outlier: idioms cover about half the runtime.
# ---------------------------------------------------------------------------

EP_SOURCE = """
void scale_pairs(int n, double *xs, double *ys) {
  for (int rep = 0; rep < 1; rep++) {
    for (int i = 0; i < n; i++) {
      double a = xs[i];
      double b = ys[i];
      xs[i] = 2.0*a - 1.0 + 0.0*b;
      ys[i] = 2.0*b - 1.0;
    }
  }
}

double gaussian_tally(int n, double *xs, double *ys, double *q) {
  double sx = 0.0;
  for (int i = 0; i < n; i++) {
    double t1 = xs[i];
    double t2 = ys[i];
    double t = t1*t1 + t2*t2;
    if (t <= 1.0) {
      double f = sqrt(-2.0 * log(t + 1.0e-30) / (t + 1.0e-30));
      double g1 = fabs(t1 * f);
      double g2 = fabs(t2 * f);
      double gm = fmax(g1, g2);
      int l = (int) gm;
      q[l] = q[l] + 1.0;
      sx = sx + t1 * f;
    }
  }
  return sx;
}

double run(int n, double *xs, double *ys, double *q) {
  scale_pairs(n, xs, ys);
  return gaussian_tally(n, xs, ys, q);
}
"""


def _ep_inputs(scale: int) -> dict:
    n = 1800 * scale
    rng = _rng(14)
    return {"n": n,
            "xs": rng.uniform(0, 1, n), "ys": rng.uniform(0, 1, n),
            "q": np.zeros(16)}


register(Workload(
    name="EP", paper_scale=8000.0, suite="NAS", source=EP_SOURCE, entry="run",
    make_inputs=_ep_inputs,
    expected={"scalar_reduction": 1, "histogram_reduction": 1},
    dominant=True, paper_coverage=50.0,
    paper_speedup=28.0, paper_platform="gpu",
    reference_rewrites_algorithm=True))


# ---------------------------------------------------------------------------
# FT — 3-D FFT: butterfly passes (strided, unmatched) plus the two-part
# checksum: two reductions in one fixed-trip loop (constant bounds make
# these the SCoP-friendly reductions a polyhedral tool can also see).
# ---------------------------------------------------------------------------

FT_SOURCE = """
#define CHK 1024

void fft_pass(int n, int stride, double *re, double *im, double *wr,
              double *wi) {
  for (int i = 0; i < n - stride; i++) {
    double ar = re[i];
    double ai = im[i];
    double br = re[i + stride];
    double bi = im[i + stride];
    double tr = wr[i] * br - wi[i] * bi;
    double ti = wr[i] * bi + wi[i] * br;
    re[i] = ar + tr;
    im[i] = ai + ti;
  }
}

double checksum(double *re, double *im) {
  double sr = 0.0;
  double si = 0.0;
  for (int j = 0; j < CHK; j++) {
    sr += re[j];
    si += im[j];
  }
  return sr + si;
}

double run(int n, double *re, double *im, double *wr, double *wi) {
  fft_pass(n, 1, re, im, wr, wi);
  fft_pass(n, 2, re, im, wr, wi);
  fft_pass(n, 4, re, im, wr, wi);
  fft_pass(n, 8, re, im, wr, wi);
  fft_pass(n, 16, re, im, wr, wi);
  return checksum(re, im);
}
"""


def _ft_inputs(scale: int) -> dict:
    n = 1400 * scale
    rng = _rng(15)
    return {"n": n,
            "re": rng.uniform(-1, 1, n), "im": rng.uniform(-1, 1, n),
            "wr": rng.uniform(-1, 1, n), "wi": rng.uniform(-1, 1, n)}


register(Workload(
    name="FT", suite="NAS", source=FT_SOURCE, entry="run",
    make_inputs=_ft_inputs,
    expected={"scalar_reduction": 2},
    dominant=False, paper_coverage=13.0))


# ---------------------------------------------------------------------------
# IS — integer bucket sort: the key histogram dominates; one simple and
# one conditional verification reduction.
# ---------------------------------------------------------------------------

IS_SOURCE = """
void count_keys(int n, int *key, int *bucket) {
  for (int i = 0; i < n; i++)
    bucket[key[i]] = bucket[key[i]] + 1;
}

int partial_verify(int n, int *key) {
  int s = 0;
  for (int i = 0; i < n; i++)
    s += key[i] % 7;
  return s;
}

int count_large(int n, int *key, int h) {
  int over = 0;
  for (int i = 0; i < n; i++) {
    if (key[i] > h)
      over = over + 1;
  }
  return over;
}

void shift_keys(int n, int *key) {
  for (int p = 0; p < 1; p++) {
    for (int i = 1; i < n; i++) {
      int prev = key[i-1];
      key[i] = key[i] ^ (prev & 15);
    }
  }
}

int run(int n, int *key, int *bucket, int h) {
  shift_keys(n, key);
  count_keys(n, key, bucket);
  count_keys(n, key, bucket);
  count_keys(n, key, bucket);
  int a = partial_verify(n, key);
  int b = count_large(n, key, h);
  return a + b;
}
"""


def _is_inputs(scale: int) -> dict:
    n = 2500 * scale
    rng = _rng(16)
    return {"n": n,
            "key": rng.integers(0, 512, n, dtype=np.int32),
            "bucket": np.zeros(512, dtype=np.int32), "h": 400}


register(Workload(
    name="IS", paper_scale=4000.0, suite="NAS", source=IS_SOURCE, entry="run",
    make_inputs=_is_inputs,
    expected={"scalar_reduction": 2, "histogram_reduction": 1},
    dominant=True, paper_coverage=84.0,
    paper_speedup=4.5, paper_platform="gpu",
    reference_rewrites_algorithm=True))


# ---------------------------------------------------------------------------
# LU — SSOR solver: lower/upper sweeps with loop-carried dependences
# (unmatched) plus five norm reductions (one max via ternary).
# ---------------------------------------------------------------------------

LU_SOURCE = """
void ssor_sweep(int n, double *v, double *rsd) {
  for (int rep = 0; rep < 18; rep++) {
    for (int i = 1; i < n - 1; i++) {
      for (int m = 0; m < 5; m++) {
        double lower = v[(i-1)*5+m];
        double diag = v[i*5+m];
        double r = rsd[i*5+m];
        v[i*5+m] = diag + 0.3*(lower - diag) + 0.1*r;
      }
    }
  }
}

double rms_1(int n, double *x) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += x[i] * x[i];
  return s;
}

double rms_2(int n, double *x) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += x[i] * x[i] * 0.5;
  return s;
}

double sum_abs_terms(int n, double *x, double *y) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += x[i] * y[i];
  return s;
}

double mean_term(int n, double *x) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += x[i];
  return s;
}

double max_resid(int n, double *x) {
  double best = 0.0;
  for (int i = 0; i < n; i++) {
    double a = x[i] > 0.0 ? x[i] : -x[i];
    best = a > best ? a : best;
  }
  return best;
}

double run(int n, double *v, double *rsd) {
  ssor_sweep(n, v, rsd);
  double a = rms_1(n * 5, rsd);
  double b = rms_2(n * 5, v);
  double c = sum_abs_terms(n * 5, v, rsd);
  double d = mean_term(n * 5, v);
  double e = max_resid(n * 5, rsd);
  return a + b + c + d + e;
}
"""


def _lu_inputs(scale: int) -> dict:
    n = 260 * scale
    rng = _rng(17)
    return {"n": n,
            "v": rng.uniform(-1, 1, n * 5),
            "rsd": rng.uniform(-1, 1, n * 5)}


register(Workload(
    name="LU", suite="NAS", source=LU_SOURCE, entry="run",
    make_inputs=_lu_inputs,
    expected={"scalar_reduction": 5},
    dominant=False, paper_coverage=8.0))


# ---------------------------------------------------------------------------
# MG — multigrid: three 3-D stencils (resid, psinv, smooth) over global
# grids plus the norm2u3 reductions. Two stencils have constant bounds
# (visible to a polyhedral tool), one is parametric.
# ---------------------------------------------------------------------------

MG_SOURCE = """
#define N 18

double u[N][N][N];
double v[N][N][N];
double r[N][N][N];
double u2[N][N][N];

void fill_grids(double *seed_u, double *seed_v) {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < N; k++) {
        u[i][j][k] = seed_u[(i*N+j)*N+k];
        v[i][j][k] = seed_v[(i*N+j)*N+k];
        r[i][j][k] = 0.0;
        u2[i][j][k] = 0.0;
      }
}

void resid() {
  for (int i = 1; i < N - 1; i++)
    for (int j = 1; j < N - 1; j++)
      for (int k = 1; k < N - 1; k++)
        r[i][j][k] = v[i][j][k]
          - 0.5 * u[i][j][k]
          - 0.25 * (u[i-1][j][k] + u[i+1][j][k] + u[i][j-1][k]
                    + u[i][j+1][k] + u[i][j][k-1] + u[i][j][k+1]);
}

void psinv() {
  for (int i = 1; i < N - 1; i++)
    for (int j = 1; j < N - 1; j++)
      for (int k = 1; k < N - 1; k++)
        u2[i][j][k] = r[i][j][k]
          + 0.3 * (r[i-1][j][k] + r[i+1][j][k] + r[i][j-1][k]
                   + r[i][j+1][k] + r[i][j][k-1] + r[i][j][k+1]);
}

void smooth(int lo, int hi) {
  for (int i = lo; i < hi; i++)
    for (int j = lo; j < hi; j++)
      for (int k = lo; k < hi; k++)
        u[i][j][k] = u2[i][j][k]
          + 0.1 * (u2[i-1][j][k] + u2[i+1][j][k] + u2[i][j][k-1]
                   + u2[i][j][k+1]);
}

double norm_sum(int n3) {
  double s = 0.0;
  for (int i = 0; i < n3; i++) {
    double x = u2[0][0][i];
    s += x * x;
  }
  return s;
}

double norm_max(int n3) {
  double best = 0.0;
  for (int i = 0; i < n3; i++) {
    double a = fabs(r[0][0][i]);
    best = a > best ? a : best;
  }
  return best;
}

double mean_u(int n3) {
  double s = 0.0;
  for (int i = 0; i < n3; i++)
    s += u[0][0][i];
  return s;
}

double count_negative(int n) {
  double c = 0.0;
  for (int i = 0; i < n; i++) {
    if (r[0][0][i] < 0.0)
      c = c + 1.0;
  }
  return c;
}

double run(int lo, int hi, int n3, double *seed_u, double *seed_v) {
  fill_grids(seed_u, seed_v);
  resid();
  psinv();
  smooth(lo, hi);
  double a = norm_sum(n3);
  double b = norm_max(n3);
  double c = mean_u(n3);
  double d = count_negative(n3);
  return a + b + c + d;
}
"""


def _mg_inputs(scale: int) -> dict:
    n = 18
    rng = _rng(18)
    return {"lo": 1, "hi": n - 1, "n3": n * n * n,
            "seed_u": rng.uniform(-1, 1, n * n * n),
            "seed_v": rng.uniform(-1, 1, n * n * n)}


register(Workload(
    name="MG", paper_scale=1500.0, suite="NAS", source=MG_SOURCE, entry="run",
    make_inputs=_mg_inputs,
    expected={"scalar_reduction": 4, "stencil": 3},
    dominant=True, paper_coverage=80.0,
    paper_speedup=2.0, paper_platform="igpu",
    reference_rewrites_algorithm=True))


# ---------------------------------------------------------------------------
# SP — scalar pentadiagonal solver: like BT, flux sweeps dominate; three
# simple reductions (one with constant trip count).
# ---------------------------------------------------------------------------

SP_SOURCE = """
#define FIXED 512

void x_solve(int n, double *lhs, double *rhs) {
  for (int rep = 0; rep < 10; rep++) {
    for (int i = 2; i < n - 2; i++) {
      for (int m = 0; m < 5; m++) {
        double f1 = lhs[(i-2)*5+m];
        double f2 = lhs[(i-1)*5+m];
        double f3 = lhs[i*5+m];
        double f4 = lhs[(i+1)*5+m];
        double f5 = lhs[(i+2)*5+m];
        rhs[i*5+m] = rhs[i*5+m] - 0.05*(f1 + f5) + 0.2*(f2 + f4)
                     - 0.4*f3;
      }
    }
  }
}

double rhs_rms(int n, double *rhs) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += rhs[i] * rhs[i];
  return s;
}

double lhs_sum(int n, double *lhs) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += lhs[i];
  return s;
}

double fixed_checksum(double *rhs) {
  double s = 0.0;
  for (int i = 0; i < FIXED; i++)
    s += rhs[i] * 0.5;
  return s;
}

double run(int n, double *lhs, double *rhs) {
  x_solve(n, lhs, rhs);
  double a = rhs_rms(n * 5, rhs);
  double b = lhs_sum(n * 5, lhs);
  double c = fixed_checksum(rhs);
  return a + b + c;
}
"""


def _sp_inputs(scale: int) -> dict:
    n = 240 * scale
    rng = _rng(19)
    return {"n": n,
            "lhs": rng.uniform(-1, 1, n * 5),
            "rhs": rng.uniform(-1, 1, n * 5)}


register(Workload(
    name="SP", suite="NAS", source=SP_SOURCE, entry="run",
    make_inputs=_sp_inputs,
    expected={"scalar_reduction": 3},
    dominant=False, paper_coverage=7.0))


# ---------------------------------------------------------------------------
# UA — unstructured adaptive mesh: ten reductions across assembly and
# error-estimation passes; indirect scatters are write-only (no RMW) so
# they correctly do not match the histogram idiom.
# ---------------------------------------------------------------------------

UA_SOURCE = """
void scatter(int n, int *map, double *elem, double *nodal) {
  for (int e = 0; e < n; e++)
    nodal[map[e]] = elem[e];
}

void adapt_mesh(int n, double *elem, double *w) {
  for (int sweep = 0; sweep < 20; sweep++) {
    for (int e = 1; e < n - 1; e++) {
      double a = elem[(e-1)];
      double b = elem[e];
      double cc = elem[(e+1)];
      elem[e] = b + 0.05 * (a - 2.0*b + cc) + 0.01 * w[e] * b;
    }
  }
}

double norm_a(int n, double *x) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += x[i] * x[i];
  return s;
}

double norm_b(int n, double *x, double *w) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += x[i] * w[i];
  return s;
}

double dual_norms(int n, double *x, double *y) {
  double sx = 0.0;
  double sy = 0.0;
  for (int i = 0; i < n; i++) {
    sx += x[i];
    sy += y[i] * y[i];
  }
  return sx * sy;
}

double energy_pair(int n, double *x, double *y) {
  double e1 = 0.0;
  double e2 = 0.0;
  for (int i = 0; i < n; i++) {
    e1 += x[i] * y[i];
    e2 += x[i] + y[i];
  }
  return e1 - e2;
}

double max_err(int n, double *x) {
  double best = 0.0;
  for (int i = 0; i < n; i++) {
    double a = x[i] > 0.0 ? x[i] : -x[i];
    best = a > best ? a : best;
  }
  return best;
}

double min_h(int n, double *x) {
  double best = 1.0e30;
  for (int i = 0; i < n; i++)
    best = x[i] < best ? x[i] : best;
  return best;
}

double count_refine(int n, double *x, double tol) {
  double c = 0.0;
  for (int i = 0; i < n; i++) {
    if (x[i] > tol)
      c = c + 1.0;
  }
  return c;
}

double count_coarsen(int n, double *x, double tol) {
  double c = 0.0;
  for (int i = 0; i < n; i++) {
    if (x[i] < tol)
      c = c + 1.0;
  }
  return c;
}

double run(int n, int *map, double *elem, double *nodal, double *w,
           double tol) {
  scatter(n, map, elem, nodal);
  adapt_mesh(n, elem, w);
  double a = norm_a(n, nodal);
  double b = norm_b(n, nodal, w);
  double c = dual_norms(n, elem, w);
  double d = energy_pair(n, elem, nodal);
  double e = max_err(n, elem);
  double f = min_h(n, w);
  double g = count_refine(n, elem, tol);
  double h = count_coarsen(n, elem, tol);
  return a + b + c + d + e + f + g + h;
}
"""


def _ua_inputs(scale: int) -> dict:
    n = 700 * scale
    rng = _rng(20)
    return {"n": n,
            "map": rng.permutation(n).astype(np.int32),
            "elem": rng.uniform(0, 1, n),
            "nodal": np.zeros(n),
            "w": rng.uniform(0.1, 1, n),
            "tol": 0.5}


register(Workload(
    name="UA", suite="NAS", source=UA_SOURCE, entry="run",
    make_inputs=_ua_inputs,
    expected={"scalar_reduction": 10},
    dominant=False, paper_coverage=12.0))
