"""Experiment harness: regenerates every table and figure of the paper.

Run ``python -m repro.experiments <table1|table2|table3|fig16|fig17|fig18|
fig19|all>`` or use the per-experiment functions programmatically. Results
are cached per workload within a process so the figure/table functions can
share one detection+execution pass.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field

from ..backends.api import API_DESCRIPTORS, ApiCallSite
from ..backends.registry import default_registry
from ..detect.baselines import baseline_counts
from ..platform.cost import (
    OPENCL,
    OPENMP,
    best_api_cost,
    reference_time,
    site_cost,
)
from ..platform.machine import MACHINES
from ..platform.placement import (
    STRATEGIES,
    PlacementPlan,
    plan_module,
    site_at_scale,
)
from ..runtime.runner import (
    DEFAULT_ENGINE,
    ENGINE_DESCRIPTIONS,
    ENGINES,
    CompiledWorkload,
    compile_workload,
    outputs_match,
    run_accelerated,
    run_original,
)
from ..workloads import Workload, all_workloads, dominant_workloads

CATEGORIES = ["scalar_reduction", "histogram_reduction", "stencil",
              "matrix_op", "sparse_matrix_op"]

#: Iterative benchmarks where the paper's lazy-copying runtime
#: optimisation applies (the red bars of Figure 18).
LAZY_BENCHMARKS = {"CG", "lbm", "spmv", "stencil"}

CATEGORY_LABELS = {
    "scalar_reduction": "Scalar Reduction",
    "histogram_reduction": "Histogram Reduction",
    "stencil": "Stencil",
    "matrix_op": "Matrix Op.",
    "sparse_matrix_op": "Sparse Matrix Op.",
}


@dataclass
class WorkloadEvaluation:
    """Everything measured for one benchmark."""

    workload: Workload
    compiled: CompiledWorkload
    coverage: float = 0.0
    sequential_seconds: float = 0.0
    outputs_equal: bool | None = None
    sites: list[ApiCallSite] = field(default_factory=list)
    compile_base_s: float = 0.0
    compile_idl_s: float = 0.0
    #: Residency event log from the accelerated run (placement input).
    events: list = field(default_factory=list)
    events_overflowed: bool = False
    #: Dynamic opcode counts of the original run — lets a calibration
    #: profile recompute the sequential model with measured per-class
    #: scalar costs instead of the static table.
    opcode_counts: dict = field(default_factory=dict)

    @property
    def uncovered_seconds(self) -> float:
        """Paper-scale host time outside the replaced idioms."""
        return self.sequential_seconds * self.workload.paper_scale * \
            (1.0 - self.coverage)

    def uncovered_seconds_with(self, profile) -> float:
        """:attr:`uncovered_seconds` under a calibration profile's
        measured scalar costs (static model when the profile carries
        none or the opcode counts were not captured)."""
        if profile is None or not self.opcode_counts:
            return self.uncovered_seconds
        measured = profile.sequential_seconds(self.opcode_counts)
        return measured * self.workload.paper_scale * (1.0 - self.coverage)


_CACHE: dict[str, WorkloadEvaluation] = {}

#: Detection worker-pool defaults, settable from the CLI (``--workers``).
#: The report is identical at any worker count, so cached evaluations stay
#: valid across settings.
DETECT_WORKERS = 1
DETECT_MODE = "thread"
#: Solve configuration (``--ordering``): the cross-idiom plan forest by
#: default; "plan" (per-idiom static plans) and "dynamic" (the seed's
#: per-step ordering) produce bit-identical reports, more slowly.
DETECT_ORDERING = "forest"

#: Execution defaults, settable from the CLI (``--engine`` / ``--scale``;
#: the ``REPRO_ENGINE`` environment variable supplies the ``--engine``
#: default). Engines are output- and profile-identical, so results only
#: depend on the scale; both stay in the cache key because wall-clock
#: measurements differ. ``JIT_THRESHOLD`` (``--jit-threshold``) is the
#: call count at which the jit tier specializes a function; other tiers
#: ignore it.
def default_engine() -> str:
    """``$REPRO_ENGINE`` if set and valid, else :data:`DEFAULT_ENGINE`."""
    env = os.environ.get("REPRO_ENGINE")
    if env and env in ENGINES:
        return env
    return DEFAULT_ENGINE


def default_workers() -> int:
    """``$REPRO_WORKERS`` if set to a positive integer, else 1 — the
    ``--workers`` default, mirroring ``$REPRO_ENGINE``/``$REPRO_CACHE_DIR``
    so CI matrices select a pool size without editing command lines."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            value = int(env)
        except ValueError:
            return 1
        if value >= 1:
            return value
    return 1


ENGINE = default_engine()
SCALE = 1
JIT_THRESHOLD: int | None = None

#: Offload configuration, settable from the CLI (``--backends`` /
#: ``--placement``): which registry backends may lower and run matches,
#: and which planner strategy the placement experiment uses.
BACKENDS: list[str] | None = None
PLACEMENT = "beam"

#: Artifact-cache directory (``--cache-dir`` / ``--no-cache``; the
#: ``REPRO_CACHE_DIR`` environment variable supplies the default). None
#: disables the persistent cache; reports are bit-identical either way.
CACHE_DIR: str | None = None
#: Shared store instance when ``--cache-stats`` is given: every workload
#: detects through ONE ArtifactStore so hit/miss/eviction telemetry
#: aggregates across the run instead of resetting per workload.
CACHE_STORE = None

#: Detection supervision (``--deadline`` / ``--max-retries``): a
#: per-function solve wall-clock bound — overruns degrade to partial
#: results flagged in ``report.outcomes`` — and the retry budget for
#: transient worker failures (see :mod:`repro.reliability.supervisor`).
DEADLINE_S: float | None = None
MAX_RETRIES = 2

#: Active calibration profile (``--profile PATH`` loads one,
#: ``--calibrate`` measures one on this machine). None keeps every cost
#: evaluation on the documented static constants.
PROFILE = None
PROFILE_PATH: str | None = None


def load_active_profile(path: str | None = None, calibrate: bool = False,
                        out: str | None = None):
    """Resolve the session's calibration profile.

    ``calibrate`` runs the seeded microbench probes on this machine
    (and writes the result to ``out`` when given); otherwise ``path``
    names a previously written profile JSON. Returns None — static
    fallback constants — when neither is requested."""
    from ..platform.calibrate import Calibrator, read_profile_json, \
        write_profile_json
    if calibrate:
        profile = Calibrator().run()
        if out:
            write_profile_json(profile, out)
        return profile
    if path:
        return read_profile_json(path, strict=True)
    return None


def evaluate_workload(workload: Workload, scale: int | None = None,
                      execute: bool = True,
                      workers: int | None = None,
                      engine: str | None = None) -> WorkloadEvaluation:
    """Compile, detect, (optionally) run original + accelerated versions."""
    effective_workers = DETECT_WORKERS if workers is None else workers
    scale = SCALE if scale is None else scale
    engine = ENGINE if engine is None else engine
    # The report is worker-count independent, but the recorded detection
    # wall clock is not — keep the pool config in the cache key.
    backends_key = "*" if BACKENDS is None else ",".join(sorted(BACKENDS))
    key = f"{workload.name}@{scale}:{execute}:{effective_workers}:" \
          f"{DETECT_MODE}:{DETECT_ORDERING}:{engine}:{JIT_THRESHOLD}:" \
          f"{backends_key}:{CACHE_DIR}:{DEADLINE_S}:{MAX_RETRIES}"
    if key in _CACHE:
        return _CACHE[key]
    compiled = compile_workload(
        workload.name, workload.source,
        workers=effective_workers,
        detect_mode=DETECT_MODE,
        ordering=DETECT_ORDERING,
        verify=False,
        cache_dir=CACHE_STORE if CACHE_STORE is not None else CACHE_DIR,
        deadline_s=DEADLINE_S,
        max_retries=MAX_RETRIES)
    ev = WorkloadEvaluation(workload, compiled,
                            compile_base_s=compiled.compile_seconds,
                            compile_idl_s=compiled.detect_seconds)
    if execute:
        inputs = workload.make_inputs(scale)
        original = run_original(compiled, workload.entry, inputs,
                                engine=engine, jit_threshold=JIT_THRESHOLD)
        ev.coverage = original.coverage
        ev.sequential_seconds = original.sequential_seconds
        ev.opcode_counts = dict(original.opcode_counts)
        if workload.dominant:
            # The original run has already captured its outputs in private
            # buffers, so the accelerated run can transform the same
            # compiled module in place — no second compile+detect pass.
            accelerated = run_accelerated(compiled, workload.entry,
                                          workload.make_inputs(scale),
                                          engine=engine, backends=BACKENDS,
                                          jit_threshold=JIT_THRESHOLD)
            ev.outputs_equal = outputs_match(original, accelerated)
            runtime = accelerated.api_runtime
            if runtime is not None:
                ev.sites = runtime.all_sites()
                ev.events = list(runtime.events)
                ev.events_overflowed = runtime.events_overflowed
    _CACHE[key] = ev
    return ev


# ---------------------------------------------------------------------------
# Table 1 — idiom counts by detector
# ---------------------------------------------------------------------------

def table1(execute: bool = False) -> dict:
    """Rows: detector -> category -> count across all 21 benchmarks."""
    idl_row: dict[str, int] = {c: 0 for c in CATEGORIES}
    all_matches = []
    for workload in all_workloads():
        ev = evaluate_workload(workload, execute=execute)
        for category, count in ev.compiled.report.by_category().items():
            idl_row[category] = idl_row.get(category, 0) + count
        all_matches.extend(ev.compiled.report.matches)
    rows = baseline_counts(all_matches)
    table = {
        "Polly": {c: rows["Polly"].get(c, 0) for c in CATEGORIES},
        "ICC": {c: rows["ICC"].get(c, 0) for c in CATEGORIES},
        "IDL": idl_row,
    }
    return table


def print_table1() -> dict:
    table = table1()
    print("\nTable 1: idioms detected by IDL, ICC, Polly")
    header = f"{'':8s}" + "".join(f"{CATEGORY_LABELS[c]:>22s}"
                                  for c in CATEGORIES)
    print(header)
    for detector in ("Polly", "ICC", "IDL"):
        row = table[detector]
        cells = "".join(f"{row.get(c, 0) or '—':>22}" for c in CATEGORIES)
        print(f"{detector:8s}{cells}")
    return table


# ---------------------------------------------------------------------------
# Table 2 — compile-time cost
# ---------------------------------------------------------------------------

def table2() -> dict:
    """Per-benchmark compile seconds without/with IDL detection."""
    rows = {}
    for workload in all_workloads():
        ev = evaluate_workload(workload, execute=False)
        base = ev.compile_base_s
        with_idl = base + ev.compile_idl_s
        overhead = 100.0 * (with_idl - base) / base if base > 0 else 0.0
        rows[workload.name] = {
            "without_idl_s": base,
            "with_idl_s": with_idl,
            "overhead_pct": overhead,
        }
    return rows


def print_table2() -> dict:
    rows = table2()
    print("\nTable 2: compile time cost (seconds, this machine)")
    print(f"{'bench':8s}{'without':>10s}{'with IDL':>10s}{'overhead':>10s}")
    overheads = []
    for name, row in rows.items():
        overheads.append(row["overhead_pct"])
        print(f"{name:8s}{row['without_idl_s']:>10.3f}"
              f"{row['with_idl_s']:>10.3f}{row['overhead_pct']:>9.0f}%")
    print(f"{'mean':8s}{'':>10s}{'':>10s}"
          f"{sum(overheads) / len(overheads):>9.0f}%")
    return rows


# ---------------------------------------------------------------------------
# Figure 16 — idioms per benchmark / Figure 17 — runtime coverage
# ---------------------------------------------------------------------------

def fig16() -> dict:
    return {w.name: evaluate_workload(w, execute=False)
            .compiled.report.by_category()
            for w in all_workloads()}


def print_fig16() -> dict:
    data = fig16()
    print("\nFigure 16: detected idioms per benchmark")
    for name, counts in data.items():
        total = sum(counts.values())
        parts = ", ".join(f"{CATEGORY_LABELS[c]}: {n}"
                          for c, n in sorted(counts.items()))
        print(f"{name:8s} {total:2d}  {parts}")
    return data


def fig17() -> dict:
    return {w.name: 100.0 * evaluate_workload(w).coverage
            for w in all_workloads()}


def print_fig17() -> dict:
    data = fig17()
    print("\nFigure 17: runtime coverage of detected idioms (%)")
    for name, cov in data.items():
        bar = "#" * int(cov / 2.5)
        print(f"{name:8s} {cov:5.1f} {bar}")
    return data


# ---------------------------------------------------------------------------
# Table 3 / Figure 18 / Figure 19 — performance
# ---------------------------------------------------------------------------



def _accelerated_seconds(ev: WorkloadEvaluation, api, machine,
                         lazy: bool) -> float | None:
    """End-to-end simulated seconds on ``machine``.

    ``api`` is used for every site it supports; remaining sites fall back
    to the best available API (the paper maps different idioms of one
    program to different APIs and "pick[s] the best executing code").
    Returns None when ``api`` supports none of the program's idioms on
    this machine.
    """
    if not ev.sites:
        return None
    scale = ev.workload.paper_scale
    total = ev.uncovered_seconds
    used_api = False
    for site in ev.sites:
        # Shared with the placement layer: matrix_op bytes scale with the
        # 2/3 power of the element factor, everything else linearly.
        scaled = site_at_scale(site, scale)
        if api.supports(machine.name, site.category):
            used_api = True
            total += site_cost(scaled, api, machine, lazy).total_s
        else:
            best = best_api_cost(scaled, list(API_DESCRIPTORS.values()),
                                 machine, lazy)
            if best is None:
                return None
            total += best[1].total_s
    return total if used_api else None


def table3(scale: int | None = None) -> dict:
    """benchmark -> platform -> api -> simulated milliseconds."""
    results: dict = {}
    for workload in dominant_workloads():
        ev = evaluate_workload(workload, scale)
        per_platform: dict = {}
        for mname, machine in MACHINES.items():
            row = {}
            for api in API_DESCRIPTORS.values():
                seconds = _accelerated_seconds(ev, api, machine, lazy=True)
                if seconds is not None:
                    row[api.name] = seconds * 1e3
            per_platform[mname] = row
        results[workload.name] = per_platform
    return results


def print_table3() -> dict:
    data = table3()
    print("\nTable 3: per-API runtime (simulated ms; fastest per platform *)")
    for bench, platforms in data.items():
        for mname, row in platforms.items():
            if not row:
                continue
            best = min(row.values())
            cells = "  ".join(
                f"{api}={ms:.3f}{'*' if ms == best else ''}"
                for api, ms in sorted(row.items()))
            print(f"{bench:8s} {mname:5s} {cells}")
    return data


def fig18() -> dict:
    """benchmark -> platform -> dict(speedup, api, lazy_speedup).

    The "lazy" entry exists only for the iterative benchmarks the paper's
    runtime optimisation covers; other benchmarks report "eager" only and
    the consumer falls back accordingly.
    """
    results: dict = {}
    for workload in dominant_workloads():
        ev = evaluate_workload(workload)
        per_platform: dict = {}
        lazy_modes = (False, True) if workload.name in LAZY_BENCHMARKS \
            else (False,)
        for mname, machine in MACHINES.items():
            apis = list(API_DESCRIPTORS.values())
            entries = {}
            for lazy in lazy_modes:
                best_total, best_api = None, None
                for api in apis:
                    seconds = _accelerated_seconds(ev, api, machine, lazy)
                    if seconds is None:
                        continue
                    if best_total is None or seconds < best_total:
                        best_total, best_api = seconds, api.name
                if best_total is not None and best_total > 0:
                    seq = ev.sequential_seconds * ev.workload.paper_scale
                    entries["lazy" if lazy else "eager"] = {
                        "speedup": seq / best_total,
                        "api": best_api,
                    }
            per_platform[mname] = entries
        results[workload.name] = per_platform
    return results


def print_fig18() -> dict:
    data = fig18()
    print("\nFigure 18: speedup vs sequential (simulated; * = with the "
          "lazy-transfer runtime optimisation)")
    print(f"{'bench':8s}{'cpu':>12s}{'igpu':>12s}{'gpu':>12s}   best")
    for name, platforms in data.items():
        cells = []
        best_platform, best_speed = None, 0.0
        for mname in ("cpu", "igpu", "gpu"):
            entry = platforms.get(mname, {})
            chosen = entry.get("lazy") or entry.get("eager")
            mark = "*" if "lazy" in entry else " "
            speed = chosen["speedup"] if chosen else 0.0
            cells.append(f"{speed:>10.2f}x{mark}")
            if speed > best_speed:
                best_speed, best_platform = speed, mname
        print(f"{name:8s}" + "".join(cells) +
              f"  {best_platform} ({best_speed:.2f}x)")
    return data


def fig19() -> dict:
    """benchmark -> {idl, opencl, openmp} speedups vs sequential."""
    results: dict = {}
    best_api = fig18()
    for workload in dominant_workloads():
        ev = evaluate_workload(workload)
        platforms = best_api[workload.name]
        idl_best = 0.0
        for m in ("cpu", "igpu", "gpu"):
            entry = platforms.get(m, {})
            chosen = entry.get("lazy") or entry.get("eager")
            if chosen:
                idl_best = max(idl_best, chosen["speedup"])
        seq = ev.sequential_seconds
        omp = seq / reference_time(seq, ev.coverage, OPENMP,
                                   whole_program=True)
        # The handwritten OpenCL version runs the same kernels on the GPU:
        # comparable to our generated code unless the reference rewrote
        # the algorithm (EP, IS, MG, tpacf per the paper), where it wins
        # by parallelising/restructuring the entire application.
        gpu_entry = platforms.get("gpu", {})
        gpu_chosen = gpu_entry.get("lazy") or gpu_entry.get("eager")
        idl_gpu = gpu_chosen["speedup"] if gpu_chosen else idl_best
        if workload.reference_rewrites_algorithm:
            ocl = max(idl_gpu * 4.0, OPENCL.base_factor)
        else:
            ocl = idl_gpu * 0.95
        results[workload.name] = {
            "IDL": idl_best, "OpenCL": ocl, "OpenMP": omp,
        }
    return results


def print_fig19() -> dict:
    data = fig19()
    print("\nFigure 19: IDL (best device) vs handwritten OpenCL / OpenMP")
    print(f"{'bench':8s}{'IDL':>10s}{'OpenCL':>10s}{'OpenMP':>10s}")
    for name, row in data.items():
        print(f"{name:8s}{row['IDL']:>9.2f}x{row['OpenCL']:>9.2f}x"
              f"{row['OpenMP']:>9.2f}x")
    return data


# ---------------------------------------------------------------------------
# Offload placement — residency-aware whole-module planning
# ---------------------------------------------------------------------------

def workload_plans(ev: WorkloadEvaluation,
                   strategy: str | None = None,
                   profile=None
                   ) -> tuple[PlacementPlan, PlacementPlan]:
    """(per-site-greedy plan, planner plan) for one evaluated workload.

    Both are costed under the exact residency model, so the comparison
    isolates *assignment quality*: greedy places each site in isolation
    with the legacy lazy/eager formula (the seed policy, lazy only where
    the paper's §8.3 optimisation applied), the planner optimises the
    whole module. A calibration ``profile`` (default: the session's
    :data:`PROFILE`) swaps measured parameters into both evaluations —
    greedy's *picks* stay static, so the gap shows what trusting the
    unmeasured constants costs.
    """
    strategy = PLACEMENT if strategy is None else strategy
    profile = PROFILE if profile is None else profile
    kwargs = dict(
        backends=BACKENDS,
        host_seconds=ev.uncovered_seconds_with(profile),
        scale=ev.workload.paper_scale,
        greedy_lazy=ev.workload.name in LAZY_BENCHMARKS,
        events_overflowed=ev.events_overflowed,
        profile=profile,
    )
    greedy = plan_module(ev.sites, ev.events, strategy="greedy", **kwargs)
    planner = plan_module(ev.sites, ev.events, strategy=strategy, **kwargs)
    return greedy, planner


def placement() -> dict:
    """benchmark -> {greedy_ms, planner_ms, speedup, sites}."""
    results: dict = {}
    for workload in dominant_workloads():
        ev = evaluate_workload(workload)
        greedy, planner = workload_plans(ev)
        results[workload.name] = {
            "greedy_ms": greedy.total_s * 1e3,
            "planner_ms": planner.total_s * 1e3,
            "speedup": greedy.total_s / planner.total_s
            if planner.total_s > 0 else 1.0,
            "strategy": planner.strategy,
            "sites": planner.as_dict()["sites"],
        }
    return results


def print_placement() -> dict:
    data = placement()
    print(f"\nOffload placement: whole-module planner ({PLACEMENT}) vs "
          f"per-site greedy (simulated ms)")
    print(f"{'bench':8s}{'greedy':>12s}{'planner':>12s}{'gain':>8s}"
          f"   assignment")
    for name, row in data.items():
        assigns = ", ".join(f"{s['api']}@{s['device']}"
                            for s in row["sites"][:4])
        if len(row["sites"]) > 4:
            assigns += f", … ({len(row['sites'])} sites)"
        print(f"{name:8s}{row['greedy_ms']:>12.3f}{row['planner_ms']:>12.3f}"
              f"{row['speedup']:>7.2f}x   {assigns}")
    return data


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def print_catalog() -> None:
    """``--list``: workloads, engines, backends, placement strategies."""
    print("Workloads (NAS + Parboil recreations):")
    for w in all_workloads():
        census = ", ".join(f"{c}:{n}" for c, n in sorted(w.expected.items())
                           if n) or "-"
        flag = " [dominant]" if w.dominant else ""
        print(f"  {w.name:8s} {w.suite:8s} {census}{flag}")
    print("\nExecution tiers (--engine; $REPRO_ENGINE sets the default):")
    for name in sorted(ENGINES):
        default = " (default)" if name == default_engine() else ""
        description = ENGINE_DESCRIPTIONS.get(name, "")
        print(f"  {name:10s}{description}{default}")
    print("\nBackends (--backends):")
    for entry in default_registry().entries():
        apis = ", ".join(d.name for d in entry.descriptors)
        categories = ", ".join(entry.contracts) or "descriptors only"
        print(f"  {entry.name:14s} {entry.title}")
        print(f"  {'':14s}   APIs: {apis}")
        print(f"  {'':14s}   lowers: {categories}")
    print("\nPlacement strategies (--placement):")
    for name in STRATEGIES:
        default = " (default)" if name == PLACEMENT else ""
        print(f"  {name}{default}")
    print("\nExperiments:", ", ".join(list(_EXPERIMENTS) + ["all"]))


_EXPERIMENTS = {
    "table1": print_table1,
    "table2": print_table2,
    "table3": print_table3,
    "fig16": print_fig16,
    "fig17": print_fig17,
    "fig18": print_fig18,
    "fig19": print_fig19,
    "placement": print_placement,
}


def print_cache_stats() -> None:
    """``--cache-stats``: the shared store's aggregate telemetry."""
    if CACHE_STORE is None:
        print("\nArtifact store: disabled (no cache directory)")
        return
    stats = CACHE_STORE.stats.as_dict()
    print(f"\nArtifact store ({CACHE_STORE.root}):")
    print(f"  hits={stats['hits']} misses={stats['misses']} "
          f"writes={stats['writes']} evictions={stats['evictions']}")
    print(f"  bytes={CACHE_STORE.total_bytes()}"
          + (f" budget={CACHE_STORE.budget_bytes}"
             f" policy={CACHE_STORE.eviction}"
             if CACHE_STORE.budget_bytes is not None else "")
          + f" corrupt={stats['corrupt']} "
            f"write_errors={stats['write_errors']}")


def main(argv: list[str] | None = None) -> int:
    global DETECT_WORKERS, DETECT_MODE, DETECT_ORDERING, ENGINE, SCALE, \
        JIT_THRESHOLD, BACKENDS, PLACEMENT, CACHE_DIR, CACHE_STORE, \
        DEADLINE_S, MAX_RETRIES, PROFILE, PROFILE_PATH

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures (simulated)")
    parser.add_argument("experiment", nargs="?",
                        choices=list(_EXPERIMENTS) + ["all"])
    parser.add_argument("--list", action="store_true",
                        help="print available workloads, engines, backends "
                             "and placement strategies, then exit")
    parser.add_argument("--workers", type=int, default=default_workers(),
                        help="detection worker pool size (default "
                             f"{default_workers()}, override with "
                             "$REPRO_WORKERS)")
    parser.add_argument("--detect-mode", choices=["thread", "process"],
                        default="thread",
                        help="worker pool flavour for detection")
    parser.add_argument("--ordering",
                        choices=["forest", "plan", "dynamic"],
                        default=DETECT_ORDERING,
                        help="constraint-solve configuration: the fused "
                             "cross-idiom plan forest (default), per-idiom "
                             "static plans, or the seed's dynamic ordering "
                             "— reports are bit-identical")
    parser.add_argument("--engine", choices=sorted(ENGINES),
                        default=default_engine(),
                        help="execution tier (default "
                             f"{default_engine()}, override with "
                             "$REPRO_ENGINE; 'reference' is the "
                             "tree-walking interpreter, 'jit' adds "
                             "profile-guided specialization on the vm)")
    parser.add_argument("--jit-threshold", type=int, default=None,
                        metavar="N",
                        help="calls before the jit tier specializes a "
                             "function (default 1: compile on first "
                             "entry; ignored by other engines)")
    parser.add_argument("--scale", type=int, default=1,
                        help="problem-size multiplier for workload inputs "
                             "(default 1; larger-than-paper sizes need the "
                             "vm engine to stay tractable)")
    parser.add_argument("--backends", nargs="*", default=None,
                        metavar="NAME",
                        help="restrict lowering and placement to these "
                             "registry backends (see --list; default: all)")
    parser.add_argument("--placement", choices=list(STRATEGIES),
                        default=PLACEMENT,
                        help="offload planner strategy for the 'placement' "
                             f"experiment (default {PLACEMENT})")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent detection artifact cache "
                             "directory (default: $REPRO_CACHE_DIR if "
                             "set, else disabled); warm runs serve "
                             "unchanged functions from disk with "
                             "bit-identical reports")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the artifact cache even if "
                             "$REPRO_CACHE_DIR is set")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print aggregate artifact-store telemetry "
                             "(hits, misses, bytes, evictions) after the "
                             "experiments; requires a cache directory")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-function detection solve deadline; "
                             "overruns yield partial results flagged in "
                             "the report outcomes (default: none)")
    parser.add_argument("--max-retries", type=int, default=2, metavar="N",
                        help="retry budget for transient detection "
                             "worker failures before the session "
                             "degrades to a safer tier (default 2)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="load a measured calibration profile (JSON "
                             "written by --calibrate) and cost every "
                             "placement with it; default: the static "
                             "fallback constants")
    parser.add_argument("--calibrate", action="store_true",
                        help="run the seeded calibration microbenchmarks "
                             "on this machine and use (and, with "
                             "--profile PATH, write) the resulting "
                             "profile for this session")
    parser.add_argument("--fault-plan", default=None, metavar="PLAN",
                        help="deterministic fault-injection plan: inline "
                             "JSON or @path to a JSON file (also "
                             "$REPRO_FAULT_PLAN); reliability testing "
                             "only — results must stay bit-identical")
    args = parser.parse_args(argv)
    if args.list:
        print_catalog()
        return 0
    if args.experiment is None:
        parser.error("an experiment is required unless --list is given")
    if args.backends is not None:
        known = set(default_registry().names())
        unknown = sorted(set(args.backends) - known)
        if unknown:
            parser.error(f"unknown backends: {', '.join(unknown)} "
                         f"(choose from {', '.join(sorted(known))})")
    DETECT_WORKERS = args.workers
    DETECT_MODE = args.detect_mode
    DETECT_ORDERING = args.ordering
    ENGINE = args.engine
    SCALE = args.scale
    JIT_THRESHOLD = args.jit_threshold
    BACKENDS = args.backends
    PLACEMENT = args.placement
    DEADLINE_S = args.deadline
    MAX_RETRIES = args.max_retries
    PROFILE_PATH = args.profile
    PROFILE = load_active_profile(args.profile, calibrate=args.calibrate,
                                  out=args.profile if args.calibrate
                                  else None)
    if args.fault_plan is not None:
        from ..reliability import faults
        faults.install_plan(args.fault_plan)
    if args.no_cache:
        CACHE_DIR = None
    else:
        CACHE_DIR = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") \
            or None
    CACHE_STORE = None
    if args.cache_stats and CACHE_DIR is not None:
        from ..cache import ArtifactStore

        CACHE_STORE = ArtifactStore(CACHE_DIR)
    if args.experiment == "all":
        for fn in _EXPERIMENTS.values():
            fn()
    else:
        _EXPERIMENTS[args.experiment]()
    if args.cache_stats:
        print_cache_stats()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
