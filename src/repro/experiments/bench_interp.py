"""Execution-engine benchmark: reference tree-walker vs register VM.

Runs every NAS + Parboil workload through both execution engines on
identical inputs, checks output and dynamic-count equivalence as it goes,
and records seconds plus dynamic-instruction throughput per workload::

    PYTHONPATH=src python -m repro.experiments.bench_interp \
        --output BENCH_interp.json

CI runs the smoke variant, which re-measures a representative subset and
fails when any workload's VM-over-reference speedup degrades more than
``--max-ratio`` (default 2x) against the committed baseline. Comparing the
speedup *ratio* — both engines timed on the same machine in the same
process — keeps the gate meaningful on arbitrarily slow CI hardware::

    PYTHONPATH=src python -m repro.experiments.bench_interp --check \
        --baseline BENCH_interp.json --workloads CG IS histo sgemm stencil

Per-block profile identity (stronger than the total/opcode checks here) is
asserted by ``tests/test_vm.py`` on every workload.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..runtime.runner import compile_workload, outputs_match, run_original
from .suites import select_workloads
from .timing import best_of, geomean


def _timed_run(compiled, workload, scale: int, engine: str, repeat: int):
    best, result = best_of(
        lambda: run_original(compiled, workload.entry,
                             workload.make_inputs(scale), engine=engine),
        repeat)
    return result, best


def run_benchmark(workload_names: list[str] | None = None, scale: int = 1,
                  repeat: int = 1) -> dict:
    """Measure both engines per workload, verifying equivalence en route."""
    rows: dict[str, dict] = {}
    for workload in select_workloads(workload_names):
        compiled = compile_workload(workload.name, workload.source,
                                    verify=False)
        vm_result, vm_s = _timed_run(compiled, workload, scale, "vm", repeat)
        ref_result, ref_s = _timed_run(compiled, workload, scale,
                                       "reference", repeat)
        if not outputs_match(ref_result, vm_result):
            raise AssertionError(f"{workload.name}: engine outputs diverge")
        if (ref_result.total_instructions != vm_result.total_instructions
                or ref_result.opcode_counts != vm_result.opcode_counts):
            raise AssertionError(
                f"{workload.name}: engine dynamic counts diverge")
        dyn = vm_result.total_instructions
        rows[workload.name] = {
            "dynamic_instructions": dyn,
            "reference_seconds": round(ref_s, 4),
            "vm_seconds": round(vm_s, 4),
            "reference_minst_per_s": round(dyn / ref_s / 1e6, 3),
            "vm_minst_per_s": round(dyn / vm_s / 1e6, 3),
            "speedup": round(ref_s / vm_s, 2),
        }
    result = {"workloads": rows}
    if rows:
        result["suite"] = {
            "geomean_speedup": round(
                geomean(r["speedup"] for r in rows.values()), 2),
            "reference_seconds": round(
                sum(r["reference_seconds"] for r in rows.values()), 4),
            "vm_seconds": round(
                sum(r["vm_seconds"] for r in rows.values()), 4),
            "dynamic_instructions": sum(
                r["dynamic_instructions"] for r in rows.values()),
        }
    return result


def check_regression(baseline: dict, current: dict,
                     max_ratio: float) -> list[str]:
    """Workloads whose VM speedup degraded beyond ``max_ratio``."""
    failures = []
    for name, row in current["workloads"].items():
        base_row = baseline["workloads"].get(name)
        if base_row is None:
            continue
        base = base_row["speedup"]
        now = row["speedup"]
        if base > 0 and now < base / max_ratio:
            failures.append(
                f"{name}: vm speedup {now:.2f}x vs baseline {base:.2f}x "
                f"(> {max_ratio:.1f}x throughput regression)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-interp",
        description="Benchmark the reference interpreter vs the register VM")
    parser.add_argument("--output", default=None,
                        help="write full results JSON here")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these benchmarks (default: all)")
    parser.add_argument("--scale", type=int, default=1,
                        help="problem-size multiplier (default 1)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="timing repetitions, best-of (default 1)")
    parser.add_argument("--check", action="store_true",
                        help="regression-check vm speedups against "
                             "--baseline")
    parser.add_argument("--baseline", default="BENCH_interp.json")
    parser.add_argument("--max-ratio", type=float, default=2.0)
    args = parser.parse_args(argv)

    result = run_benchmark(args.workloads, scale=args.scale,
                           repeat=args.repeat)

    for name, row in result["workloads"].items():
        print(f"{name:8s} ref={row['reference_seconds']:>8.3f}s "
              f"vm={row['vm_seconds']:>7.3f}s "
              f"({row['speedup']:.2f}x, "
              f"{row['vm_minst_per_s']:.2f} Minst/s)")
    suite = result.get("suite")
    if suite:
        print(f"suite    ref={suite['reference_seconds']:.2f}s "
              f"vm={suite['vm_seconds']:.2f}s "
              f"(geomean {suite['geomean_speedup']:.2f}x)")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"baseline {args.baseline!r} not found — generate it "
                  f"with --output first", file=sys.stderr)
            return 2
        failures = check_regression(baseline, result, args.max_ratio)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"vm speedups within {args.max_ratio:.1f}x of baseline")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
