"""Execution-tier benchmark: reference tree-walker vs register VM vs JIT.

Runs every NAS + Parboil workload through all three execution tiers on
identical inputs, checks output and dynamic-count equivalence as it goes
(vm↔jit bit-identically), and records seconds plus dynamic-instruction
throughput per workload and tier::

    PYTHONPATH=src python -m repro.experiments.bench_interp \
        --repeat 3 --output BENCH_interp.json

``--repeat`` matters for the jit tier: the first run pays compilation,
later runs hit the process-wide code cache, so best-of-N reports warm
steady-state (the tier a long-running session actually sees).

CI runs the smoke variant, which re-measures a representative subset and
fails when any workload's VM-over-reference speedup degrades more than
``--max-ratio`` (default 2x) against the committed baseline, or when the
jit tier's geomean over the VM drops below ``--min-jit-ratio`` (default
1.0: jit must never be slower than the VM it sits on). Comparing speedup
*ratios* — all tiers timed on the same machine in the same process —
keeps the gate meaningful on arbitrarily slow CI hardware::

    PYTHONPATH=src python -m repro.experiments.bench_interp --check \
        --repeat 3 --baseline BENCH_interp.json \
        --workloads CG IS histo sgemm stencil

Per-block profile identity (stronger than the total/opcode checks here) is
asserted by ``tests/test_vm.py`` and ``tests/test_jit.py`` on every
workload.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..runtime.runner import (
    compile_workload,
    outputs_identical,
    outputs_match,
    run_original,
)
from .suites import select_workloads
from .timing import best_of, geomean

TIERS = ("reference", "vm", "jit")


def _timed_run(compiled, workload, scale: int, engine: str, repeat: int):
    best, result = best_of(
        lambda: run_original(compiled, workload.entry,
                             workload.make_inputs(scale), engine=engine),
        repeat)
    return result, best


def run_benchmark(workload_names: list[str] | None = None, scale: int = 1,
                  repeat: int = 1) -> dict:
    """Measure all three tiers per workload, verifying equivalence."""
    rows: dict[str, dict] = {}
    for workload in select_workloads(workload_names):
        compiled = compile_workload(workload.name, workload.source,
                                    verify=False)
        vm_result, vm_s = _timed_run(compiled, workload, scale, "vm", repeat)
        jit_result, jit_s = _timed_run(compiled, workload, scale, "jit",
                                       repeat)
        ref_result, ref_s = _timed_run(compiled, workload, scale,
                                       "reference", repeat)
        if not outputs_match(ref_result, vm_result):
            raise AssertionError(f"{workload.name}: engine outputs diverge")
        if not outputs_identical(vm_result, jit_result):
            raise AssertionError(
                f"{workload.name}: jit outputs not bit-identical to vm")
        for other, tier in ((ref_result, "reference"), (jit_result, "jit")):
            if (other.total_instructions != vm_result.total_instructions
                    or other.opcode_counts != vm_result.opcode_counts):
                raise AssertionError(
                    f"{workload.name}: {tier} dynamic counts diverge "
                    f"from vm")
        dyn = vm_result.total_instructions
        rows[workload.name] = {
            "dynamic_instructions": dyn,
            "reference_seconds": round(ref_s, 4),
            "vm_seconds": round(vm_s, 4),
            "jit_seconds": round(jit_s, 4),
            "reference_minst_per_s": round(dyn / ref_s / 1e6, 3),
            "vm_minst_per_s": round(dyn / vm_s / 1e6, 3),
            "jit_minst_per_s": round(dyn / jit_s / 1e6, 3),
            "speedup": round(ref_s / vm_s, 2),
            "jit_speedup": round(ref_s / jit_s, 2),
            "jit_over_vm": round(vm_s / jit_s, 2),
        }
    result = {"workloads": rows}
    if rows:
        result["suite"] = {
            "geomean_speedup": round(
                geomean(r["speedup"] for r in rows.values()), 2),
            "geomean_jit_speedup": round(
                geomean(r["jit_speedup"] for r in rows.values()), 2),
            "geomean_jit_over_vm": round(
                geomean(r["jit_over_vm"] for r in rows.values()), 2),
            "reference_seconds": round(
                sum(r["reference_seconds"] for r in rows.values()), 4),
            "vm_seconds": round(
                sum(r["vm_seconds"] for r in rows.values()), 4),
            "jit_seconds": round(
                sum(r["jit_seconds"] for r in rows.values()), 4),
            "dynamic_instructions": sum(
                r["dynamic_instructions"] for r in rows.values()),
        }
    return result


def check_regression(baseline: dict, current: dict, max_ratio: float,
                     min_jit_ratio: float = 1.0) -> list[str]:
    """Failures: VM speedups that degraded beyond ``max_ratio`` against
    the baseline, or a jit tier slower than the VM overall."""
    failures = []
    for name, row in current["workloads"].items():
        base_row = baseline["workloads"].get(name)
        if base_row is None:
            continue
        base = base_row["speedup"]
        now = row["speedup"]
        if base > 0 and now < base / max_ratio:
            failures.append(
                f"{name}: vm speedup {now:.2f}x vs baseline {base:.2f}x "
                f"(> {max_ratio:.1f}x throughput regression)")
    rows = current["workloads"].values()
    if rows:
        jit_geomean = geomean(r["jit_over_vm"] for r in rows)
        if jit_geomean < min_jit_ratio:
            failures.append(
                f"jit geomean over vm {jit_geomean:.2f}x < "
                f"{min_jit_ratio:.2f}x on measured subset")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-interp",
        description="Benchmark the three execution tiers "
                    "(reference / vm / jit)")
    parser.add_argument("--output", default=None,
                        help="write full results JSON here")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these benchmarks (default: all)")
    parser.add_argument("--scale", type=int, default=1,
                        help="problem-size multiplier (default 1)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="timing repetitions, best-of (default 1; "
                             "use >=2 so the jit tier is timed warm)")
    parser.add_argument("--check", action="store_true",
                        help="regression-check tier speedups against "
                             "--baseline")
    parser.add_argument("--baseline", default="BENCH_interp.json")
    parser.add_argument("--max-ratio", type=float, default=2.0)
    parser.add_argument("--min-jit-ratio", type=float, default=1.0,
                        help="fail --check when geomean(vm/jit seconds) "
                             "drops below this (default 1.0)")
    args = parser.parse_args(argv)

    result = run_benchmark(args.workloads, scale=args.scale,
                           repeat=args.repeat)

    for name, row in result["workloads"].items():
        print(f"{name:8s} ref={row['reference_seconds']:>8.3f}s "
              f"vm={row['vm_seconds']:>7.3f}s "
              f"jit={row['jit_seconds']:>7.3f}s "
              f"(vm {row['speedup']:.2f}x, jit {row['jit_speedup']:.2f}x, "
              f"jit/vm {row['jit_over_vm']:.2f}x, "
              f"{row['jit_minst_per_s']:.2f} Minst/s)")
    suite = result.get("suite")
    if suite:
        print(f"suite    ref={suite['reference_seconds']:.2f}s "
              f"vm={suite['vm_seconds']:.2f}s "
              f"jit={suite['jit_seconds']:.2f}s "
              f"(geomean vm {suite['geomean_speedup']:.2f}x, "
              f"jit {suite['geomean_jit_speedup']:.2f}x, "
              f"jit/vm {suite['geomean_jit_over_vm']:.2f}x)")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"baseline {args.baseline!r} not found — generate it "
                  f"with --output first", file=sys.stderr)
            return 2
        failures = check_regression(baseline, result, args.max_ratio,
                                    args.min_jit_ratio)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"vm speedups within {args.max_ratio:.1f}x of baseline; "
              f"jit geomean over vm >= {args.min_jit_ratio:.1f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
