"""Solver-stats benchmark: seed-style dynamic solving vs compiled plans.

Runs idiom detection over the NAS + Parboil suite twice — once in the
seed configuration (dynamic conjunct ordering, no memoized building
blocks, unindexed generators) and once with the compiled execution plans —
and records :class:`~repro.idl.solver.SolverStats` tick totals plus wall
clock per workload::

    PYTHONPATH=src python -m repro.experiments.bench_solver \
        --output BENCH_solver.json

CI runs the smoke variant, which re-measures the plan configuration only
and fails when any workload's step count regresses more than ``--max-ratio``
(default 2x) against the committed baseline::

    PYTHONPATH=src python -m repro.experiments.bench_solver --check \
        --baseline BENCH_solver.json --workloads CG IS histo sgemm stencil

The benchmark sanity-checks that both configurations agree on per-idiom
match counts as it goes; full solution-set equivalence is asserted by
``tests/test_plan_scheduler.py``.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..idioms import IdiomDetector
from .suites import compile_suite
from .timing import timed


def _detect(detector: IdiomDetector, module) -> tuple:
    seconds, report = timed(lambda: detector.detect(module))
    return report, seconds


def run_benchmark(workload_names: list[str] | None = None,
                  legacy: bool = True) -> dict:
    """Measure per-workload solver stats; optionally skip the legacy pass."""
    # This benchmark tracks the *per-idiom* plan executor (the detector's
    # default is now the cross-idiom forest; bench_detect covers it).
    plan_detector = IdiomDetector(ordering="plan")
    legacy_detector = IdiomDetector(ordering="dynamic", memo=False,
                                    indexed=False)
    rows: dict[str, dict] = {}
    for workload, module in compile_suite(workload_names):
        plan_report, plan_s = _detect(plan_detector, module)
        row = {
            "plan_ticks": plan_report.stats.ticks,
            "plan_seconds": round(plan_s, 4),
            "matches": plan_report.total(),
        }
        if legacy:
            legacy_report, legacy_s = _detect(legacy_detector, module)
            if legacy_report.by_idiom() != plan_report.by_idiom():
                raise AssertionError(
                    f"{workload.name}: plan and dynamic solving disagree: "
                    f"{plan_report.by_idiom()} vs {legacy_report.by_idiom()}")
            row["legacy_ticks"] = legacy_report.stats.ticks
            row["legacy_seconds"] = round(legacy_s, 4)
            row["reduction"] = round(
                legacy_report.stats.ticks / max(1, plan_report.stats.ticks),
                2)
        rows[workload.name] = row
    result = {"workloads": rows}
    plan_total = sum(r["plan_ticks"] for r in rows.values())
    summary = {"plan_ticks": plan_total}
    if legacy and rows:
        legacy_total = sum(r["legacy_ticks"] for r in rows.values())
        summary["legacy_ticks"] = legacy_total
        summary["reduction"] = round(legacy_total / max(1, plan_total), 2)
    result["suite"] = summary
    return result


def check_regression(baseline: dict, current: dict,
                     max_ratio: float) -> list[str]:
    """Workloads whose plan-mode step count regressed beyond ``max_ratio``."""
    failures = []
    for name, row in current["workloads"].items():
        base_row = baseline["workloads"].get(name)
        if base_row is None:
            continue
        base = base_row["plan_ticks"]
        now = row["plan_ticks"]
        if base > 0 and now > max_ratio * base:
            failures.append(
                f"{name}: plan ticks {now} vs baseline {base} "
                f"(> {max_ratio:.1f}x)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-solver",
        description="Benchmark dynamic vs plan-driven constraint solving")
    parser.add_argument("--output", default=None,
                        help="write full results JSON here")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these benchmarks (default: all)")
    parser.add_argument("--check", action="store_true",
                        help="regression-check plan ticks against --baseline "
                             "instead of running the legacy pass")
    parser.add_argument("--baseline", default="BENCH_solver.json")
    parser.add_argument("--max-ratio", type=float, default=2.0)
    args = parser.parse_args(argv)

    result = run_benchmark(args.workloads, legacy=not args.check)

    for name, row in result["workloads"].items():
        if "legacy_ticks" in row:
            print(f"{name:8s} legacy={row['legacy_ticks']:>8d} "
                  f"plan={row['plan_ticks']:>8d} "
                  f"({row['reduction']:.2f}x, {row['legacy_seconds']:.2f}s "
                  f"-> {row['plan_seconds']:.2f}s)")
        else:
            print(f"{name:8s} plan={row['plan_ticks']:>8d} "
                  f"({row['plan_seconds']:.2f}s)")
    suite = result["suite"]
    if "reduction" in suite:
        print(f"suite    legacy={suite['legacy_ticks']} "
              f"plan={suite['plan_ticks']} ({suite['reduction']:.2f}x)")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"baseline {args.baseline!r} not found — generate it "
                  f"with --output first", file=sys.stderr)
            return 2
        failures = check_regression(baseline, result, args.max_ratio)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"step counts within {args.max_ratio:.1f}x of baseline")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
