"""Fault-injection benchmark: reliability under deterministic faults,
and the cost of having the seams compiled in.

Drives the :mod:`repro.reliability` layer end to end over the NAS +
Parboil suite::

    PYTHONPATH=src python -m repro.experiments.bench_faults \
        --output BENCH_faults.json

Three stanzas:

* **matrix** — one detection run per meaningful (seam, kind) pair from
  :mod:`repro.reliability.faults` (store read/write faults against the
  artifact cache, torn writes that must read back as corrupt misses,
  worker exceptions/hangs in thread pools, worker crashes and poisoned
  spawns in process pools). Every run must complete with no unhandled
  exception, produce a match set bit-identical to the fault-free
  baseline, and record the handled fault in the session outcomes.
* **execution** — a guarded transformed workload executed while every
  dispatch of one backend call site fails, and a JIT-tier run where
  every specialization attempt fails. Both must fall back (original
  loop / register VM) and reproduce the fault-free outputs.
* **overhead** — full-suite detection with no plan installed vs an
  installed-but-empty plan, measuring what the seams cost when armed.
  The acceptance gate: active-empty within ``--max-ratio`` (default
  1.03) of inactive.

CI runs the smoke variant and fails on any divergence or an overhead
ratio above the gate::

    PYTHONPATH=src python -m repro.experiments.bench_faults --check
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from ..idioms import DetectionSession, IdiomDetector, report_fingerprint
from ..reliability import faults
from ..runtime.runner import (
    compile_workload,
    outputs_match,
    run_original,
    run_transformed,
)
from ..transform.replace import Transformer
from ..backends.api import ApiRuntime
from ..workloads import all_workloads
from .suites import compile_suite
from .timing import best_of

#: Timing repetitions for the overhead stanza; best-of, as everywhere in
#: the benchmarks (--check raises it).
REPEATS = 5

#: The (seam, kind) matrix. ``cache`` scenarios run against a fresh
#: artifact store (the store seams never fire otherwise); ``warm``
#: populates it first so read faults hit real entries. Process-pool
#: scenarios run on the first workload only — each module costs the
#: faulted run one pool respawn, which dominates the benchmark without
#: adding coverage.
SCENARIOS = (
    {"name": "store.write/exception", "cache": True,
     "specs": [{"site": "store.write", "kind": "exception", "at": [0]}]},
    {"name": "store.write/torn", "cache": True,
     "specs": [{"site": "store.write", "kind": "torn", "at": [0]}]},
    {"name": "store.read/exception", "cache": True, "warm": True,
     "specs": [{"site": "store.read", "kind": "exception", "at": [0]}]},
    {"name": "worker.solve/exception", "workers": 2, "mode": "thread",
     "specs": [{"site": "worker.solve", "kind": "exception", "at": [0],
                "epochs": [0]}]},
    {"name": "worker.solve/hang",
     "specs": [{"site": "worker.solve", "kind": "hang", "at": [0],
                "seconds": 0.05}]},
    {"name": "worker.solve/hang-past-deadline", "workers": 2,
     "mode": "process", "limit": 1, "deadline": 0.4,
     "specs": [{"site": "worker.solve", "kind": "hang", "at": [0],
                "epochs": [0], "seconds": 30.0}]},
    {"name": "worker.spawn/exception", "workers": 2, "mode": "process",
     "limit": 1,
     "specs": [{"site": "worker.spawn", "kind": "exception", "at": [0],
                "epochs": [0]}]},
    {"name": "worker.solve/crash", "workers": 2, "mode": "process",
     "limit": 1,
     "specs": [{"site": "worker.solve", "kind": "crash", "at": [0],
                "epochs": [0]}]},
)


def _fingerprints(modules, detector) -> dict:
    out = {}
    for name, module in modules:
        report = DetectionSession(detector).detect(module)
        out[name] = report_fingerprint(report, by_identity=False)
    return out


def _run_scenario(scenario: dict, modules, baseline: dict) -> dict:
    """One faulted detection sweep; raises on any identity violation."""
    selected = modules[:scenario["limit"]] if scenario.get("limit") \
        else modules
    if scenario.get("cache"):
        cache_dir = tempfile.mkdtemp(prefix="repro-faults-")
        detector = IdiomDetector(cache=cache_dir)
        if scenario.get("warm"):
            for name, module in selected:
                DetectionSession(detector).detect(module)
    else:
        detector = IdiomDetector()
    plan = faults.install_plan({"specs": scenario["specs"]})
    counts: dict[str, int] = {}
    notes = 0
    try:
        for name, module in selected:
            session = DetectionSession(
                detector, workers=scenario.get("workers", 1),
                mode=scenario.get("mode", "thread"),
                deadline_s=scenario.get("deadline"))
            report = session.detect(module)
            fp = report_fingerprint(report, by_identity=False)
            if fp != baseline[name]:
                raise AssertionError(
                    f"{scenario['name']}: match set for {name} diverges "
                    f"from the fault-free baseline")
            for status, n in session.outcomes.counts().items():
                counts[status] = counts.get(status, 0) + n
            notes += len(session.outcomes.session_faults)
        injected = len(plan.fired)
    finally:
        faults.install_plan(None)
    # Process-pool faults fire inside the worker, whose plan (and fired
    # record) is its own — the parent-side evidence is the supervisor's
    # session-fault note for the killed batch.
    if injected == 0 and notes == 0:
        raise AssertionError(f"{scenario['name']}: plan never fired")
    if scenario.get("cache"):
        # Whatever the fault did to the store, a subsequent warm pass
        # over it must still be bit-identical (torn entries read back as
        # corrupt misses and are re-solved, never served).
        for name, module in selected:
            report = DetectionSession(detector).detect(module)
            if report_fingerprint(report, by_identity=False) != \
                    baseline[name]:
                raise AssertionError(
                    f"{scenario['name']}: post-fault warm pass diverges "
                    f"on {name}")
    row = {"injected": injected, "fault_notes": notes,
           "outcomes": counts, "identical": True}
    if scenario.get("cache"):
        row["store"] = detector.cache.store.stats.as_dict()
    return row


def _guarded_workload():
    """The first suite workload whose transform yields a guarded site,
    compiled and transformed, plus its fault-free original run."""
    for workload in all_workloads():
        compiled = compile_workload(workload.name, workload.source,
                                    verify=False)
        if not compiled.report.matches:
            continue
        original = run_original(compiled, workload.entry,
                                workload.make_inputs(1))
        runtime = ApiRuntime()
        Transformer(compiled.module, runtime).apply(
            list(compiled.report.matches))
        guarded = [s for s in runtime.all_sites() if s.guarded]
        if guarded:
            return workload, compiled, runtime, guarded[0], original
    raise AssertionError("no suite workload produced a guarded site")


def run_execution_checks() -> dict:
    """Guarded-dispatch fallback and JIT-tier fallback under faults."""
    workload, compiled, runtime, site, original = _guarded_workload()
    plan = faults.install_plan({"specs": [
        {"site": "backend.dispatch", "kind": "exception", "at": [],
         "rate": 1.0, "key": site.callee}]})
    try:
        faulted = run_transformed(compiled, workload.entry,
                                  workload.make_inputs(1), runtime)
    finally:
        faults.install_plan(None)
    if not runtime.dispatch_failures:
        raise AssertionError(
            f"execution: no dispatch failure recorded at {site.callee}")
    if not outputs_match(original, faulted):
        raise AssertionError(
            "execution: guarded fallback diverged from the original run")
    dispatch = {
        "workload": workload.name,
        "site": site.callee,
        "backend": site.backend,
        "failures_contained": len(runtime.dispatch_failures),
        "quarantined": runtime.quarantine.quarantined(),
        "quarantine_skips": site.stats.get("quarantine_skips", 0),
        "outputs_match": True,
        "injected": len(plan.fired),
    }

    # JIT tier: every specialization attempt fails; execution must fall
    # back to the register VM with identical outputs.
    vm_compiled = compile_workload(workload.name, workload.source,
                                   verify=False)
    vm_run = run_original(vm_compiled, workload.entry,
                          workload.make_inputs(1), engine="vm")
    jit_compiled = compile_workload(workload.name, workload.source,
                                    verify=False)
    plan = faults.install_plan({"specs": [
        {"site": "jit.compile", "kind": "exception", "at": [],
         "rate": 1.0}]})
    try:
        jit_run = run_original(jit_compiled, workload.entry,
                               workload.make_inputs(1), engine="jit")
    finally:
        faults.install_plan(None)
    if len(plan.fired) == 0:
        raise AssertionError("execution: jit.compile fault never fired")
    if not outputs_match(vm_run, jit_run):
        raise AssertionError(
            "execution: jit-tier fallback diverged from the vm run")
    jit = {"workload": workload.name,
           "compile_faults": len(plan.fired),
           "outputs_match": True}
    return {"guarded_dispatch": dispatch, "jit_fallback": jit}


def run_overhead(modules) -> dict:
    """Suite detection, no plan vs installed-but-empty plan."""
    detector = IdiomDetector()
    detector.compiler.prepare(detector.idioms, forest=True)

    def sweep():
        for name, module in modules:
            DetectionSession(detector).detect(module)

    faults.install_plan(None)
    inactive_s, _ = best_of(lambda: sweep() or True, REPEATS)
    faults.install_plan({"specs": []})
    try:
        active_s, _ = best_of(lambda: sweep() or True, REPEATS)
    finally:
        faults.install_plan(None)
    return {
        "inactive_seconds": round(inactive_s, 4),
        "active_empty_seconds": round(active_s, 4),
        "ratio": round(active_s / max(inactive_s, 1e-9), 4),
    }


def run_benchmark(workload_names: list[str] | None = None) -> dict:
    modules = [(w.name, module)
               for w, module in compile_suite(workload_names)]
    faults.install_plan(None)  # a leftover $REPRO_FAULT_PLAN would skew
    baseline = _fingerprints(modules, IdiomDetector())
    matrix = {s["name"]: _run_scenario(s, modules, baseline)
              for s in SCENARIOS}
    execution = run_execution_checks()
    overhead = run_overhead(modules)
    return {"matrix": matrix, "execution": execution, "overhead": overhead,
            "suite": {"workloads": len(modules),
                      "functions": sum(
                          1 for _, m in modules
                          for f in m.functions.values()
                          if not f.is_declaration())}}


def check_regression(current: dict, max_ratio: float) -> list[str]:
    """Failures if the armed-but-idle seams cost more than the gate
    (identity violations raise inside run_benchmark itself, with the
    scenario and workload named)."""
    failures = []
    overhead = current["overhead"]
    if overhead["ratio"] > max_ratio:
        failures.append(
            f"overhead: empty-plan detection at {overhead['ratio']:.4f}x "
            f"of inactive (> {max_ratio:.2f}x)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-faults",
        description="Exercise the reliability layer under deterministic "
                    "fault injection and measure the seams' idle cost")
    parser.add_argument("--output", default=None,
                        help="write full results JSON here")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these benchmarks (default: all)")
    parser.add_argument("--check", action="store_true",
                        help="smoke mode: fail if any faulted run "
                             "diverges from the fault-free baseline or "
                             "the idle-seam overhead exceeds the gate")
    parser.add_argument("--max-ratio", type=float, default=1.03,
                        help="--check fails if empty-plan detection "
                             "exceeds no-plan detection by this factor "
                             "(default 1.03)")
    args = parser.parse_args(argv)

    if args.check:
        global REPEATS
        REPEATS = 7
    result = run_benchmark(args.workloads)

    for name, row in result["matrix"].items():
        outcomes = ", ".join(f"{k}={v}"
                             for k, v in sorted(row["outcomes"].items()))
        print(f"matrix {name:24s} injected={row['injected']} "
              f"notes={row['fault_notes']} identical={row['identical']} "
              f"[{outcomes}]")
    dispatch = result["execution"]["guarded_dispatch"]
    print(f"exec   {dispatch['workload']}: {dispatch['site']} "
          f"({dispatch['backend']}) contained "
          f"{dispatch['failures_contained']} failures, "
          f"quarantined={dispatch['quarantined']}, "
          f"skips={dispatch['quarantine_skips']}, outputs match")
    jit = result["execution"]["jit_fallback"]
    print(f"exec   {jit['workload']}: jit fell back to the vm after "
          f"{jit['compile_faults']} compile faults, outputs match")
    overhead = result["overhead"]
    print(f"idle   inactive={overhead['inactive_seconds']:.4f}s "
          f"empty-plan={overhead['active_empty_seconds']:.4f}s "
          f"({overhead['ratio']:.4f}x)")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        failures = check_regression(result, args.max_ratio)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"all faulted runs bit-identical to fault-free baselines; "
              f"idle seams within {args.max_ratio:.2f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
