"""``python -m repro.experiments <experiment>``."""

import sys

from .harness import main

sys.exit(main())
