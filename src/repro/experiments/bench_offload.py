"""Offload-planner benchmark: whole-module placement vs per-site greedy.

For every dominant NAS + Parboil workload this runs the full pipeline
(compile → detect → transform → execute, collecting the residency event
log), then costs two assignments under the **exact** residency model:

* ``greedy`` — the seed policy: each call site placed in isolation by the
  legacy roofline formula (lazy per-call transfer division only where the
  paper's §8.3 optimisation applied), and
* the planner (``beam`` by default) — whole-module placement over the
  buffer-residency graph.

It also replays the transformed module on the reference interpreter and
asserts the accelerated outputs are **bit-identical** across engines —
placement is a costing layer, the numerics must not depend on it::

    PYTHONPATH=src python -m repro.experiments.bench_offload \
        --output BENCH_offload.json

With a **measured calibration profile** (``--profile PATH`` or
``--calibrate``, see :mod:`repro.platform.calibrate`) the benchmark
switches to the multi-request regime the detection service creates:
``--tenants N`` concurrent copies of each workload (default 6) contend
for the shared accelerators and their transfer links, and three policies
are compared under the calibrated contention-aware replay —

* ``greedy`` — every tenant placed by the static per-site policy,
* ``independent`` — every tenant placed by the solo planner, oblivious
  to the other tenants, and
* ``joint`` — :func:`repro.platform.placement.plan_concurrent` places
  all tenants' sites together against the sum of completion times.

CI runs the check variant, which fails if the planner is ever worse than
per-site greedy on any workload, if outputs diverge between engines, or —
in calibrated mode over the full dominant set — if joint placement beats
static greedy on fewer than seven workloads, the suite speedup falls
under 1.15x, or joint fails to strictly beat independent placement::

    PYTHONPATH=src python -m repro.experiments.bench_offload --check \
        --profile profiles/default.json
"""

from __future__ import annotations

import argparse
import json
import sys

from ..platform.placement import (
    PlacementRequest,
    evaluate_concurrent,
    plan_concurrent,
)
from ..runtime.runner import (
    compile_workload,
    outputs_identical,
    run_accelerated,
)
from ..workloads import dominant_workloads
from . import harness

#: Relative slack for the planner-vs-greedy comparison: both numbers come
#: from one deterministic simulation, so this only absorbs float noise.
EPSILON = 1e-9

#: Calibrated-mode acceptance gates (enforced only when the run covers
#: the full dominant suite with a profile): joint placement must strictly
#: beat static greedy on more than six workloads and the suite must
#: improve by at least this factor.
MIN_STRICT_WINS = 7
MIN_SUITE_SPEEDUP = 1.15

DEFAULT_TENANTS = 6


def _strict(better: float, worse: float) -> bool:
    return better < worse * (1.0 - 1e-12) - 1e-15


def _concurrent_rows(ev, greedy, planner, profile, tenants: int) -> dict:
    """The three-policy contention comparison for one workload."""
    workload = ev.workload
    host = ev.uncovered_seconds_with(profile)
    requests = [
        PlacementRequest(ev.sites, ev.events, host_seconds=host,
                         scale=workload.paper_scale,
                         greedy_lazy=workload.name in
                         harness.LAZY_BENCHMARKS,
                         label=f"{workload.name}#{i}")
        for i in range(tenants)
    ]
    greedy_asg = [greedy.assignment() for _ in range(tenants)]
    solo_asg = [planner.assignment() for _ in range(tenants)]
    greedy_joint = evaluate_concurrent(requests, greedy_asg,
                                       profile=profile, strategy="greedy")
    independent = evaluate_concurrent(requests, solo_asg, profile=profile,
                                      strategy="independent")
    joint = plan_concurrent(requests, backends=harness.BACKENDS,
                            profile=profile, independent=solo_asg)
    return {
        "greedy": greedy_joint,
        "independent": independent,
        "joint": joint,
    }


def run_benchmark(workload_names: list[str] | None = None,
                  strategy: str = "beam",
                  profile=None,
                  tenants: int = DEFAULT_TENANTS) -> dict:
    """Per-workload planner-vs-greedy totals plus equivalence checks.

    Without a ``profile`` this is the original single-request comparison
    under the static cost model. With one, every evaluation is
    calibrated and each workload additionally carries the ``tenants``-way
    contention comparison; the headline ``greedy_ms``/``planner_ms``
    become the sum-of-completions of static-greedy vs joint placement.
    """
    workloads = dominant_workloads()
    if workload_names:
        unknown = set(workload_names) - {w.name for w in workloads}
        if unknown:
            raise SystemExit(
                f"unknown workloads: {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(w.name for w in workloads)})")
    rows: dict[str, dict] = {}
    for workload in workloads:
        if workload_names and workload.name not in workload_names:
            continue
        ev = harness.evaluate_workload(workload)
        greedy, planner = harness.workload_plans(ev, strategy,
                                                 profile=profile)

        concurrent = None
        if profile is not None:
            concurrent = _concurrent_rows(ev, greedy, planner, profile,
                                          tenants)
            placement_locations = concurrent["joint"].locations(0)
            greedy_s = concurrent["greedy"].sum_completion_s
            planner_s = concurrent["joint"].sum_completion_s
        else:
            placement_locations = planner.locations()
            greedy_s = greedy.total_s
            planner_s = planner.total_s

        # Engine/placement invariance: the accelerated module must produce
        # bit-identical outputs on the reference interpreter (placement
        # never touches numerics — it only costs assignments).
        inputs = workload.make_inputs(1)
        vm_run = run_accelerated(
            compile_workload(workload.name, workload.source, verify=False),
            workload.entry, inputs, engine="vm",
            placement=placement_locations)
        ref_run = run_accelerated(
            compile_workload(workload.name, workload.source, verify=False),
            workload.entry, workload.make_inputs(1), engine="reference",
            placement=placement_locations)
        identical = outputs_identical(vm_run, ref_run)
        # evaluate_workload already compared this accelerated module
        # against a full original run on identical inputs.
        matches_original = bool(ev.outputs_equal)

        row = {
            "sites": len(ev.sites),
            "events": len(ev.events),
            "greedy_ms": round(greedy_s * 1e3, 6),
            "planner_ms": round(planner_s * 1e3, 6),
            "speedup": round(greedy_s / planner_s, 4)
            if planner_s > 0 else 1.0,
            "strictly_better": _strict(planner_s, greedy_s),
            "engines_bit_identical": identical,
            "outputs_match_original": matches_original,
            "assignment": [
                f"{s['api']}@{s['device']}"
                for s in planner.as_dict()["sites"]
            ],
        }
        if concurrent is not None:
            joint = concurrent["joint"]
            independent = concurrent["independent"]
            row["solo"] = {
                "greedy_ms": round(greedy.total_s * 1e3, 6),
                "planner_ms": round(planner.total_s * 1e3, 6),
            }
            row["tenants"] = tenants
            row["independent_ms"] = round(
                independent.sum_completion_s * 1e3, 6)
            row["joint_beats_independent"] = _strict(
                joint.sum_completion_s, independent.sum_completion_s)
            row["joint_makespan_ms"] = round(joint.makespan_s * 1e3, 6)
            row["joint_assignment"] = \
                joint.as_dict()["requests"][0]["sites"]
        rows[workload.name] = row
    result = {"strategy": strategy, "workloads": rows,
              "calibrated": profile is not None}
    if profile is not None:
        result["tenants"] = tenants
        result["profile"] = {
            "machine_id": profile.machine_id,
            "created_at": profile.created_at,
        }
    if rows:
        greedy_total = sum(r["greedy_ms"] for r in rows.values())
        planner_total = sum(r["planner_ms"] for r in rows.values())
        suite = {
            "greedy_ms": round(greedy_total, 6),
            "planner_ms": round(planner_total, 6),
            "speedup": round(greedy_total / planner_total, 4)
            if planner_total > 0 else 1.0,
            "strictly_better": sum(
                1 for r in rows.values() if r["strictly_better"]),
        }
        if profile is not None:
            independent_total = sum(r["independent_ms"]
                                    for r in rows.values())
            suite["independent_ms"] = round(independent_total, 6)
            suite["joint_beats_independent"] = _strict(
                planner_total, independent_total)
        result["suite"] = suite
    return result


def check_invariants(result: dict) -> list[str]:
    """The planner contract: never worse than greedy, strictly better on
    at least three workloads (enforced whenever the run covers enough of
    the suite for that to be meaningful), numerics engine- and
    placement-invariant. Calibrated runs over the full dominant suite
    additionally gate on the contention-aware wins: joint placement must
    strictly beat static greedy on at least :data:`MIN_STRICT_WINS`
    workloads, deliver a suite speedup of at least
    :data:`MIN_SUITE_SPEEDUP`, and strictly beat independent per-request
    placement."""
    failures = []
    calibrated = result.get("calibrated", False)
    for name, row in result["workloads"].items():
        if row["planner_ms"] > row["greedy_ms"] * (1.0 + EPSILON):
            failures.append(
                f"{name}: planner {row['planner_ms']:.3f}ms worse than "
                f"per-site greedy {row['greedy_ms']:.3f}ms")
        if calibrated and row["planner_ms"] > \
                row["independent_ms"] * (1.0 + EPSILON):
            failures.append(
                f"{name}: joint {row['planner_ms']:.3f}ms worse than "
                f"independent placement {row['independent_ms']:.3f}ms")
        if not row["engines_bit_identical"]:
            failures.append(
                f"{name}: accelerated outputs differ between engines")
        if not row["outputs_match_original"]:
            failures.append(
                f"{name}: accelerated outputs diverge from the original")
    suite = result.get("suite")
    full_suite = len(result["workloads"]) >= 5
    if suite is not None and full_suite and suite["strictly_better"] < 3:
        failures.append(
            f"planner strictly better on only {suite['strictly_better']} "
            f"workloads (need >= 3)")
    if calibrated and suite is not None and \
            len(result["workloads"]) >= len(dominant_workloads()):
        if suite["strictly_better"] < MIN_STRICT_WINS:
            failures.append(
                f"calibrated joint placement strictly better on only "
                f"{suite['strictly_better']} workloads "
                f"(need >= {MIN_STRICT_WINS})")
        if suite["speedup"] < MIN_SUITE_SPEEDUP:
            failures.append(
                f"calibrated suite speedup {suite['speedup']:.3f}x under "
                f"the {MIN_SUITE_SPEEDUP:.2f}x floor")
        if not suite.get("joint_beats_independent", False):
            failures.append(
                "joint placement does not strictly beat independent "
                "per-request placement on the suite")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-offload",
        description="Benchmark the whole-module offload planner against "
                    "per-site greedy placement")
    parser.add_argument("--output", default=None,
                        help="write full results JSON here")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these benchmarks (default: all "
                             "dominant)")
    parser.add_argument("--strategy", choices=["beam", "exhaustive"],
                        default="beam",
                        help="planner strategy to compare (default beam)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="measured calibration profile JSON; enables "
                             "the calibrated multi-tenant comparison")
    parser.add_argument("--calibrate", action="store_true",
                        help="measure a calibration profile on this "
                             "machine first (written to --profile PATH "
                             "when given)")
    parser.add_argument("--tenants", type=int, default=DEFAULT_TENANTS,
                        metavar="N",
                        help="concurrent copies of each workload in the "
                             f"calibrated comparison (default "
                             f"{DEFAULT_TENANTS})")
    parser.add_argument("--check", action="store_true",
                        help="fail if the planner is worse than greedy "
                             "anywhere, outputs diverge, or (calibrated, "
                             "full suite) the contention gates fail")
    args = parser.parse_args(argv)
    if args.tenants < 1:
        parser.error("--tenants must be at least 1")

    profile = harness.load_active_profile(
        args.profile, calibrate=args.calibrate,
        out=args.profile if args.calibrate else None)
    result = run_benchmark(args.workloads, strategy=args.strategy,
                           profile=profile, tenants=args.tenants)

    regime = f"{args.tenants}-tenant joint" if profile is not None \
        else "single-request"
    print(f"offload planner vs per-site greedy ({regime})")
    for name, row in result["workloads"].items():
        marker = "*" if row["strictly_better"] else " "
        extra = ""
        if profile is not None:
            beat = "<" if row["joint_beats_independent"] else "="
            extra = f" indep={row['independent_ms']:>12.3f}ms " \
                    f"joint{beat}indep"
        print(f"{name:8s} greedy={row['greedy_ms']:>12.3f}ms "
              f"planner={row['planner_ms']:>12.3f}ms "
              f"({row['speedup']:.2f}x{marker}, {row['sites']} sites, "
              f"{row['events']} events){extra}")
    suite = result.get("suite")
    if suite:
        extra = ""
        if profile is not None:
            extra = f" independent={suite['independent_ms']:.3f}ms"
        print(f"suite    greedy={suite['greedy_ms']:.3f}ms "
              f"planner={suite['planner_ms']:.3f}ms "
              f"({suite['speedup']:.2f}x, strictly better on "
              f"{suite['strictly_better']}){extra}")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        failures = check_invariants(result)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("planner invariants hold: never worse than per-site greedy"
              + (", joint beats independent under contention"
                 if profile is not None else "")
              + ", outputs engine- and placement-invariant")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
