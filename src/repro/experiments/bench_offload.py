"""Offload-planner benchmark: whole-module placement vs per-site greedy.

For every dominant NAS + Parboil workload this runs the full pipeline
(compile → detect → transform → execute, collecting the residency event
log), then costs two assignments under the **exact** residency model:

* ``greedy`` — the seed policy: each call site placed in isolation by the
  legacy roofline formula (lazy per-call transfer division only where the
  paper's §8.3 optimisation applied), and
* the planner (``beam`` by default) — whole-module placement over the
  buffer-residency graph.

It also replays the transformed module on the reference interpreter and
asserts the accelerated outputs are **bit-identical** across engines —
placement is a costing layer, the numerics must not depend on it::

    PYTHONPATH=src python -m repro.experiments.bench_offload \
        --output BENCH_offload.json

CI runs the check variant, which fails if the planner is ever worse than
per-site greedy on any workload, if fewer than three workloads improve
strictly, or if outputs diverge between engines::

    PYTHONPATH=src python -m repro.experiments.bench_offload --check
"""

from __future__ import annotations

import argparse
import json
import sys

from ..runtime.runner import (
    compile_workload,
    outputs_identical,
    run_accelerated,
)
from ..workloads import dominant_workloads
from . import harness

#: Relative slack for the planner-vs-greedy comparison: both numbers come
#: from one deterministic simulation, so this only absorbs float noise.
EPSILON = 1e-9


def run_benchmark(workload_names: list[str] | None = None,
                  strategy: str = "beam") -> dict:
    """Per-workload planner-vs-greedy totals plus equivalence checks."""
    workloads = dominant_workloads()
    if workload_names:
        unknown = set(workload_names) - {w.name for w in workloads}
        if unknown:
            raise SystemExit(
                f"unknown workloads: {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(w.name for w in workloads)})")
    rows: dict[str, dict] = {}
    for workload in workloads:
        if workload_names and workload.name not in workload_names:
            continue
        ev = harness.evaluate_workload(workload)
        greedy, planner = harness.workload_plans(ev, strategy)

        # Engine/placement invariance: the accelerated module must produce
        # bit-identical outputs on the reference interpreter (placement
        # never touches numerics — it only costs assignments).
        inputs = workload.make_inputs(1)
        vm_run = run_accelerated(
            compile_workload(workload.name, workload.source, verify=False),
            workload.entry, inputs, engine="vm",
            placement=planner.locations())
        ref_run = run_accelerated(
            compile_workload(workload.name, workload.source, verify=False),
            workload.entry, workload.make_inputs(1), engine="reference",
            placement=planner.locations())
        identical = outputs_identical(vm_run, ref_run)
        # evaluate_workload already compared this accelerated module
        # against a full original run on identical inputs.
        matches_original = bool(ev.outputs_equal)

        rows[workload.name] = {
            "sites": len(ev.sites),
            "events": len(ev.events),
            "greedy_ms": round(greedy.total_s * 1e3, 6),
            "planner_ms": round(planner.total_s * 1e3, 6),
            "speedup": round(greedy.total_s / planner.total_s, 4)
            if planner.total_s > 0 else 1.0,
            "strictly_better": planner.total_s
            < greedy.total_s * (1.0 - 1e-12) - 1e-15,
            "engines_bit_identical": identical,
            "outputs_match_original": matches_original,
            "assignment": [
                f"{s['api']}@{s['device']}"
                for s in planner.as_dict()["sites"]
            ],
        }
    result = {"strategy": strategy, "workloads": rows}
    if rows:
        greedy_total = sum(r["greedy_ms"] for r in rows.values())
        planner_total = sum(r["planner_ms"] for r in rows.values())
        result["suite"] = {
            "greedy_ms": round(greedy_total, 6),
            "planner_ms": round(planner_total, 6),
            "speedup": round(greedy_total / planner_total, 4)
            if planner_total > 0 else 1.0,
            "strictly_better": sum(
                1 for r in rows.values() if r["strictly_better"]),
        }
    return result


def check_invariants(result: dict) -> list[str]:
    """The planner contract: never worse than greedy, strictly better on
    at least three workloads (enforced whenever the run covers enough of
    the suite for that to be meaningful), numerics engine- and
    placement-invariant."""
    failures = []
    for name, row in result["workloads"].items():
        if row["planner_ms"] > row["greedy_ms"] * (1.0 + EPSILON):
            failures.append(
                f"{name}: planner {row['planner_ms']:.3f}ms worse than "
                f"per-site greedy {row['greedy_ms']:.3f}ms")
        if not row["engines_bit_identical"]:
            failures.append(
                f"{name}: accelerated outputs differ between engines")
        if not row["outputs_match_original"]:
            failures.append(
                f"{name}: accelerated outputs diverge from the original")
    suite = result.get("suite")
    if suite is not None and len(result["workloads"]) >= 5 and \
            suite["strictly_better"] < 3:
        failures.append(
            f"planner strictly better on only {suite['strictly_better']} "
            f"workloads (need >= 3)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-offload",
        description="Benchmark the whole-module offload planner against "
                    "per-site greedy placement")
    parser.add_argument("--output", default=None,
                        help="write full results JSON here")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these benchmarks (default: all "
                             "dominant)")
    parser.add_argument("--strategy", choices=["beam", "exhaustive"],
                        default="beam",
                        help="planner strategy to compare (default beam)")
    parser.add_argument("--check", action="store_true",
                        help="fail if the planner is worse than greedy "
                             "anywhere, improves fewer than 3 workloads, "
                             "or outputs diverge")
    args = parser.parse_args(argv)

    result = run_benchmark(args.workloads, strategy=args.strategy)

    for name, row in result["workloads"].items():
        marker = "*" if row["strictly_better"] else " "
        print(f"{name:8s} greedy={row['greedy_ms']:>12.3f}ms "
              f"planner={row['planner_ms']:>12.3f}ms "
              f"({row['speedup']:.2f}x{marker}, {row['sites']} sites, "
              f"{row['events']} events)")
    suite = result.get("suite")
    if suite:
        print(f"suite    greedy={suite['greedy_ms']:.3f}ms "
              f"planner={suite['planner_ms']:.3f}ms "
              f"({suite['speedup']:.2f}x, strictly better on "
              f"{suite['strictly_better']})")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        failures = check_invariants(result)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("planner invariants hold: never worse than per-site greedy, "
              "outputs engine- and placement-invariant")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
