"""Chaos matrix for the overload-safe detection service.

Where :mod:`bench_service` measures the serving layer healthy,
this benchmark attacks it — flooding tenants, overload storms, hung
batches, expired deadlines, mid-stream daemon kills and injected
connection drops — and gates on the robustness contract::

    PYTHONPATH=src python -m repro.experiments.bench_service_faults \
        --output BENCH_service_faults.json

Stanzas:

* **storm** — one flooding tenant async-blasts a stream of distinct
  private modules while three well-behaved tenants run their normal
  synchronous round-trips. Per-tenant p95 latency is measured solo
  (same pre-warmed store, no flood) and under the storm. The fairness
  gate: no well-behaved tenant's storm p95 exceeds ``3x`` its solo p95
  (with a 50ms floor for scheduler noise), no tenant starves (every
  request completes), and every report stays bit-identical.
* **overload** — a tiny admission envelope (``max_pending=8``,
  ``tenant_quota=4``) under deterministically hung batches
  (``service.batch`` hang faults). The flood must shed with *typed*
  :class:`~repro.service.ServiceOverloaded` errors carrying a positive
  ``retry_after_s``; a second tenant must still get admitted mid-storm
  (quotas protect the shared queue); an injected ``service.admit``
  fault must not poison the service; every admitted request completes
  bit-identically.
* **deadline** — a ``service.batch`` hang longer than a request's
  budget: pre-expired submits are rejected typed at admission, the
  queued request expires typed while its batch hangs, and a deadline-
  free request in the *same* batch completes bit-identically. A
  generous-deadline request then exercises the budget-threading path
  into the solver.
* **restart** — a client streams requests at a daemon that is
  :meth:`~repro.service.DetectionDaemon.kill`-ed mid-stream (live
  connections dropped, no goodbye) and replaced on the same port. The
  self-healing client must reconnect and finish the stream with every
  report bit-identical (detect is idempotent; the shared store makes
  the replacement daemon warm).
* **conn-drop** — ``daemon.conn`` exception faults sever the TCP
  connection on chosen requests; the client's retry loop must recover
  every one.
* **overhead** — the serving path with no fault plan vs an
  installed-but-empty plan; the ``service.admit``/``service.batch``
  seams must cost ≤ ``--max-ratio`` (default 1.03x) when armed but
  idle.

CI runs ``--check`` and fails on any broken gate. Identity violations
raise inside the stanzas themselves, naming the tenant.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time

from ..errors import InjectedFault
from ..idioms import IdiomDetector
from ..ir.parser import parse_module
from ..reliability import faults
from ..reliability.faults import FaultPlan
from ..service import (
    DeadlineExpired,
    DetectionDaemon,
    DetectionService,
    ServiceClient,
    ServiceConfig,
    ServiceOverloaded,
)
from ..service.wire import report_wire_fingerprint
from .bench_service import _edit
from .suites import compile_suite
from .timing import best_of, percentile

#: Timing repetitions for the overhead stanza (--check raises it).
REPEATS = 3

#: Modules used by the traffic stanzas (the full suite would only
#: stretch queue latencies without adding coverage).
CORE_MODULES = 2

#: Well-behaved tenants in the storm stanza, plus one flooder.
FAIR_TENANTS = 3

#: The fairness gate: storm p95 within this factor of solo p95 …
FAIRNESS_FACTOR = 3.0
#: … with this floor, so scheduler noise on sub-ms solo runs can't
#: fail the gate spuriously.
FAIRNESS_FLOOR_S = 0.05


def _texts(workload_names: list[str] | None) -> list[str]:
    from ..ir.printer import print_module

    return [print_module(module)
            for _, module in compile_suite(workload_names)]


def _reference(texts: list[str]) -> dict[str, str]:
    """text -> wire fingerprint of a direct, service-free detection."""
    return {text: report_wire_fingerprint(
        IdiomDetector().detect(parse_module(text))) for text in texts}


def _verify(result, reference: dict[str, str], text: str,
            stanza: str) -> None:
    if report_wire_fingerprint(result.report) != reference[text]:
        raise AssertionError(
            f"{stanza}: tenant {result.tenant!r} got a report that "
            f"diverges from direct detection")


# ---------------------------------------------------------------------------
# storm: per-tenant fairness under a flooding tenant
# ---------------------------------------------------------------------------

def run_storm(texts: list[str], reference: dict[str, str]) -> dict:
    flood_texts = [_edit(texts[0], 100 + i) for i in range(12)]
    rounds = 4
    config = dict(batch_window_s=0.002, max_batch=8, dispatchers=1,
                  max_pending=256, tenant_quota=64)

    with tempfile.TemporaryDirectory(
            prefix="repro-bench-storm-") as cache_dir:
        # Pre-warm the store so both measurements time queueing and
        # replay, not first-solve cost.
        with DetectionService(ServiceConfig(cache_dir=cache_dir,
                                            **config)) as service:
            for text in texts + flood_texts:
                service.detect(text, tenant="prewarm")

        solo: dict[str, float] = {}
        with DetectionService(ServiceConfig(cache_dir=cache_dir,
                                            **config)) as service:
            for t in range(FAIR_TENANTS):
                tenant = f"tenant-{t}"
                latencies = []
                for _ in range(rounds):
                    for text in texts:
                        result = service.detect(text, tenant=tenant)
                        _verify(result, reference, text, "storm/solo")
                        latencies.append(result.latency_s)
                solo[tenant] = percentile(latencies, 95)

        storm: dict[str, float] = {}
        completed: dict[str, int] = {}
        flood_sheds = 0
        with DetectionService(ServiceConfig(cache_dir=cache_dir,
                                            **config)) as service:
            stop_flood = threading.Event()
            flood_futures = []

            def flooder():
                nonlocal flood_sheds
                i = 0
                while not stop_flood.is_set():
                    try:
                        flood_futures.append(service.submit(
                            flood_texts[i % len(flood_texts)],
                            tenant="flooder"))
                    except ServiceOverloaded:
                        flood_sheds += 1
                        time.sleep(0.0005)
                    i += 1

            def well_behaved(tenant: str):
                latencies = []
                for _ in range(rounds):
                    for text in texts:
                        result = service.detect(text, tenant=tenant,
                                                timeout=120.0)
                        _verify(result, reference, text, "storm")
                        latencies.append(result.latency_s)
                storm[tenant] = percentile(latencies, 95)
                completed[tenant] = len(latencies)

            flood_thread = threading.Thread(target=flooder, daemon=True)
            tenant_threads = [
                threading.Thread(target=well_behaved,
                                 args=(f"tenant-{t}",))
                for t in range(FAIR_TENANTS)]
            flood_thread.start()
            for thread in tenant_threads:
                thread.start()
            for thread in tenant_threads:
                thread.join(timeout=300.0)
            stop_flood.set()
            flood_thread.join(timeout=30.0)
            for future in flood_futures:
                future.result(timeout=300.0)
            tenant_stats = service.stats()["tenants"]

    expected = rounds * len(texts)
    return {
        "flood_requests": len(flood_futures),
        "flood_sheds": flood_sheds,
        "expected_per_tenant": expected,
        "tenants": {
            tenant: {
                "completed": completed.get(tenant, 0),
                "solo_p95_s": round(solo[tenant], 5),
                "storm_p95_s": round(storm.get(tenant, float("inf")), 5),
                "ratio": round(
                    storm.get(tenant, float("inf"))
                    / max(solo[tenant], 1e-9), 2),
            } for tenant in solo},
        "flooder_completed": tenant_stats["flooder"]["completed"],
        "identical": True,  # divergence raises in _verify
    }


# ---------------------------------------------------------------------------
# overload: typed sheds under a tiny admission envelope
# ---------------------------------------------------------------------------

def run_overload(texts: list[str], reference: dict[str, str]) -> dict:
    text = texts[0]
    config = ServiceConfig(max_pending=8, tenant_quota=4,
                           batch_window_s=0.02, max_batch=2,
                           dispatchers=1)
    # Every batch hangs briefly, so the backlog is deterministic: the
    # flood below outruns the drain no matter how fast solves are.
    plan = faults.install_plan(FaultPlan([
        {"site": "service.batch", "kind": "hang", "seconds": 0.05,
         "at": tuple(range(64))},
        {"site": "service.admit", "kind": "exception", "at": (3,)},
    ]))
    sheds = 0
    untyped_sheds = 0
    admit_faults = 0
    futures = []
    try:
        with DetectionService(config) as service:
            for _ in range(40):
                try:
                    futures.append(service.submit(text, tenant="flood"))
                except ServiceOverloaded as exc:
                    sheds += 1
                    if not (exc.retry_after_s and exc.retry_after_s > 0):
                        untyped_sheds += 1
                except InjectedFault:
                    admit_faults += 1
            # Quotas must leave room for others mid-storm.
            other = service.detect(text, tenant="other", timeout=120.0)
            _verify(other, reference, text, "overload/other")
            for future in futures:
                _verify(future.result(timeout=120.0), reference, text,
                        "overload")
            stats = service.stats()
    finally:
        faults.install_plan(None)
    return {
        "submitted": 40,
        "admitted": len(futures),
        "sheds": sheds,
        "sheds_missing_retry_after": untyped_sheds,
        "admit_faults": admit_faults,
        "batch_hangs": sum(1 for f in plan.fired
                           if f["site"] == "service.batch"),
        "service_sheds": stats["sheds"],
        "other_tenant_admitted": True,
        "identical": True,
    }


# ---------------------------------------------------------------------------
# deadline: expiry at admission, in the queue, and budget threading
# ---------------------------------------------------------------------------

def run_deadline(texts: list[str], reference: dict[str, str]) -> dict:
    text = texts[0]
    config = ServiceConfig(batch_window_s=0.005, dispatchers=1)
    faults.install_plan(FaultPlan([
        {"site": "service.batch", "kind": "hang", "seconds": 0.12,
         "at": (0,)},
    ]))
    row = {"pre_expired_typed": False, "queue_expired_typed": False,
           "control_identical": False, "generous_identical": False}
    try:
        with DetectionService(config) as service:
            try:
                service.submit(text, tenant="late", deadline_s=-1.0)
            except DeadlineExpired:
                row["pre_expired_typed"] = True
            # Same batch: one request whose 50ms budget the 120ms hang
            # must blow, one with no deadline that must ride through.
            doomed = service.submit(text, tenant="late", deadline_s=0.05)
            control = service.submit(text, tenant="control")
            try:
                doomed.result(timeout=120.0)
            except DeadlineExpired:
                row["queue_expired_typed"] = True
            _verify(control.result(timeout=120.0), reference, text,
                    "deadline/control")
            row["control_identical"] = True
            # Budget threading: a generous deadline reaches the solver
            # (RetryPolicy.tightened) without changing the answer.
            generous = service.detect(text, tenant="late",
                                      deadline_s=30.0, timeout=120.0)
            _verify(generous, reference, text, "deadline/generous")
            row["generous_identical"] = True
            stats = service.stats()
    finally:
        faults.install_plan(None)
    row["expired_counted"] = stats["expired"]
    row["tenant_expired"] = stats["tenants"]["late"]["expired"]
    return row


# ---------------------------------------------------------------------------
# restart: mid-stream daemon kill, same-port replacement, client heals
# ---------------------------------------------------------------------------

def run_restart(texts: list[str], reference: dict[str, str]) -> dict:
    requests = 12
    kill_after = 4
    with tempfile.TemporaryDirectory(
            prefix="repro-bench-restart-") as cache_dir:
        config = ServiceConfig(cache_dir=cache_dir, batch_window_s=0.002)
        daemon = DetectionDaemon(port=0, config=config)
        daemon.serve_in_thread()
        host, port = daemon.address
        client = ServiceClient(host, port, max_retries=10,
                               backoff_s=0.05)
        reached_kill_point = threading.Event()
        killed = threading.Event()
        done = []
        errors = []

        def stream():
            try:
                for i in range(requests):
                    if i == kill_after:
                        # Hold here until the daemon is down, so the
                        # next request deterministically hits a dead
                        # connection and must heal.
                        reached_kill_point.set()
                        killed.wait(timeout=120.0)
                    text = texts[i % len(texts)]
                    report = client.detect_report(text, tenant="stream")
                    if report_wire_fingerprint(report) != reference[text]:
                        raise AssertionError(
                            f"restart: request {i} diverged")
                    done.append(i)
            except BaseException as exc:  # surfaced below
                errors.append(exc)
                reached_kill_point.set()

        thread = threading.Thread(target=stream, daemon=True)
        thread.start()
        reached_kill_point.wait(timeout=120.0)
        daemon.kill()  # drops the client's live connection, no goodbye
        killed.set()
        time.sleep(0.2)
        replacement = DetectionDaemon(host, port, config=config)
        replacement.serve_in_thread()
        thread.join(timeout=120.0)
        reconnects, retries = client.reconnects, client.retries
        client.close()
        replacement.close()
    if errors:
        raise AssertionError(f"restart: stream failed: {errors[0]!r}")
    return {
        "requests": requests,
        "killed_after": kill_after,
        "completed": len(done),
        "reconnects": reconnects,
        "retries": retries,
        "identical": True,
    }


# ---------------------------------------------------------------------------
# conn-drop: injected connection severing on the daemon side
# ---------------------------------------------------------------------------

def run_conn_drop(texts: list[str], reference: dict[str, str]) -> dict:
    text = texts[0]
    requests = 8
    plan = faults.install_plan(FaultPlan([
        {"site": "daemon.conn", "kind": "exception", "at": (2, 5),
         "key": "detect"},
    ]))
    try:
        with tempfile.TemporaryDirectory(
                prefix="repro-bench-conndrop-") as cache_dir:
            daemon = DetectionDaemon(port=0, config=ServiceConfig(
                cache_dir=cache_dir, batch_window_s=0.002))
            daemon.serve_in_thread()
            host, port = daemon.address
            client = ServiceClient(host, port, max_retries=6,
                                   backoff_s=0.02)
            for i in range(requests):
                report = client.detect_report(text, tenant="chaos")
                if report_wire_fingerprint(report) != reference[text]:
                    raise AssertionError(f"conn-drop: request {i} diverged")
            retries, reconnects = client.retries, client.reconnects
            client.close()
            daemon.close()
    finally:
        faults.install_plan(None)
    drops = [f for f in plan.fired if f["site"] == "daemon.conn"]
    return {
        "requests": requests,
        "drops_fired": len(drops),
        "client_retries": retries,
        "client_reconnects": reconnects,
        "identical": True,
    }


# ---------------------------------------------------------------------------
# overhead: the serving seams, armed but idle
# ---------------------------------------------------------------------------

def run_overhead(texts: list[str]) -> dict:
    """Warm serving sweep, no plan vs installed-but-empty plan.

    The two modes are measured interleaved (an inactive sweep then an
    active one, REPEATS times, best-of each) so clock drift or a noisy
    neighbour biases both sides equally."""
    sweep_rounds = 24
    with tempfile.TemporaryDirectory(
            prefix="repro-bench-svc-overhead-") as cache_dir:
        config = ServiceConfig(cache_dir=cache_dir, batch_window_s=0.001)
        with DetectionService(config) as service:
            for text in texts:  # solve once; the sweeps replay the store
                service.detect(text)

            def sweep():
                for _ in range(sweep_rounds):
                    for text in texts:
                        service.detect(text)
                return True

            inactive_s = active_s = float("inf")
            try:
                for _ in range(REPEATS):
                    faults.install_plan(None)
                    seconds, _ = best_of(sweep, 1)
                    inactive_s = min(inactive_s, seconds)
                    faults.install_plan(FaultPlan([]))
                    seconds, _ = best_of(sweep, 1)
                    active_s = min(active_s, seconds)
            finally:
                faults.install_plan(None)
    return {
        "requests_per_sweep": sweep_rounds * len(texts),
        "inactive_seconds": round(inactive_s, 5),
        "active_empty_seconds": round(active_s, 5),
        "ratio": round(active_s / max(inactive_s, 1e-9), 4),
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_benchmark(workload_names: list[str] | None = None) -> dict:
    faults.install_plan(None)  # a leftover $REPRO_FAULT_PLAN would skew
    texts = _texts(workload_names)[:CORE_MODULES]
    reference = _reference(texts)
    return {
        "suite": {"modules": len(texts)},
        "storm": run_storm(texts, reference),
        "overload": run_overload(texts, reference),
        "deadline": run_deadline(texts, reference),
        "restart": run_restart(texts, reference),
        "conn_drop": run_conn_drop(texts, reference),
        "overhead": run_overhead(texts),
    }


def check_regression(result: dict, max_ratio: float) -> list[str]:
    """Failures for the CI gate (identity divergence raises inside the
    stanzas themselves, naming the tenant and request)."""
    failures = []
    storm = result["storm"]
    for tenant, row in storm["tenants"].items():
        if row["completed"] < storm["expected_per_tenant"]:
            failures.append(
                f"storm: tenant {tenant} starved "
                f"({row['completed']}/{storm['expected_per_tenant']} "
                f"requests completed)")
        allowed = max(FAIRNESS_FACTOR * row["solo_p95_s"],
                      FAIRNESS_FLOOR_S)
        if row["storm_p95_s"] > allowed:
            failures.append(
                f"storm: tenant {tenant} p95 {row['storm_p95_s']}s under "
                f"flood exceeds {allowed:.3f}s "
                f"({FAIRNESS_FACTOR}x solo {row['solo_p95_s']}s)")
    if storm["flooder_completed"] == 0:
        failures.append("storm: the flooder starved instead (fair "
                        "means fair)")
    overload = result["overload"]
    if overload["sheds"] < 10:
        failures.append(
            f"overload: only {overload['sheds']} sheds — the admission "
            f"envelope never engaged")
    if overload["sheds_missing_retry_after"]:
        failures.append(
            f"overload: {overload['sheds_missing_retry_after']} sheds "
            f"lacked a positive retry_after_s")
    if overload["admit_faults"] != 1:
        failures.append(
            f"overload: expected exactly 1 injected admit fault, "
            f"saw {overload['admit_faults']}")
    deadline = result["deadline"]
    for key in ("pre_expired_typed", "queue_expired_typed",
                "control_identical", "generous_identical"):
        if not deadline[key]:
            failures.append(f"deadline: {key} gate failed")
    if deadline["expired_counted"] < 1:
        failures.append("deadline: queue expiry never counted in stats")
    restart = result["restart"]
    if restart["completed"] < restart["requests"]:
        failures.append(
            f"restart: only {restart['completed']}/{restart['requests']} "
            f"requests survived the daemon kill")
    if restart["reconnects"] < 1:
        failures.append("restart: client never reconnected")
    conn = result["conn_drop"]
    if conn["drops_fired"] != 2:
        failures.append(
            f"conn-drop: expected 2 injected drops, "
            f"saw {conn['drops_fired']}")
    if conn["client_retries"] < conn["drops_fired"]:
        failures.append(
            f"conn-drop: {conn['client_retries']} retries for "
            f"{conn['drops_fired']} drops")
    overhead = result["overhead"]
    if overhead["ratio"] > max_ratio:
        failures.append(
            f"overhead: empty-plan serving at {overhead['ratio']:.4f}x "
            f"of inactive (> {max_ratio:.2f}x)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-service-faults",
        description="Attack the overload-safe detection service: "
                    "floods, hangs, deadline blowouts, daemon kills, "
                    "connection drops")
    parser.add_argument("--output", default=None,
                        help="write full results JSON here")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="suite modules to draw traffic from "
                             f"(first {CORE_MODULES} used)")
    parser.add_argument("--check", action="store_true",
                        help="CI gate: fail on starvation, unfair p95, "
                             "untyped sheds, lost requests or idle-seam "
                             "overhead above --max-ratio")
    parser.add_argument("--max-ratio", type=float, default=1.03)
    args = parser.parse_args(argv)

    if args.check:
        global REPEATS
        REPEATS = 5
    result = run_benchmark(args.workloads)

    storm = result["storm"]
    print(f"storm    flooder: {storm['flood_requests']} submitted, "
          f"{storm['flood_sheds']} shed, "
          f"{storm['flooder_completed']} completed")
    for tenant, row in sorted(storm["tenants"].items()):
        print(f"         {tenant}: {row['completed']}"
              f"/{storm['expected_per_tenant']} done, "
              f"p95 {row['solo_p95_s'] * 1e3:.1f}ms solo -> "
              f"{row['storm_p95_s'] * 1e3:.1f}ms under flood "
              f"({row['ratio']:.2f}x)")
    ov = result["overload"]
    print(f"overload {ov['admitted']} admitted / {ov['sheds']} typed "
          f"sheds of {ov['submitted']} (hung batches: "
          f"{ov['batch_hangs']}, admit faults: {ov['admit_faults']}); "
          f"other tenant admitted mid-storm")
    dl = result["deadline"]
    print(f"deadline pre-expired typed: {dl['pre_expired_typed']}, "
          f"queue-expired typed: {dl['queue_expired_typed']} "
          f"(counted: {dl['expired_counted']}), control + generous "
          f"requests bit-identical")
    rs = result["restart"]
    print(f"restart  {rs['completed']}/{rs['requests']} through a "
          f"mid-stream kill (reconnects={rs['reconnects']}, "
          f"retries={rs['retries']})")
    cd = result["conn_drop"]
    print(f"conndrop {cd['requests']} requests through "
          f"{cd['drops_fired']} injected drops "
          f"(retries={cd['client_retries']})")
    oh = result["overhead"]
    print(f"idle     inactive={oh['inactive_seconds']:.4f}s "
          f"empty-plan={oh['active_empty_seconds']:.4f}s "
          f"({oh['ratio']:.4f}x)")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        failures = check_regression(result, args.max_ratio)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("chaos matrix clean: fair under flood, typed sheds, "
              "typed deadline expiry, client healed through a daemon "
              "kill and injected drops, reports bit-identical "
              "throughout")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
