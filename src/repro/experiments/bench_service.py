"""Detection-service benchmark: resident multi-tenant serving vs
per-request cold invocation.

Models the serving regime the daemon exists for: several tenants submit
overlapping module sets concurrently (everyone depends on the same
popular libraries), a few tenants carry private edits, and the whole mix
repeats over multiple rounds — an edit-heavy, high-overlap traffic
pattern::

    PYTHONPATH=src python -m repro.experiments.bench_service \
        --output BENCH_service.json

Stanzas:

* **cold** — the no-service baseline: every request pays a fresh
  ``IdiomDetector().detect(parse(text))``. Each distinct module text is
  measured once and charged per occurrence (a cold process has no way
  to amortise anything, so per-text cost × request count is exact).
* **service** — the same request stream submitted concurrently from
  tenant threads to a resident :class:`~repro.service.DetectionService`
  (per worker-pool flavour: serial / thread / process). Reports are
  asserted bit-identical to the cold baseline per request — structural
  wire fingerprints (request and baseline parse the text independently)
  plus solver-stats equality. Reported: sustained requests/sec,
  p50/p95 latency, dedupe ratio, store hit rate.
* **eviction** — the service run again against a store squeezed under a
  tiny byte budget: evictions must occur, every evicted entry must come
  back as a clean miss (re-solve), never an error, and reports stay
  bit-identical.

CI gate (``--check``): warm sustained throughput must beat the cold
per-request baseline by ``--min-speedup`` (default 5x), dedupe must
actually happen, and the eviction stanza must be error-free.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading

from ..idioms import IdiomDetector
from ..ir.instructions import BinaryOperator
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.values import const_int
from ..service import DetectionService, ServiceConfig
from ..service.wire import report_wire_fingerprint
from .suites import compile_suite
from .timing import best_of, summarize_latencies

#: Worker-pool flavours exercised by the service stanza.
POOLS = ((1, "thread"), (2, "thread"), (2, "process"))


def _edit(text: str, tenant: int) -> str:
    """A tenant-private edit: parse, add a dead (fingerprint-changing)
    add to the first defined function, reprint. Distinct per tenant."""
    module = parse_module(text)
    for function in module.functions.values():
        if function.is_declaration():
            continue
        dead = BinaryOperator("add", const_int(0), const_int(tenant + 1))
        dead.name = function.unique_name("tenantedit")
        function.blocks[0].insert(0, dead)
        break
    return print_module(module)


def build_traffic(workload_names: list[str] | None, tenants: int,
                  rounds: int) -> tuple[list[str], list[tuple[str, str]]]:
    """(distinct texts, request stream of (tenant, text)).

    Every tenant submits every suite module each round (the popular-
    library overlap); each tenant past the first additionally carries a
    private edit of one module, rotating across the suite."""
    base = [(w.name, print_module(module))
            for w, module in compile_suite(workload_names)]
    texts: dict[int, list[str]] = {}
    for tenant in range(tenants):
        mine = [text for _, text in base]
        if tenant > 0:
            slot = (tenant - 1) % len(mine)
            mine[slot] = _edit(mine[slot], tenant)
        texts[tenant] = mine
    requests = [(f"tenant-{tenant}", text)
                for _ in range(rounds)
                for tenant in range(tenants)
                for text in texts[tenant]]
    distinct = list(dict.fromkeys(text for _, text in requests))
    return distinct, requests


def cold_baseline(distinct: list[str],
                  requests: list[tuple[str, str]]) -> tuple[dict, dict]:
    """(stanza dict, text -> (wire fingerprint, stats dict) reference).

    One fresh-detector solve per distinct text (timed), charged per
    occurrence in the request stream."""
    reference: dict[str, tuple[str, dict]] = {}
    per_text_s: dict[str, float] = {}
    for text in distinct:
        module = parse_module(text)
        seconds, report = best_of(
            lambda: IdiomDetector().detect(module), 1)
        per_text_s[text] = seconds
        reference[text] = (report_wire_fingerprint(report),
                           report.stats.as_dict())
    total_s = sum(per_text_s[text] for _, text in requests)
    stanza = {
        "distinct_texts": len(distinct),
        "requests": len(requests),
        "total_seconds": round(total_s, 4),
        "requests_per_s": round(len(requests) / max(total_s, 1e-9), 2),
    }
    return stanza, reference


def drive_service(service: DetectionService,
                  requests: list[tuple[str, str]],
                  reference: dict, tenants: int) -> dict:
    """Submit the stream from per-tenant threads, wait, verify identity
    per request, and summarize throughput/latency/dedupe."""
    by_tenant: dict[str, list[str]] = {}
    for tenant, text in requests:
        by_tenant.setdefault(tenant, []).append(text)
    futures: list[tuple[str, object]] = []
    futures_lock = threading.Lock()

    def tenant_thread(tenant: str, texts: list[str]) -> None:
        for text in texts:
            future = service.submit(text, tenant=tenant)
            with futures_lock:
                futures.append((text, future))

    threads = [threading.Thread(target=tenant_thread, args=(t, texts))
               for t, texts in by_tenant.items()]
    import time

    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    results = [(text, future.result(timeout=600.0))
               for text, future in futures]
    wall_s = time.perf_counter() - t0

    mismatches = []
    for text, result in results:
        want_fp, want_stats = reference[text]
        if report_wire_fingerprint(result.report) != want_fp:
            mismatches.append(f"{result.tenant}: match-set divergence")
        elif result.report.stats.as_dict() != want_stats:
            mismatches.append(f"{result.tenant}: solver-stats divergence")
    if mismatches:
        raise AssertionError(
            f"service reports diverge from direct detect_idioms: "
            f"{mismatches[:3]} ({len(mismatches)} total)")

    stats = service.stats()
    latencies = [result.latency_s for _, result in results]
    return {
        "requests": len(results),
        "wall_seconds": round(wall_s, 4),
        "requests_per_s": round(len(results) / max(wall_s, 1e-9), 2),
        "latency": {k: round(v, 5) if isinstance(v, float) else v
                    for k, v in summarize_latencies(latencies).items()},
        "batches": stats["batches"],
        "functions_requested": stats["functions_requested"],
        "solved_functions": stats["solved_functions"],
        "store_hits": stats["store_hits"],
        "batch_dedupe_hits": stats["batch_dedupe_hits"],
        "inflight_hits": stats["inflight_hits"],
        "module_dedupe_hits": stats["module_dedupe_hits"],
        "dedupe_ratio": round(stats["dedupe_ratio"], 4),
        "store": stats.get("store"),
        "errors": stats["errors"],
        "identical": True,  # divergence raises above
    }


def run_benchmark(workload_names: list[str] | None = None,
                  tenants: int = 4, rounds: int = 3,
                  budget_bytes: int = 8 * 1024) -> dict:
    distinct, requests = build_traffic(workload_names, tenants, rounds)
    cold, reference = cold_baseline(distinct, requests)

    service_rows: dict[str, dict] = {}
    for workers, mode in POOLS:
        with tempfile.TemporaryDirectory(
                prefix="repro-bench-service-") as cache_dir:
            config = ServiceConfig(workers=workers, mode=mode,
                                   cache_dir=cache_dir,
                                   batch_window_s=0.004)
            with DetectionService(config) as service:
                row = drive_service(service, requests, reference, tenants)
        row["speedup_vs_cold"] = round(
            row["requests_per_s"] / max(cold["requests_per_s"], 1e-9), 2)
        service_rows[f"{mode}x{workers}"] = row

    # Restart stanza: the store tier only shows once the in-memory
    # tiers (parse cache -> shared modules) are gone — a new service on
    # the same cache directory is exactly the daemon-restart case. The
    # restarted service must solve nothing.
    with tempfile.TemporaryDirectory(
            prefix="repro-bench-service-warm-") as cache_dir:
        config = ServiceConfig(cache_dir=cache_dir, batch_window_s=0.004)
        with DetectionService(config) as service:
            drive_service(service, requests, reference, tenants)
        with DetectionService(config) as service:
            restart = drive_service(service, requests, reference, tenants)
    restart["speedup_vs_cold"] = round(
        restart["requests_per_s"] / max(cold["requests_per_s"], 1e-9), 2)
    if restart["solved_functions"]:
        raise AssertionError(
            f"restarted service re-solved {restart['solved_functions']} "
            f"functions that were in the store")

    # Eviction stanza: same traffic, store squeezed far below the
    # suite's footprint. Evicted entries must re-solve cleanly.
    with tempfile.TemporaryDirectory(
            prefix="repro-bench-service-evict-") as cache_dir:
        config = ServiceConfig(cache_dir=cache_dir,
                               budget_bytes=budget_bytes,
                               batch_window_s=0.004)
        with DetectionService(config) as service:
            row = drive_service(service, requests, reference, tenants)
            total_bytes = service.store.total_bytes()
    row["budget_bytes"] = budget_bytes
    row["final_bytes"] = total_bytes
    row["within_budget"] = total_bytes <= budget_bytes
    eviction = row

    return {
        "traffic": {
            "tenants": tenants,
            "rounds": rounds,
            "requests": len(requests),
            "distinct_texts": len(distinct),
        },
        "cold": cold,
        "service": service_rows,
        "restart": restart,
        "eviction": eviction,
    }


def check_regression(result: dict, min_speedup: float) -> list[str]:
    """Failures for the CI gate (identity divergence raises inside
    run_benchmark itself, naming the tenant)."""
    failures = []
    for key, row in result["service"].items():
        if row["speedup_vs_cold"] < min_speedup:
            failures.append(
                f"service {key}: {row['requests_per_s']} req/s is only "
                f"{row['speedup_vs_cold']}x the cold baseline "
                f"(< {min_speedup}x)")
        if row["errors"]:
            failures.append(f"service {key}: {row['errors']} errors")
        served = (row["store_hits"] + row["batch_dedupe_hits"] +
                  row["inflight_hits"] + row["module_dedupe_hits"])
        if served == 0:
            failures.append(f"service {key}: no dedupe at all")
    restart = result["restart"]
    if restart["errors"]:
        failures.append(f"restart: {restart['errors']} errors")
    if restart["store_hits"] == 0:
        failures.append("restart: nothing served from the store")
    ev = result["eviction"]
    if ev["errors"]:
        failures.append(f"eviction: {ev['errors']} errors")
    if not (ev["store"] or {}).get("evictions"):
        failures.append("eviction: budget never evicted anything")
    if not ev["within_budget"]:
        failures.append(
            f"eviction: store ended at {ev['final_bytes']} bytes, over "
            f"the {ev['budget_bytes']}-byte budget")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-service",
        description="Benchmark the resident multi-tenant detection "
                    "service against per-request cold invocation")
    parser.add_argument("--output", default=None,
                        help="write full results JSON here")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these benchmarks (default: all)")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=3,
                        help="times each tenant re-submits its module "
                             "set (default 3)")
    parser.add_argument("--budget", type=int, default=8 * 1024,
                        metavar="BYTES",
                        help="store byte budget for the eviction stanza "
                             "(default 8192 — far below the suite's "
                             "footprint, forcing heavy eviction)")
    parser.add_argument("--check", action="store_true",
                        help="CI gate: fail unless warm throughput beats "
                             "cold by --min-speedup, dedupe occurred, "
                             "and eviction was error-free")
    parser.add_argument("--min-speedup", type=float, default=5.0)
    args = parser.parse_args(argv)

    result = run_benchmark(args.workloads, tenants=args.tenants,
                           rounds=args.rounds, budget_bytes=args.budget)

    cold = result["cold"]
    print(f"cold     {cold['requests']} requests at "
          f"{cold['requests_per_s']:.2f} req/s "
          f"({cold['distinct_texts']} distinct modules)")
    for key, row in result["service"].items():
        lat = row["latency"]
        print(f"{key:9s} {row['requests_per_s']:8.2f} req/s "
              f"({row['speedup_vs_cold']:.1f}x cold)  "
              f"p50={lat['p50_s'] * 1e3:.1f}ms p95={lat['p95_s'] * 1e3:.1f}ms  "
              f"solved={row['solved_functions']} "
              f"store={row['store_hits']} dedupe={row['batch_dedupe_hits']}"
              f"+{row['module_dedupe_hits']}mod "
              f"ratio={row['dedupe_ratio']:.2f}")
    restart = result["restart"]
    print(f"restart  {restart['requests_per_s']:8.2f} req/s "
          f"({restart['speedup_vs_cold']:.1f}x cold)  "
          f"store={restart['store_hits']} hits, "
          f"solved={restart['solved_functions']} "
          f"(warm daemon restart: everything from the store)")
    ev = result["eviction"]
    print(f"eviction {ev['requests_per_s']:8.2f} req/s under "
          f"{ev['budget_bytes']}B budget: "
          f"{(ev['store'] or {}).get('evictions', 0)} evictions, "
          f"{ev['errors']} errors, final {ev['final_bytes']}B "
          f"(within budget: {ev['within_budget']})")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        failures = check_regression(result, args.min_speedup)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"service reports bit-identical to direct detection; "
              f"throughput >= {args.min_speedup:.1f}x cold; eviction "
              f"clean under a {args.budget}-byte budget")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
