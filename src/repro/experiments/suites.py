"""Workload selection and compilation shared by the ``bench_*`` modules.

Every benchmark starts the same way — validate the ``--workloads``
restriction against the registry, then compile and optimise each selected
benchmark — so the prologue lives here once.
"""

from __future__ import annotations

from ..frontend import compile_c
from ..passes import optimize
from ..workloads import Workload, all_workloads


def select_workloads(workload_names: list[str] | None) -> list[Workload]:
    """The registry's workloads, restricted to ``workload_names`` (all
    when None); unknown names exit with the standard CLI error."""
    workloads = all_workloads()
    if workload_names:
        unknown = set(workload_names) - {w.name for w in workloads}
        if unknown:
            raise SystemExit(
                f"unknown workloads: {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(w.name for w in workloads)})")
        workloads = [w for w in workloads if w.name in workload_names]
    return workloads


def compile_suite(workload_names: list[str] | None) -> list[tuple]:
    """[(workload, optimised module)] for the selected workloads."""
    modules = []
    for workload in select_workloads(workload_names):
        module = compile_c(workload.source, workload.name)
        optimize(module)
        modules.append((workload, module))
    return modules
