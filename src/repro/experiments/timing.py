"""Shared measurement helpers for the experiment benchmarks.

Every ``bench_*`` module used to carry its own copy of these; they live
here once so the measurement discipline stays uniform:

* :func:`best_of` — best (minimum) wall clock over N runs, which is
  robust to scheduler noise on shared CI runners; the paired result is
  the *last* run's, so callers can both time and use the output.
* :func:`timed` — one measured run, for costs that must not be repeated
  (e.g. a pass that mutates its input).
* :func:`geomean` — the geometric mean used for suite-level speedups.
"""

from __future__ import annotations

import math
import time

#: Default timing repetitions for :func:`best_of`.
DEFAULT_REPEATS = 3


def timed(fn):
    """(seconds, result) of one call."""
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def best_of(fn, repeats: int = DEFAULT_REPEATS):
    """(best_seconds, last_result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def geomean(values) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
