"""Shared measurement helpers for the experiment benchmarks.

Every ``bench_*`` module used to carry its own copy of these; they live
here once so the measurement discipline stays uniform:

* :func:`best_of` — best (minimum) wall clock over N runs, which is
  robust to scheduler noise on shared CI runners; the paired result is
  the *last* run's, so callers can both time and use the output.
* :func:`timed` — one measured run, for costs that must not be repeated
  (e.g. a pass that mutates its input).
* :func:`geomean` — the geometric mean used for suite-level speedups.
* :func:`percentile` / :func:`summarize_latencies` — the latency
  summaries (p50/p95/p99) the service benchmark and the daemon's stats
  endpoint report.
"""

from __future__ import annotations

import math
import time

#: Default timing repetitions for :func:`best_of`.
DEFAULT_REPEATS = 3


def timed(fn):
    """(seconds, result) of one call."""
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def best_of(fn, repeats: int = DEFAULT_REPEATS):
    """(best_seconds, last_result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def geomean(values) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentile(values, p: float) -> float:
    """The ``p``-th percentile (0..100) by linear interpolation between
    order statistics (the numpy default), 0.0 for an empty sequence."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * (p / 100.0)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low]) * (1.0 - frac) + float(ordered[high]) * frac


def summarize_latencies(values) -> dict:
    """``{count, mean_s, p50_s, p95_s, p99_s, max_s}`` for a sequence of
    per-request latencies in seconds (zeros for an empty sequence)."""
    values = [float(v) for v in values]
    if not values:
        return {"count": 0, "mean_s": 0.0, "p50_s": 0.0,
                "p95_s": 0.0, "p99_s": 0.0, "max_s": 0.0}
    return {
        "count": len(values),
        "mean_s": sum(values) / len(values),
        "p50_s": percentile(values, 50.0),
        "p95_s": percentile(values, 95.0),
        "p99_s": percentile(values, 99.0),
        "max_s": max(values),
    }
