"""Detection benchmark: per-idiom plan executors vs the cross-idiom forest.

Measures suite-level idiom-detection wall clock over the NAS + Parboil
workloads in three configurations::

    PYTHONPATH=src python -m repro.experiments.bench_detect \
        --output BENCH_detect.json

* ``independent`` — the per-idiom plan executor driven the way the
  pre-forest detection service ran it: one independent solve per
  (function, idiom) pair (``IdiomCompiler.match`` semantics, per-solve
  analyses and memo scope). This is the baseline the plan forest
  replaces, and the one the headline speedup is quoted against.
* ``plan`` — the same per-idiom plan executor inside a
  :class:`~repro.idioms.scheduler.DetectionSession`, which already shares
  one ``FunctionAnalyses`` (and therefore the ``For`` memo) per function
  across idioms. Retained as ``ordering="plan"``; the CI gate requires
  the forest to never be slower than this stronger variant.
* ``forest`` — the fused cross-idiom plan forest (``ordering="forest"``):
  compile-time feasibility signatures, shared constraint prefixes, and
  the function-wide subquery memo.

Every run verifies that all measured configurations (and, in full mode,
the seed's dynamic ordering plus thread/process worker pools) produce
bit-identical match sets. The ``value_key`` stanza measures the solver's
interned dedup keys against the uncached computation they replaced.

CI runs the smoke variant, which re-measures plan vs forest only and
fails if the forest is slower than the session plan executor on the same
machine (or match sets diverge)::

    PYTHONPATH=src python -m repro.experiments.bench_detect --check \
        --workloads CG MG BT lbm stencil histo sgemm spmv
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..analysis.info import FunctionAnalyses
from ..idioms import DetectionSession, IdiomDetector, report_fingerprint
from ..idl.atoms import value_key
from ..ir.values import ConstantFloat, ConstantInt
from .suites import compile_suite
from .timing import best_of

#: Timing repetitions; the best (minimum) is reported, which is robust to
#: scheduler noise on shared CI runners (--check raises it).
REPEATS = 3


def _best_of(fn):
    """Module-level REPEATS is read at call time so --check can raise it."""
    return best_of(fn, REPEATS)


def _independent_pass(detector: IdiomDetector, module) -> None:
    """One independent solve per (function, idiom) pair — per-solve
    analyses and memo scope, the pre-forest service behaviour."""
    for function in module.functions.values():
        if function.is_declaration():
            continue
        for idiom in detector.idioms:
            detector.compiler.match(function, idiom,
                                    analyses=FunctionAnalyses(function),
                                    limits=detector.limits)


def _value_key_uncached(value):
    """The pre-interning value_key computation, for the cache microbench."""
    if isinstance(value, ConstantInt):
        return ("ci", value.type, value.value)
    if isinstance(value, ConstantFloat):
        return ("cf", value.type, value.value)
    return id(value)


def _value_key_bench(modules) -> dict:
    """Dedup-key throughput: interned vs recomputed, over the values the
    suite's matches actually bind."""
    values = []
    report = IdiomDetector().detect(modules[0][1])
    for match in report.matches:
        values.extend(match.solution.values())
    if not values:  # pragma: no cover - suite always matches something
        return {}
    rounds = max(1, 200_000 // len(values))
    value_key(values[0])  # warm the interned path
    t0 = time.perf_counter()
    for _ in range(rounds):
        for v in values:
            value_key(v)
    interned = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(rounds):
        for v in values:
            _value_key_uncached(v)
    uncached = time.perf_counter() - t0
    calls = rounds * len(values)
    return {
        "calls": calls,
        "interned_ns_per_call": round(1e9 * interned / calls, 1),
        "uncached_ns_per_call": round(1e9 * uncached / calls, 1),
        "speedup": round(uncached / max(interned, 1e-12), 2),
    }


def run_benchmark(workload_names: list[str] | None = None,
                  full: bool = True) -> dict:
    """Measure per-workload detection wall clock; ``full=False`` (the CI
    smoke mode) skips the independent and dynamic configurations."""
    forest_det = IdiomDetector(ordering="forest")
    plan_det = IdiomDetector(ordering="plan")
    dynamic_det = IdiomDetector(ordering="dynamic", memo=False,
                                indexed=False)
    forest_det.compiler.prepare(forest_det.idioms, forest=True)
    plan_det.compiler.prepare(plan_det.idioms)

    rows: dict[str, dict] = {}
    modules = []
    for workload, module in compile_suite(workload_names):
        modules.append((workload.name, module))

        forest_s, forest_report = _best_of(
            lambda: forest_det.detect(module))
        plan_s, plan_report = _best_of(lambda: plan_det.detect(module))
        if report_fingerprint(plan_report) != \
                report_fingerprint(forest_report):
            raise AssertionError(
                f"{workload.name}: forest and plan match sets diverge")
        row = {
            "matches": forest_report.total(),
            "forest_seconds": round(forest_s, 4),
            "plan_seconds": round(plan_s, 4),
            "forest_ticks": forest_report.stats.ticks,
            "plan_ticks": plan_report.stats.ticks,
            "feasibility_skips": forest_report.stats.feasibility_skips,
            "subquery_hits": forest_report.stats.subquery_hits,
            "speedup_vs_plan": round(plan_s / max(forest_s, 1e-9), 2),
        }
        if full:
            independent_s, _ = _best_of(
                lambda: _independent_pass(plan_det, module))
            dynamic_report = dynamic_det.detect(module)
            if report_fingerprint(dynamic_report) != \
                    report_fingerprint(forest_report):
                raise AssertionError(
                    f"{workload.name}: forest and dynamic match sets "
                    f"diverge")
            workers_report = DetectionSession(forest_det, workers=2) \
                .detect(module)
            if report_fingerprint(workers_report) != \
                    report_fingerprint(forest_report):
                raise AssertionError(
                    f"{workload.name}: forest match sets depend on the "
                    f"worker count")
            row["independent_seconds"] = round(independent_s, 4)
            row["speedup_vs_independent"] = round(
                independent_s / max(forest_s, 1e-9), 2)
        rows[workload.name] = row

    result: dict = {"workloads": rows}
    forest_total = sum(r["forest_seconds"] for r in rows.values())
    plan_total = sum(r["plan_seconds"] for r in rows.values())
    suite = {
        "forest_seconds": round(forest_total, 4),
        "plan_seconds": round(plan_total, 4),
        "speedup_vs_plan": round(plan_total / max(forest_total, 1e-9), 2),
        "match_sets_identical": True,
    }
    if full:
        independent_total = sum(r["independent_seconds"]
                                for r in rows.values())
        suite["independent_seconds"] = round(independent_total, 4)
        suite["speedup_vs_independent"] = round(
            independent_total / max(forest_total, 1e-9), 2)
        # Process-pool spot check on one representative module: decoded
        # matches must be structurally identical to the in-process ones.
        name, module = modules[0]
        process_report = DetectionSession(forest_det, workers=2,
                                          mode="process").detect(module)
        serial_report = forest_det.detect(module)
        if report_fingerprint(process_report, by_identity=False) != \
                report_fingerprint(serial_report, by_identity=False):
            raise AssertionError(
                f"{name}: process-mode forest match sets diverge")
        result["value_key"] = _value_key_bench(modules)
    result["suite"] = suite
    return result


def check_regression(current: dict, max_ratio: float) -> list[str]:
    """Failures if the forest is slower than session plan mode."""
    suite = current["suite"]
    failures = []
    if suite["forest_seconds"] > max_ratio * suite["plan_seconds"]:
        failures.append(
            f"suite: forest {suite['forest_seconds']}s vs plan "
            f"{suite['plan_seconds']}s (> {max_ratio:.2f}x)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-detect",
        description="Benchmark per-idiom detection vs the plan forest")
    parser.add_argument("--output", default=None,
                        help="write full results JSON here")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these benchmarks (default: all)")
    parser.add_argument("--check", action="store_true",
                        help="smoke mode: verify bit-identical match sets "
                             "and that the forest is not slower than "
                             "session plan mode")
    parser.add_argument("--max-ratio", type=float, default=1.05,
                        help="--check fails if suite forest_seconds "
                             "exceeds plan_seconds by this factor "
                             "(default 1.05: never slower, with a small "
                             "allowance for timer noise on shared "
                             "runners)")
    args = parser.parse_args(argv)

    if args.check:
        # Smoke mode gates on a same-machine timing ratio; extra repeats
        # keep the best-of measurement stable on noisy runners.
        global REPEATS
        REPEATS = 5
    result = run_benchmark(args.workloads, full=not args.check)

    for name, row in result["workloads"].items():
        extra = ""
        if "independent_seconds" in row:
            extra = (f" independent={row['independent_seconds']:.4f}s "
                     f"({row['speedup_vs_independent']:.2f}x)")
        print(f"{name:8s} forest={row['forest_seconds']:.4f}s "
              f"plan={row['plan_seconds']:.4f}s "
              f"({row['speedup_vs_plan']:.2f}x){extra} "
              f"skips={row['feasibility_skips']} "
              f"subq={row['subquery_hits']}")
    suite = result["suite"]
    line = (f"suite    forest={suite['forest_seconds']:.4f}s "
            f"plan={suite['plan_seconds']:.4f}s "
            f"({suite['speedup_vs_plan']:.2f}x vs session plan")
    if "speedup_vs_independent" in suite:
        line += (f", {suite['speedup_vs_independent']:.2f}x vs "
                 f"independent per-(function, idiom) solves")
    print(line + ")")
    vk = result.get("value_key")
    if vk:
        print(f"value_key interning: {vk['uncached_ns_per_call']}ns -> "
              f"{vk['interned_ns_per_call']}ns per call "
              f"({vk['speedup']:.2f}x over {vk['calls']} calls)")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        failures = check_regression(result, args.max_ratio)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"forest within {args.max_ratio:.2f}x of session plan mode; "
              f"match sets bit-identical")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
