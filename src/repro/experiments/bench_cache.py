"""Artifact-cache benchmark: cold vs warm detection + an edit-session
workload.

Models the warm-traffic regime the cache layer exists for — the same
modules re-submitted over and over with small edits — over the NAS +
Parboil suite::

    PYTHONPATH=src python -m repro.experiments.bench_cache \
        --output BENCH_cache.json

Three stanzas:

* **cold vs warm** — full-suite detection without a cache vs fully warm
  (every function served from the store), per workload and aggregated;
  match sets are asserted bit-identical (the headline requires warm to be
  >= 5x faster with zero changed functions).
* **edit session** — N rounds of "mutate k functions, re-detect the whole
  suite". Every round asserts that *exactly* the mutated functions were
  re-solved (the invalidation-granularity guarantee) and that the warm
  reports for the mutated modules are bit-identical to fresh no-cache
  solves of the edited IR.
* **matrix** — cold vs warm bit-identity for every solve ordering
  (``forest`` / ``plan`` / ``dynamic``) crossed with serial, thread-pool
  and process-pool detection, sharing one store (the per-ordering config
  signatures keep their entries apart).

CI runs the smoke variant on the full suite and fails if cold and warm
match sets diverge anywhere, if an edit round re-solves anything besides
the mutated functions, or if a fully warm re-run is slower than cold::

    PYTHONPATH=src python -m repro.experiments.bench_cache --check
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from ..cache import ArtifactStore
from ..idioms import DetectionSession, IdiomDetector, report_fingerprint
from ..ir.values import const_int
from ..ir.instructions import BinaryOperator
from .suites import compile_suite
from .timing import best_of

#: Timing repetitions; best-of, as everywhere in the benchmarks
#: (--check raises it).
REPEATS = 3

#: The matrix' worker-pool flavours: (workers, mode).
POOLS = ((1, "thread"), (2, "thread"), (2, "process"))


def _function_count(module) -> int:
    return sum(1 for f in module.functions.values()
               if not f.is_declaration())


def _mutate(function, round_no: int) -> None:
    """Deterministically edit one function: a dead (but fingerprint-
    changing) add at the top of the entry block, distinct per round."""
    dead = BinaryOperator("add", const_int(0), const_int(round_no + 1))
    dead.name = function.unique_name("editbump")
    function.blocks[0].insert(0, dead)


def run_benchmark(workload_names: list[str] | None = None,
                  cache_dir: str | None = None,
                  rounds: int = 5, mutate_k: int = 1,
                  full: bool = True) -> dict:
    """Measure cold vs warm detection and the edit-session workload.

    ``full=False`` (the CI smoke mode) shrinks the correctness matrix to
    the forest ordering (the other orderings' cold solves dominate the
    runtime and are covered by the committed full run).
    """
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-cache-bench-")
    modules = [(w.name, module)
               for w, module in compile_suite(workload_names)]

    # One store instance shared by every cached detector below, so the
    # emitted "store" stanza accounts for all stanzas' traffic.
    store = ArtifactStore(cache_dir)
    cold_det = IdiomDetector()
    warm_det = IdiomDetector(cache=store)
    cold_det.compiler.prepare(cold_det.idioms, forest=True)
    warm_det.compiler.prepare(warm_det.idioms, forest=True)

    # -- cold vs fully warm ---------------------------------------------------
    # Identity failures raise immediately (with the offending workload
    # named); the identical/only_mutated flags recorded in the JSON are
    # therefore true-by-construction in any emitted artifact.
    rows: dict[str, dict] = {}
    total_functions = 0
    for name, module in modules:
        cold_s, cold_report = best_of(lambda: cold_det.detect(module),
                                      REPEATS)
        warm_det.detect(module)  # populate
        session = DetectionSession(warm_det)
        warm_s, warm_report = best_of(lambda: session.detect(module),
                                      REPEATS)
        functions = _function_count(module)
        total_functions += functions
        if session.cache_hits != functions or session.cache_misses != 0:
            raise AssertionError(
                f"{name}: warm run was not fully served from the store "
                f"({session.cache_hits}/{functions} hits)")
        if report_fingerprint(cold_report, by_identity=False) != \
                report_fingerprint(warm_report, by_identity=False):
            raise AssertionError(
                f"{name}: cold and warm match sets diverge")
        if cold_report.stats.as_dict() != warm_report.stats.as_dict():
            raise AssertionError(
                f"{name}: cold and warm reports disagree on solver stats")
        rows[name] = {
            "functions": functions,
            "matches": warm_report.total(),
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "speedup": round(cold_s / max(warm_s, 1e-9), 2),
        }

    cold_total = sum(r["cold_seconds"] for r in rows.values())
    warm_total = sum(r["warm_seconds"] for r in rows.values())
    suite = {
        "functions": total_functions,
        "matches": sum(r["matches"] for r in rows.values()),
        "cold_seconds": round(cold_total, 4),
        "warm_seconds": round(warm_total, 4),
        "speedup": round(cold_total / max(warm_total, 1e-9), 2),
        "match_sets_identical": True,  # divergence raises above
    }

    # -- edit session ---------------------------------------------------------
    all_functions = [(name, module, function)
                     for name, module in modules
                     for function in module.functions.values()
                     if not function.is_declaration()]
    detail = []
    only_mutated = True
    for round_no in range(rounds):
        mutated = [all_functions[(round_no * mutate_k + i)
                                 % len(all_functions)]
                   for i in range(mutate_k)]
        for _, _, function in mutated:
            _mutate(function, round_no)
        mutated_names = [f"{name}.{fn.name}" for name, _, fn in mutated]
        mutated_modules = {id(module) for _, module, _ in mutated}
        resolved = hits = 0
        round_s = 0.0
        for name, module in modules:
            session = DetectionSession(warm_det)
            seconds, warm_report = best_of(lambda: session.detect(module),
                                           1)
            round_s += seconds
            resolved += session.cache_misses
            hits += session.cache_hits
            if id(module) in mutated_modules:
                fresh = cold_det.detect(module)
                if report_fingerprint(fresh, by_identity=False) != \
                        report_fingerprint(warm_report, by_identity=False):
                    raise AssertionError(
                        f"edit round {round_no}: warm match sets for "
                        f"{name} diverge from a fresh solve of the "
                        f"edited IR")
        if resolved != len({id(fn) for _, _, fn in mutated}):
            only_mutated = False
        detail.append({
            "round": round_no,
            "mutated": mutated_names,
            "resolved": resolved,
            "hits": hits,
            "warm_seconds": round(round_s, 4),
        })
    edit_session = {
        "rounds": rounds,
        "mutate_per_round": mutate_k,
        "functions": len(all_functions),
        "only_mutated_resolved": only_mutated,
        "rounds_detail": detail,
    }

    # -- ordering x worker-pool matrix ---------------------------------------
    # The edit session mutated the IR in place, so the matrix measures the
    # edited suite; every configuration still populates and replays its
    # own entries (per-config signatures) against identical cold solves.
    matrix: dict[str, dict] = {}
    orderings = ("forest", "plan", "dynamic") if full else ("forest",)
    for ordering in orderings:
        memo = indexed = ordering != "dynamic"
        # The cold reference must be a genuinely uncached solve: the
        # forest config's signature matches entries already written by
        # the earlier stanzas, so a cache-carrying "cold" run would be
        # served from the store and the comparison would prove nothing.
        plain_cfg = IdiomDetector(ordering=ordering, memo=memo,
                                  indexed=indexed)
        cache_cfg = IdiomDetector(ordering=ordering, memo=memo,
                                  indexed=indexed, cache=store)
        for workers, mode in POOLS:
            key = f"{ordering}/{mode}x{workers}"
            cold_s = warm_s = 0.0
            for name, module in modules:
                cold = DetectionSession(plain_cfg, workers=workers,
                                        mode=mode)
                seconds, cold_report = best_of(
                    lambda: cold.detect(module), 1)
                cold_s += seconds
                DetectionSession(cache_cfg, workers=workers,
                                 mode=mode).detect(module)  # populate
                warm = DetectionSession(cache_cfg, workers=workers,
                                        mode=mode)
                seconds, warm_report = best_of(
                    lambda: warm.detect(module), 1)
                warm_s += seconds
                if warm.cache_misses != 0:
                    raise AssertionError(
                        f"{name}: {key} warm run re-solved "
                        f"{warm.cache_misses} functions")
                if report_fingerprint(cold_report, by_identity=False) != \
                        report_fingerprint(warm_report,
                                           by_identity=False):
                    raise AssertionError(
                        f"{key}: cold and warm match sets diverge "
                        f"on {name}")
            matrix[key] = {
                "cold_seconds": round(cold_s, 4),
                "warm_seconds": round(warm_s, 4),
                "identical": True,  # divergence raises above
            }

    return {
        "workloads": rows,
        "suite": suite,
        "edit_session": edit_session,
        "matrix": matrix,
        "store": dict(store.stats.as_dict(), entries=store.entry_count()),
    }


def check_regression(current: dict, max_ratio: float) -> list[str]:
    """Failures if warm is slower than cold or an edit round
    over-resolved (match-set divergence raises inside run_benchmark
    itself, with the offending workload named)."""
    failures = []
    suite = current["suite"]
    if suite["warm_seconds"] > max_ratio * suite["cold_seconds"]:
        failures.append(
            f"suite: warm {suite['warm_seconds']}s vs cold "
            f"{suite['cold_seconds']}s (> {max_ratio:.2f}x)")
    if not current["edit_session"]["only_mutated_resolved"]:
        failures.append(
            "edit session: a round re-solved more than the mutated "
            "functions")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-cache",
        description="Benchmark cold vs warm (content-addressed cache) "
                    "detection and edit-session incrementality")
    parser.add_argument("--output", default=None,
                        help="write full results JSON here")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these benchmarks (default: all)")
    parser.add_argument("--cache-dir", default=None,
                        help="store directory (default: a fresh temp dir; "
                             "pass a persistent path to measure "
                             "cross-session warm starts)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="edit-session rounds (default 5)")
    parser.add_argument("--mutate", type=int, default=1, metavar="K",
                        help="functions mutated per round (default 1)")
    parser.add_argument("--check", action="store_true",
                        help="smoke mode: forest-only matrix; fail if "
                             "cold/warm match sets diverge, an edit round "
                             "over-resolves, or warm is slower than cold")
    parser.add_argument("--max-ratio", type=float, default=1.0,
                        help="--check fails if suite warm_seconds exceeds "
                             "cold_seconds by this factor (default 1.0: "
                             "a fully warm run must never be slower)")
    args = parser.parse_args(argv)

    if args.check:
        global REPEATS
        REPEATS = 5
    result = run_benchmark(args.workloads, cache_dir=args.cache_dir,
                           rounds=args.rounds, mutate_k=args.mutate,
                           full=not args.check)

    for name, row in result["workloads"].items():
        print(f"{name:8s} cold={row['cold_seconds']:.4f}s "
              f"warm={row['warm_seconds']:.4f}s "
              f"({row['speedup']:.1f}x, {row['functions']} functions, "
              f"{row['matches']} matches)")
    suite = result["suite"]
    print(f"suite    cold={suite['cold_seconds']:.4f}s "
          f"warm={suite['warm_seconds']:.4f}s "
          f"({suite['speedup']:.1f}x warm-start speedup, "
          f"{suite['functions']} functions)")
    for entry in result["edit_session"]["rounds_detail"]:
        print(f"edit r{entry['round']}: resolved {entry['resolved']} "
              f"(hits {entry['hits']}) in {entry['warm_seconds']:.4f}s "
              f"[{', '.join(entry['mutated'])}]")
    for key, cell in result["matrix"].items():
        print(f"matrix {key:18s} cold={cell['cold_seconds']:.4f}s "
              f"warm={cell['warm_seconds']:.4f}s "
              f"identical={cell['identical']}")
    st = result["store"]
    print(f"store    {st['entries']} entries, {st['writes']} writes, "
          f"{st['hits']} hits, {st['misses']} misses, "
          f"{st['corrupt']} corrupt")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        failures = check_regression(result, args.max_ratio)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"cold/warm match sets bit-identical; warm within "
              f"{args.max_ratio:.2f}x of cold; edit rounds re-solved "
              f"only mutated functions")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
