"""Experiment regeneration for every table and figure in the paper."""

from .harness import (
    evaluate_workload,
    fig16,
    fig17,
    fig18,
    fig19,
    main,
    table1,
    table2,
    table3,
)

__all__ = [
    "evaluate_workload", "fig16", "fig17", "fig18", "fig19", "main",
    "table1", "table2", "table3",
]
