"""Backend quarantine: stop selecting what keeps failing.

A :class:`Quarantine` counts runtime dispatch failures per
``(backend, category)`` pair — the coordinates both the transformer's
contract selection and the placement planner use to pick a backend for a
matched idiom. After ``threshold`` failures the pair is quarantined:

* :meth:`repro.backends.api.ApiRuntime.dispatch` steers every *guarded*
  site of the pair onto its intact original loop (the aliasing-guard
  fallback path) without attempting the handler again, and
* :meth:`repro.backends.registry.BackendRegistry.contracts_for` (when
  handed the quarantine) stops offering the pair for new lowerings, so
  re-transformations pick the next registered backend.

The individual failure that trips the counter is *also* contained — the
dispatch layer replays the original loop for that very call — so
quarantine is purely an optimization that stops paying for failures,
never a correctness mechanism.
"""

from __future__ import annotations

import threading


class Quarantine:
    """Thread-safe (backend, category) failure ledger."""

    def __init__(self, threshold: int = 3):
        self.threshold = max(1, int(threshold))
        self._failures: dict[tuple, int] = {}
        self._lock = threading.Lock()

    def record_failure(self, backend: str, category: str,
                       reason: str = "") -> bool:
        """Count one failure; True if the pair is now quarantined."""
        key = (backend, category)
        with self._lock:
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
        return count >= self.threshold

    def is_quarantined(self, backend: str, category: str) -> bool:
        return self._failures.get((backend, category), 0) >= self.threshold

    def failures(self, backend: str, category: str) -> int:
        return self._failures.get((backend, category), 0)

    def quarantined(self) -> list[tuple]:
        """Every quarantined (backend, category) pair, sorted."""
        return sorted(k for k, n in self._failures.items()
                      if n >= self.threshold)

    def as_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "failures": {f"{b}/{c}": n
                         for (b, c), n in sorted(self._failures.items())},
            "quarantined": [f"{b}/{c}" for b, c in self.quarantined()],
        }
