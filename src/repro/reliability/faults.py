"""Deterministic, site-addressed fault injection.

A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` entries, each
naming a **seam** (where), a **kind** (what), and an **occurrence set**
(when). The instrumented seams call :func:`maybe_fire` with their seam
name and a key (a function name, a store key, a call-site name); the
active plan counts occurrences per seam and fires the matching specs.

Seams instrumented across the codebase::

    store.read        ArtifactStore.get          (key = artifact key)
    store.write       ArtifactStore.put          (key = artifact key)
    worker.solve      per-function detection     (key = function name)
    worker.spawn      process-pool worker init   (key = "")
    backend.dispatch  ApiRuntime.dispatch        (key = site callee)
    jit.compile       JIT specialization         (key = function name)
    service.admit     DetectionService.submit    (key = tenant)
    service.batch     micro-batch execution      (key = batch size)
    daemon.conn       daemon request handling    (key = request op;
                      an ``exception`` here drops the TCP connection,
                      exercising the client's reconnect path)

Fault kinds:

* ``exception`` — raise :class:`~repro.errors.InjectedFault`; the seam's
  supervisor must treat it like the real failure it stands in for.
* ``crash`` — ``os._exit`` when running inside a pool worker process
  (simulating a segfault: the parent observes ``BrokenProcessPool``);
  degrades to ``exception`` in the main process, where dying would be
  the one thing the reliability layer exists to prevent.
* ``hang`` — sleep ``seconds`` (long enough to blow any configured
  deadline), then continue normally; supervisors observe the overrun
  out-of-band while the result stays correct.
* ``torn`` — returned to the seam as a directive rather than raised;
  only :meth:`ArtifactStore.put` consumes it, writing a truncated
  payload to the final path (simulating a non-atomic writer dying
  mid-write) which later reads must classify as a corrupt miss.

Determinism: firing depends only on (seed, seam, occurrence index,
epoch). ``at`` lists explicit occurrence indexes; ``rate`` arms a seeded
hash over the occurrence counter so large sweeps can scatter faults
without enumerating them. ``epochs`` scopes a spec to retry attempts —
the supervisor bumps the epoch on every retry, so a spec active only at
epoch 0 models a *transient* failure (the retry succeeds) while one
active at every epoch models a persistent one (the ladder degrades).

Activation: :func:`install_plan` programmatically, or the
``REPRO_FAULT_PLAN`` environment variable (inline JSON, or ``@path`` to
a JSON file) consulted once on first use — which is how pool worker
processes and the experiment CLI pick plans up.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field

from ..errors import InjectedFault, ReproError

#: The seams maybe_fire accepts; a typo'd seam name in a plan would
#: silently never fire, so both ends are validated against this set.
SEAMS = frozenset({
    "store.read", "store.write", "worker.solve", "worker.spawn",
    "backend.dispatch", "jit.compile",
    "service.admit", "service.batch", "daemon.conn",
})

KINDS = frozenset({"exception", "crash", "hang", "torn"})


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: where, what, and when it fires."""

    site: str                       # seam name, one of SEAMS
    kind: str                       # one of KINDS
    at: tuple = (0,)                # occurrence indexes that fire
    rate: float = 0.0               # seeded per-occurrence probability
    key: str | None = None          # substring filter on the seam key
    epochs: tuple = (0,)            # retry epochs the spec is active in
    seconds: float = 0.25           # hang duration

    def __post_init__(self):
        if self.site not in SEAMS:
            raise ReproError(f"unknown fault seam {self.site!r} "
                             f"(known: {', '.join(sorted(SEAMS))})")
        if self.kind not in KINDS:
            raise ReproError(f"unknown fault kind {self.kind!r} "
                             f"(known: {', '.join(sorted(KINDS))})")
        object.__setattr__(self, "at", tuple(self.at))
        object.__setattr__(self, "epochs", tuple(self.epochs))

    def matches(self, seed: int, occurrence: int, key: str,
                epoch: int) -> bool:
        if self.epochs and epoch not in self.epochs:
            return False
        if self.key is not None and self.key not in key:
            return False
        if occurrence in self.at:
            return True
        if self.rate > 0.0:
            digest = hashlib.sha256(
                f"{seed}:{self.site}:{occurrence}".encode()).digest()
            return (int.from_bytes(digest[:8], "big") / 2**64) < self.rate
        return False


class FaultPlan:
    """A seeded set of fault specs plus per-seam occurrence counters.

    Occurrence counters and the ``fired`` record are guarded by a lock:
    seams fire from detection worker threads concurrently.
    """

    def __init__(self, specs, seed: int = 0, epoch: int = 0):
        self.specs = [s if isinstance(s, FaultSpec) else FaultSpec(**s)
                      for s in specs]
        self.seed = int(seed)
        self.epoch = int(epoch)
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        #: Every fault that fired, in firing order:
        #: dicts of site/kind/occurrence/key/epoch.
        self.fired: list[dict] = []

    def as_spec(self) -> dict:
        """JSON-serializable form (ships to pool worker processes)."""
        return {
            "seed": self.seed,
            "specs": [{
                "site": s.site, "kind": s.kind, "at": list(s.at),
                "rate": s.rate, "key": s.key, "epochs": list(s.epochs),
                "seconds": s.seconds,
            } for s in self.specs],
        }

    def fire(self, site: str, key: str = ""):
        """Advance the seam's occurrence counter and fire matching specs.

        Raising kinds raise; ``torn`` (and ``crash`` outside a worker)
        directives are returned for the seam to implement. Returns None
        when nothing fires."""
        with self._lock:
            occurrence = self._counts.get(site, 0)
            self._counts[site] = occurrence + 1
            spec = next(
                (s for s in self.specs if s.site == site and
                 s.matches(self.seed, occurrence, key, self.epoch)), None)
            if spec is None:
                return None
            self.fired.append({
                "site": site, "kind": spec.kind, "occurrence": occurrence,
                "key": key, "epoch": self.epoch,
            })
        return _execute(spec, site, key, occurrence)


def _execute(spec: FaultSpec, site: str, key: str, occurrence: int):
    if spec.kind == "hang":
        time.sleep(spec.seconds)
        return None
    if spec.kind == "crash":
        if _IN_WORKER:
            os._exit(70)  # simulated segfault: parent sees a broken pool
        raise InjectedFault(
            f"injected crash at {site} (occurrence {occurrence}, "
            f"key {key!r}; degraded to exception outside a worker)")
    if spec.kind == "torn":
        return spec  # seam-implemented (store.put tears the write)
    raise InjectedFault(
        f"injected exception at {site} "
        f"(occurrence {occurrence}, key {key!r})")


# ---------------------------------------------------------------------------
# Process-wide activation
# ---------------------------------------------------------------------------

_ACTIVE: FaultPlan | None = None
_ENV_CHECKED = False
_IN_WORKER = False


def plan_from_spec(spec) -> FaultPlan:
    """Build a plan from its JSON form (a dict, JSON text, or ``@path``)."""
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, str):
        if spec.startswith("@"):
            with open(spec[1:], "r") as fh:
                spec = json.load(fh)
        else:
            spec = json.loads(spec)
    if isinstance(spec, list):
        spec = {"specs": spec}
    if not isinstance(spec, dict):
        raise ReproError(f"cannot build a fault plan from {spec!r}")
    return FaultPlan(spec.get("specs", ()), seed=spec.get("seed", 0),
                     epoch=spec.get("epoch", 0))


def install_plan(plan, epoch: int | None = None) -> FaultPlan | None:
    """Install (or with None, clear) the process-wide fault plan."""
    global _ACTIVE, _ENV_CHECKED
    _ENV_CHECKED = True
    if plan is None:
        _ACTIVE = None
        return None
    plan = plan_from_spec(plan)
    if epoch is not None:
        plan.epoch = epoch
    _ACTIVE = plan
    return plan


def active_plan() -> FaultPlan | None:
    """The installed plan, initialized from ``$REPRO_FAULT_PLAN`` once."""
    global _ENV_CHECKED, _ACTIVE
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        env = os.environ.get("REPRO_FAULT_PLAN")
        if env:
            _ACTIVE = plan_from_spec(env)
    return _ACTIVE


def maybe_fire(site: str, key: str = ""):
    """The seam hook: a no-op global read unless a plan is installed."""
    plan = _ACTIVE if _ENV_CHECKED else active_plan()
    if plan is None:
        return None
    return plan.fire(site, key)


def mark_worker(active: bool = True) -> None:
    """Tell the injector it runs inside a pool worker process, where a
    ``crash`` fault may genuinely kill the process."""
    global _IN_WORKER
    _IN_WORKER = active
