"""Fault tolerance: supervised execution, quarantine, fault injection.

The reliability subsystem generalizes PR 6's "blacklist and replay on the
VM" pattern into a repo-wide discipline: every tier has an always-correct
fallback and every failure is contained, retried, or degraded — never
allowed to take the process down. Three pieces:

* :mod:`.faults` — a deterministic, seeded, site-addressed fault plan.
  Named seams (``store.read``, ``store.write``, ``worker.solve``,
  ``worker.spawn``, ``backend.dispatch``, ``jit.compile``) call
  :func:`~repro.reliability.faults.maybe_fire`; an installed plan decides
  per occurrence whether to raise, crash, hang or tear. With no plan
  installed the hook is one global read — injection stays compiled in at
  negligible cost (gated by ``bench_faults --check``).
* :mod:`.supervisor` — the detection session's execution ladder:
  per-function wall-clock deadlines, bounded retry with backoff for
  transient failures, pool respawn on worker death re-solving only the
  unfinished functions, and staged degradation process → thread → serial,
  with per-function :class:`~repro.reliability.supervisor.FunctionOutcome`
  records merged into a deterministic report.
* :mod:`.quarantine` — (backend, category) pairs that failed at dispatch
  more than N times are quarantined: the aliasing-guard machinery steers
  their sites onto the intact original loops and the transformer stops
  selecting the backend for new sites.
"""

from .faults import (
    FaultPlan,
    FaultSpec,
    active_plan,
    install_plan,
    maybe_fire,
    plan_from_spec,
)
from .quarantine import Quarantine
from .supervisor import (
    FunctionOutcome,
    RetryPolicy,
    SessionOutcomes,
    Supervisor,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FunctionOutcome",
    "Quarantine",
    "RetryPolicy",
    "SessionOutcomes",
    "Supervisor",
    "active_plan",
    "install_plan",
    "maybe_fire",
    "plan_from_spec",
]
