"""Supervised fan-out: deadlines, retries, respawn, staged degradation.

The :class:`Supervisor` owns the execution ladder a
:class:`~repro.idioms.scheduler.DetectionSession` runs its cold
functions through. The contract with the caller is deliberately narrow —
the session supplies

* ``solve_one(function, epoch) -> row`` — solve one function in-process
  (rows are tuples whose first element is the function name),
* ``batcher(functions) -> batches`` — the load-balancing split,
* and, for process mode, a pool factory / submit / decode triple that
  speaks the session's textual-IR wire format —

and the supervisor guarantees: **every function produces exactly one
row**, in a dict the caller merges deterministically in module order, no
matter what the workers do. Worker death (``BrokenProcessPool``) respawns
the pool and re-solves only the unfinished functions; a batch stuck past
its wall-clock allowance is killed and retried; transient failures
(:class:`~repro.errors.InjectedFault`, pool breakage, timeouts) are
retried with backoff up to ``max_retries`` per tier; a tier that keeps
failing degrades process → thread → serial. Only a *persistent,
non-transient* error — one that survives serial retry — propagates,
because at that point the failure is the workload's, not the
infrastructure's.

Interrupts (``KeyboardInterrupt``) shut pools down with
``cancel_futures=True`` before re-raising, so an interrupted session
leaks no worker processes.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    Future,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

from ..errors import InjectedFault
from . import faults

#: Failure classes the ladder retries/degrades on. Anything else is a
#: deterministic workload error and propagates exactly as it did before
#: the reliability layer existed.
TRANSIENT = (InjectedFault, BrokenProcessPool, FutureTimeout)


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision knobs, threaded from the CLI / session constructor."""

    deadline_s: float | None = None  # per-function wall-clock allowance
    max_retries: int = 2             # per tier, for transient failures
    backoff_s: float = 0.05          # base sleep between retries (linear)
    grace_s: float = 1.0             # slack added to out-of-band waits

    def batch_timeout(self, batch_len: int) -> float | None:
        """Out-of-band allowance for a whole batch (process tier)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s * max(1, batch_len) + self.grace_s

    def tightened(self, budget_s: float | None) -> "RetryPolicy":
        """This policy with its per-function deadline clamped to a
        caller's remaining wall-clock budget.

        End-to-end deadline propagation: the service threads each
        batch's tightest surviving request deadline through here, so a
        slow solve runs out of in-band solver ticks
        (:class:`~repro.errors.SolveTimeout`, degraded to a
        ``timed-out-partial`` outcome) instead of outliving the caller.
        A non-positive budget is clamped to a near-zero deadline: the
        solve fails fast rather than being granted infinity."""
        if budget_s is None:
            return self
        budget_s = max(float(budget_s), 1e-6)
        if self.deadline_s is not None and self.deadline_s <= budget_s:
            return self
        return replace(self, deadline_s=budget_s)


@dataclass
class FunctionOutcome:
    """What happened to one function on its way into the report."""

    function: str
    status: str          # ok|cache-hit|retried|timed-out-partial|degraded
    tier: str            # cache|process|thread|serial
    attempts: int = 1
    faults: tuple = ()   # human-readable handled-fault descriptions

    def as_dict(self) -> dict:
        return {"function": self.function, "status": self.status,
                "tier": self.tier, "attempts": self.attempts,
                "faults": list(self.faults)}


@dataclass
class SessionOutcomes:
    """Per-function outcome records plus session-level fault events."""

    records: dict = field(default_factory=dict)  # name -> FunctionOutcome
    #: Handled faults not attributable to one function (pool deaths,
    #: store faults, injector firings), in observation order.
    session_faults: list = field(default_factory=list)

    def record(self, outcome: FunctionOutcome) -> None:
        self.records[outcome.function] = outcome

    def note_fault(self, description: str) -> None:
        self.session_faults.append(description)

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for outcome in self.records.values():
            out[outcome.status] = out.get(outcome.status, 0) + 1
        return out

    def ordered(self, names) -> list:
        return [self.records[n] for n in names if n in self.records]

    def as_dict(self) -> dict:
        return {
            "counts": self.counts(),
            "functions": [o.as_dict() for o in self.records.values()],
            "session_faults": list(self.session_faults),
        }


class Supervisor:
    """Runs the ladder; collects one row per function, come what may."""

    def __init__(self, policy: RetryPolicy, outcomes: SessionOutcomes,
                 mode: str = "thread", workers: int = 1):
        self.policy = policy
        self.outcomes = outcomes
        self.mode = mode
        self.workers = max(1, int(workers))
        self.epoch = 0
        #: name -> {"attempts": int, "faults": [str], "tier": str}
        self.meta: dict[str, dict] = {}

    # -- bookkeeping ---------------------------------------------------------
    def _meta(self, name: str) -> dict:
        meta = self.meta.get(name)
        if meta is None:
            meta = self.meta[name] = {"attempts": 0, "faults": [],
                                      "tier": "", "degraded": False}
        return meta

    def _note_batch_failure(self, batch, description: str) -> None:
        self.outcomes.note_fault(description)
        for function in batch:
            self._meta(function.name)["faults"].append(description)

    def _bump_epoch(self) -> None:
        self.epoch += 1
        plan = faults.active_plan()
        if plan is not None:
            plan.epoch = self.epoch

    def _backoff(self, attempt: int) -> None:
        if self.policy.backoff_s > 0:
            time.sleep(self.policy.backoff_s * (attempt + 1))

    # -- entry point ---------------------------------------------------------
    def run(self, functions, solve_one, batcher, process_pool=None,
            process_submit=None, process_decode=None) -> dict:
        """Rows for every function in ``functions`` (dict name -> row)."""
        done: dict[str, object] = {}
        remaining = list(functions)
        tiers = {"process": ("process", "thread", "serial"),
                 "thread": ("thread", "serial"),
                 "serial": ("serial",)}[self.mode]
        for tier in tiers:
            if not remaining:
                break
            degraded = tier != self.mode
            if tier == "process":
                self._run_process(remaining, done, batcher, process_pool,
                                  process_submit, process_decode)
            elif tier == "thread":
                self._run_thread(remaining, done, solve_one, batcher,
                                 degraded)
            else:
                self._run_serial(remaining, done, solve_one, degraded)
            remaining = [f for f in remaining if f.name not in done]
        if remaining:  # pragma: no cover - serial tier never leaves work
            raise RuntimeError(
                f"supervisor left {len(remaining)} functions unsolved")
        return done

    # -- tiers ---------------------------------------------------------------
    def _mark_done(self, rows, done: dict, tier: str,
                   degraded: bool) -> None:
        for row in rows:
            name = row[0]
            done[name] = row
            meta = self._meta(name)
            meta["attempts"] += 1
            meta["tier"] = tier
            meta["degraded"] = degraded

    def _run_process(self, functions, done, batcher, process_pool,
                     process_submit, process_decode) -> None:
        policy = self.policy
        remaining = list(functions)
        for attempt in range(policy.max_retries + 1):
            if not remaining:
                return
            if attempt:
                self._backoff(attempt - 1)
            pool = process_pool(self.workers, self.epoch)
            batches = batcher(remaining)
            try:
                futures: list[tuple[Future, list]] = [
                    (process_submit(pool, batch, self.epoch), batch)
                    for batch in batches]
                failed = False
                for future, batch in futures:
                    timeout = policy.batch_timeout(len(batch))
                    try:
                        raw = future.result(timeout=timeout)
                    except FutureTimeout:
                        self._note_batch_failure(
                            batch, f"process batch of {len(batch)} "
                            f"functions exceeded its "
                            f"{timeout:.2f}s allowance; workers killed "
                            f"and the batch re-solved")
                        self._kill_pool(pool)
                        failed = True
                        break
                    except BrokenProcessPool:
                        self._note_batch_failure(
                            batch, "worker process died "
                            "(BrokenProcessPool); pool respawned for "
                            "the unfinished functions")
                        failed = True
                        break
                    except InjectedFault as exc:
                        self._note_batch_failure(batch, str(exc))
                        failed = True
                        break
                    self._mark_done(process_decode(raw), done, "process",
                                    False)
                pool.shutdown(wait=False, cancel_futures=True)
                if not failed:
                    return
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                self._kill_pool(pool)
                raise
            self._bump_epoch()
            remaining = [f for f in remaining if f.name not in done]
        # retries exhausted with work left: the caller degrades to the
        # next tier (remaining recomputed there).

    @staticmethod
    def _kill_pool(pool) -> None:
        """Terminate a pool whose workers may be hung (shutdown alone
        would join them forever)."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already gone
                pass

    def _run_thread(self, functions, done, solve_one, batcher,
                    degraded: bool) -> None:
        policy = self.policy
        remaining = list(functions)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            try:
                for attempt in range(policy.max_retries + 1):
                    if not remaining:
                        return
                    if attempt:
                        self._backoff(attempt - 1)
                    epoch = self.epoch

                    def run_batch(batch, _epoch=epoch):
                        return [solve_one(f, _epoch) for f in batch]

                    batches = batcher(remaining)
                    futures = [(pool.submit(run_batch, batch), batch)
                               for batch in batches]
                    failed = False
                    for future, batch in futures:
                        try:
                            rows = future.result()
                        except InjectedFault as exc:
                            self._note_batch_failure(batch, str(exc))
                            failed = True
                            continue
                        self._mark_done(rows, done, "thread", degraded)
                    if not failed:
                        return
                    self._bump_epoch()
                    remaining = [f for f in remaining
                                 if f.name not in done]
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    def _run_serial(self, functions, done, solve_one,
                    degraded: bool) -> None:
        policy = self.policy
        for function in functions:
            for attempt in range(policy.max_retries + 1):
                try:
                    row = solve_one(function, self.epoch)
                except TRANSIENT as exc:
                    self._meta(function.name)["faults"].append(str(exc))
                    self.outcomes.note_fault(str(exc))
                    self._bump_epoch()
                    if attempt >= policy.max_retries:
                        raise
                    self._backoff(attempt)
                    continue
                self._mark_done([row], done, "serial", degraded)
                break
