"""LLVM-like SSA intermediate representation.

This package is the substrate the paper builds on: a typed SSA IR with the
instruction set IDL's atomic constraints name, a builder, textual
printer/parser pair and a verifier.

Typical use::

    from repro.ir import Module, Function, FunctionType, IRBuilder, types

    m = Module("demo")
    f = m.create_function("f", FunctionType(types.I32, [types.I32]))
    entry = f.append_block("entry")
    b = IRBuilder(entry)
    b.ret(f.args[0])
"""

from . import types
from .builder import IRBuilder
from .instructions import (
    BINARY_OPS,
    CAST_OPS,
    COMMUTATIVE_OPS,
    FCMP_PREDICATES,
    ICMP_PREDICATES,
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .module import BasicBlock, Function, Module
from .parser import parse_module
from .printer import print_function, print_instruction, print_module
from .types import (
    F32,
    F64,
    I1,
    I8,
    I32,
    I64,
    LABEL,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    IRType,
    PointerType,
    parse_type,
    ptr,
)
from .values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Use,
    User,
    Value,
    const_bool,
    const_float,
    const_int,
    is_constant_zero,
)
from .verifier import verify_function, verify_module

__all__ = [
    "types", "IRBuilder",
    "BINARY_OPS", "CAST_OPS", "COMMUTATIVE_OPS", "FCMP_PREDICATES",
    "ICMP_PREDICATES",
    "AllocaInst", "BinaryOperator", "BranchInst", "CallInst", "CastInst",
    "FCmpInst", "GEPInst", "ICmpInst", "Instruction", "LoadInst", "PhiInst",
    "RetInst", "SelectInst", "StoreInst", "UnreachableInst",
    "BasicBlock", "Function", "Module",
    "parse_module", "print_function", "print_instruction", "print_module",
    "F32", "F64", "I1", "I8", "I32", "I64", "LABEL", "VOID",
    "ArrayType", "FloatType", "FunctionType", "IntType", "IRType",
    "PointerType", "parse_type", "ptr",
    "Argument", "Constant", "ConstantFloat", "ConstantInt",
    "ConstantPointerNull", "GlobalVariable", "UndefValue", "Use", "User",
    "Value", "const_bool", "const_float", "const_int", "is_constant_zero",
    "verify_function", "verify_module",
]
