"""Textual form of the IR (LLVM-flavoured) — inverse of :mod:`.parser`.

The format is deliberately close to LLVM assembly so examples from the
paper (e.g. Figure 3/4) read naturally, but simplified where LLVM carries
historical baggage (GEPs name only the pointer operand's type).
"""

from __future__ import annotations

from .instructions import (
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .module import BasicBlock, Function, Module
from .values import Value


def _operand(value: Value) -> str:
    return value.ref()


def _typed(value: Value) -> str:
    return f"{value.type} {value.ref()}"


def print_instruction(inst: Instruction) -> str:
    """Render one instruction (no leading indentation)."""
    if isinstance(inst, BinaryOperator):
        return (f"{inst.ref()} = {inst.opcode} {inst.type} "
                f"{_operand(inst.lhs)}, {_operand(inst.rhs)}")
    if isinstance(inst, ICmpInst):
        return (f"{inst.ref()} = icmp {inst.predicate} {inst.lhs.type} "
                f"{_operand(inst.lhs)}, {_operand(inst.rhs)}")
    if isinstance(inst, FCmpInst):
        return (f"{inst.ref()} = fcmp {inst.predicate} {inst.lhs.type} "
                f"{_operand(inst.lhs)}, {_operand(inst.rhs)}")
    if isinstance(inst, AllocaInst):
        return f"{inst.ref()} = alloca {inst.allocated_type}"
    if isinstance(inst, LoadInst):
        return (f"{inst.ref()} = load {inst.type}, "
                f"{_typed(inst.pointer)}")
    if isinstance(inst, StoreInst):
        return f"store {_typed(inst.value)}, {_typed(inst.pointer)}"
    if isinstance(inst, GEPInst):
        indices = ", ".join(_typed(i) for i in inst.indices)
        return f"{inst.ref()} = gep {_typed(inst.pointer)}, {indices}"
    if isinstance(inst, BranchInst):
        if inst.is_conditional():
            then_b, else_b = inst.targets()
            return (f"br i1 {_operand(inst.condition)}, "
                    f"label %{then_b.name}, label %{else_b.name}")
        return f"br label %{inst.targets()[0].name}"
    if isinstance(inst, RetInst):
        if inst.value is None:
            return "ret void"
        return f"ret {_typed(inst.value)}"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    if isinstance(inst, PhiInst):
        arms = ", ".join(f"[ {_operand(v)}, %{b.name} ]"
                         for v, b in inst.incoming)
        return f"{inst.ref()} = phi {inst.type} {arms}"
    if isinstance(inst, SelectInst):
        return (f"{inst.ref()} = select i1 {_operand(inst.condition)}, "
                f"{_typed(inst.true_value)}, {_typed(inst.false_value)}")
    if isinstance(inst, CastInst):
        return (f"{inst.ref()} = {inst.opcode} {_typed(inst.value)} "
                f"to {inst.type}")
    if isinstance(inst, CallInst):
        args = ", ".join(_typed(a) for a in inst.args)
        prefix = f"{inst.ref()} = " if not inst.type.is_void() else ""
        return f"{prefix}call {inst.type} @{inst.callee}({args})"
    raise NotImplementedError(f"cannot print {inst.opcode}")


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst)}")
    return "\n".join(lines)


def print_function(function: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in function.args)
    header = f"define {function.return_type} @{function.name}({params})"
    if function.is_declaration():
        return f"declare {function.return_type} @{function.name}({params})"
    body = "\n".join(print_block(b) for b in function.blocks)
    return f"{header} {{\n{body}\n}}"


def print_module(module: Module) -> str:
    parts = []
    for gv in module.globals.values():
        kind = "constant" if gv.constant else "global"
        parts.append(f"@{gv.name} = {kind} {gv.value_type}")
    for function in module.functions.values():
        parts.append(print_function(function))
    return "\n\n".join(parts) + "\n"
