"""Textual form of the IR (LLVM-flavoured) — inverse of :mod:`.parser`.

The format is deliberately close to LLVM assembly so examples from the
paper (e.g. Figure 3/4) read naturally, but simplified where LLVM carries
historical baggage (GEPs name only the pointer operand's type).

Determinism contract: the printed form is a pure function of IR structure.
Every construct is emitted from ordered containers — argument/block/
instruction/operand lists, phi arms in build order, ``module.globals`` and
``module.functions`` in insertion order — never from set or dict-key
iteration over identity-hashed objects, and never from ``id()``. Two
structurally identical modules therefore print byte-identically, across
processes and ``PYTHONHASHSEED`` values (regression-tested in
``tests/test_cache.py``); the content-addressed artifact cache
(:mod:`repro.cache`) relies on this.

Every printing function accepts an optional ``names`` override mapping
``id(value) -> name``. :func:`print_function_canonical` uses it to emit a
*canonical* form — arguments, blocks and instruction results renamed to
dense position-derived names — so the text (and any hash of it) depends
only on function structure, not on whatever local names the front end or
the passes happened to pick.
"""

from __future__ import annotations

from .instructions import (
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .module import BasicBlock, Function, Module
from .values import Value


def _operand(value: Value, names: dict[int, str] | None = None) -> str:
    if names is not None:
        renamed = names.get(id(value))
        if renamed is not None:
            return f"%{renamed}"
    return value.ref()


def _typed(value: Value, names: dict[int, str] | None = None) -> str:
    return f"{value.type} {_operand(value, names)}"


def _label(block: BasicBlock, names: dict[int, str] | None = None) -> str:
    if names is not None:
        renamed = names.get(id(block))
        if renamed is not None:
            return renamed
    return block.name


def print_instruction(inst: Instruction,
                      names: dict[int, str] | None = None) -> str:
    """Render one instruction (no leading indentation)."""
    ref = _operand(inst, names)
    if isinstance(inst, BinaryOperator):
        return (f"{ref} = {inst.opcode} {inst.type} "
                f"{_operand(inst.lhs, names)}, {_operand(inst.rhs, names)}")
    if isinstance(inst, ICmpInst):
        return (f"{ref} = icmp {inst.predicate} {inst.lhs.type} "
                f"{_operand(inst.lhs, names)}, {_operand(inst.rhs, names)}")
    if isinstance(inst, FCmpInst):
        return (f"{ref} = fcmp {inst.predicate} {inst.lhs.type} "
                f"{_operand(inst.lhs, names)}, {_operand(inst.rhs, names)}")
    if isinstance(inst, AllocaInst):
        return f"{ref} = alloca {inst.allocated_type}"
    if isinstance(inst, LoadInst):
        return (f"{ref} = load {inst.type}, "
                f"{_typed(inst.pointer, names)}")
    if isinstance(inst, StoreInst):
        return (f"store {_typed(inst.value, names)}, "
                f"{_typed(inst.pointer, names)}")
    if isinstance(inst, GEPInst):
        indices = ", ".join(_typed(i, names) for i in inst.indices)
        return f"{ref} = gep {_typed(inst.pointer, names)}, {indices}"
    if isinstance(inst, BranchInst):
        if inst.is_conditional():
            then_b, else_b = inst.targets()
            return (f"br i1 {_operand(inst.condition, names)}, "
                    f"label %{_label(then_b, names)}, "
                    f"label %{_label(else_b, names)}")
        return f"br label %{_label(inst.targets()[0], names)}"
    if isinstance(inst, RetInst):
        if inst.value is None:
            return "ret void"
        return f"ret {_typed(inst.value, names)}"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    if isinstance(inst, PhiInst):
        arms = ", ".join(f"[ {_operand(v, names)}, %{_label(b, names)} ]"
                         for v, b in inst.incoming)
        return f"{ref} = phi {inst.type} {arms}"
    if isinstance(inst, SelectInst):
        return (f"{ref} = select i1 {_operand(inst.condition, names)}, "
                f"{_typed(inst.true_value, names)}, "
                f"{_typed(inst.false_value, names)}")
    if isinstance(inst, CastInst):
        return (f"{ref} = {inst.opcode} {_typed(inst.value, names)} "
                f"to {inst.type}")
    if isinstance(inst, CallInst):
        args = ", ".join(_typed(a, names) for a in inst.args)
        prefix = f"{ref} = " if not inst.type.is_void() else ""
        return f"{prefix}call {inst.type} @{inst.callee}({args})"
    raise NotImplementedError(f"cannot print {inst.opcode}")


def print_block(block: BasicBlock,
                names: dict[int, str] | None = None) -> str:
    lines = [f"{_label(block, names)}:"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst, names)}")
    return "\n".join(lines)


def print_function(function: Function,
                   names: dict[int, str] | None = None) -> str:
    params = ", ".join(f"{a.type} %{_operand(a, names)[1:]}"
                       for a in function.args)
    header = f"define {function.return_type} @{function.name}({params})"
    if function.is_declaration():
        return f"declare {function.return_type} @{function.name}({params})"
    body = "\n".join(print_block(b, names) for b in function.blocks)
    return f"{header} {{\n{body}\n}}"


def canonical_names(function: Function) -> dict[int, str]:
    """Position-derived names for every local value of ``function``.

    Arguments become ``a0..``, blocks ``b0..`` (layout order) and
    instruction results ``v0..`` (program order). Constants and globals are
    not renamed — their printed form is already structural. The mapping is
    keyed by ``id()`` purely as an object-identity lookup for the printer;
    no ordering is ever derived from the ids.
    """
    names: dict[int, str] = {}
    for i, arg in enumerate(function.args):
        names[id(arg)] = f"a{i}"
    for bi, block in enumerate(function.blocks):
        names[id(block)] = f"b{bi}"
    counter = 0
    for block in function.blocks:
        for inst in block.instructions:
            if not inst.type.is_void():
                names[id(inst)] = f"v{counter}"
                counter += 1
    return names


def print_function_canonical(function: Function) -> str:
    """The canonical textual form: local names replaced by dense
    position-derived ones, so the text is a pure function of structure.
    This is the form the content-addressed cache hashes
    (:func:`repro.cache.fingerprint.function_fingerprint`); structurally
    identical functions produce byte-identical canonical text whatever
    their build history named things."""
    return print_function(function, canonical_names(function))


def print_module(module: Module) -> str:
    parts = []
    for gv in module.globals.values():
        kind = "constant" if gv.constant else "global"
        parts.append(f"@{gv.name} = {kind} {gv.value_type}")
    for function in module.functions.values():
        parts.append(print_function(function))
    return "\n\n".join(parts) + "\n"
