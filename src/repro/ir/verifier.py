"""Structural IR verifier.

Checks the invariants the rest of the system relies on:

* every block ends with exactly one terminator, which is the last instruction;
* phis appear only at the start of a block and cover exactly the predecessors;
* operand types match (largely enforced at construction, re-checked here);
* every value use is dominated by its definition (SSA dominance property);
* branch targets belong to the same function.
"""

from __future__ import annotations

from ..errors import VerificationError
from .instructions import Instruction, PhiInst, BranchInst
from .module import BasicBlock, Function, Module
from .values import Argument, Constant, Value


def verify_module(module: Module) -> None:
    for function in module.functions.values():
        if not function.is_declaration():
            verify_function(function)


def verify_function(function: Function) -> None:
    if not function.blocks:
        raise VerificationError(f"@{function.name}: no blocks")
    blocks = set(function.blocks)

    for block in function.blocks:
        _verify_block_shape(function, block, blocks)

    _verify_phis(function)
    _verify_ssa_dominance(function)


def _verify_block_shape(function: Function, block: BasicBlock,
                        blocks: set[BasicBlock]) -> None:
    name = f"@{function.name}/%{block.name}"
    if not block.instructions:
        raise VerificationError(f"{name}: empty block")
    term = block.instructions[-1]
    if not term.is_terminator():
        raise VerificationError(f"{name}: does not end in a terminator")
    for inst in block.instructions[:-1]:
        if inst.is_terminator():
            raise VerificationError(f"{name}: terminator in mid-block")
    if isinstance(term, BranchInst):
        for target in term.targets():
            if target not in blocks:
                raise VerificationError(
                    f"{name}: branch to foreign block %{target.name}")
    seen_non_phi = False
    for inst in block.instructions:
        if inst.parent is not block:
            raise VerificationError(f"{name}: instruction with wrong parent")
        if isinstance(inst, PhiInst):
            if seen_non_phi:
                raise VerificationError(f"{name}: phi after non-phi")
        else:
            seen_non_phi = True


def _verify_phis(function: Function) -> None:
    for block in function.blocks:
        preds = block.predecessors()
        for phi in block.phis():
            incoming_blocks = [b for _, b in phi.incoming]
            if len(set(map(id, incoming_blocks))) != len(incoming_blocks):
                raise VerificationError(
                    f"phi {phi.ref()} has duplicate incoming blocks")
            if set(map(id, incoming_blocks)) != set(map(id, preds)):
                got = sorted(b.name for b in incoming_blocks)
                want = sorted(b.name for b in preds)
                raise VerificationError(
                    f"phi {phi.ref()} incoming blocks {got} != preds {want}")


def _verify_ssa_dominance(function: Function) -> None:
    # Local import: analysis depends on ir, not vice versa, except lazily here.
    from ..analysis.dominators import DominatorTree

    domtree = DominatorTree.block_level(function)
    positions: dict[int, tuple[BasicBlock, int]] = {}
    for block in function.blocks:
        for i, inst in enumerate(block.instructions):
            positions[id(inst)] = (block, i)

    for block in function.blocks:
        for i, inst in enumerate(block.instructions):
            for op_index, op in enumerate(inst.operands):
                if not isinstance(op, Instruction):
                    continue
                if isinstance(inst, PhiInst) and op_index % 2 == 1:
                    continue  # block operand
                def_pos = positions.get(id(op))
                if def_pos is None:
                    raise VerificationError(
                        f"{inst.ref()} uses {op.ref()} from another function")
                if isinstance(inst, PhiInst):
                    # Use is "at the end of" the incoming block.
                    pred = inst.incoming[op_index // 2][1]
                    if not domtree.dominates_block(def_pos[0], pred):
                        raise VerificationError(
                            f"phi {inst.ref()} incoming {op.ref()} does not "
                            f"dominate predecessor %{pred.name}")
                    continue
                def_block, def_index = def_pos
                if def_block is block:
                    if def_index >= i:
                        raise VerificationError(
                            f"{inst.ref()} uses {op.ref()} before definition")
                elif not domtree.dominates_block(def_block, block):
                    raise VerificationError(
                        f"{inst.ref()} use of {op.ref()} not dominated by def")
