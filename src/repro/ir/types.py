"""Type system for the LLVM-like IR.

Types are interned: constructing the same type twice yields the same object,
so identity comparison (``is``) works and types are hashable dictionary keys.
The set of types mirrors what the paper's IDL atoms can observe: integers,
floats, pointers (plus void/array/function types needed to build programs).
"""

from __future__ import annotations

from ..errors import IRError


class IRType:
    """Base class for all IR types."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def is_first_class(self) -> bool:
        """True for types a register value may have."""
        return not (self.is_void() or self.is_function())

    def __repr__(self) -> str:
        return f"<IRType {self}>"


class VoidType(IRType):
    _instance: "VoidType | None" = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "void"


class LabelType(IRType):
    """The type of basic-block labels (only used by branch operands)."""

    _instance: "LabelType | None" = None

    def __new__(cls) -> "LabelType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "label"


class IntType(IRType):
    """An integer type of a fixed bit width (i1, i8, i32, i64...)."""

    _cache: dict[int, "IntType"] = {}

    def __new__(cls, bits: int) -> "IntType":
        if bits <= 0:
            raise IRError(f"invalid integer width: {bits}")
        inst = cls._cache.get(bits)
        if inst is None:
            inst = super().__new__(cls)
            inst._bits = bits
            cls._cache[bits] = inst
        return inst

    @property
    def bits(self) -> int:
        return self._bits

    def min_value(self) -> int:
        return -(1 << (self._bits - 1)) if self._bits > 1 else 0

    def max_value(self) -> int:
        return (1 << (self._bits - 1)) - 1 if self._bits > 1 else 1

    def __str__(self) -> str:
        return f"i{self._bits}"


class FloatType(IRType):
    """An IEEE floating point type: 32-bit ``float`` or 64-bit ``double``."""

    _cache: dict[int, "FloatType"] = {}

    def __new__(cls, bits: int) -> "FloatType":
        if bits not in (32, 64):
            raise IRError(f"invalid float width: {bits}")
        inst = cls._cache.get(bits)
        if inst is None:
            inst = super().__new__(cls)
            inst._bits = bits
            cls._cache[bits] = inst
        return inst

    @property
    def bits(self) -> int:
        return self._bits

    def __str__(self) -> str:
        return "float" if self._bits == 32 else "double"


class PointerType(IRType):
    """A typed pointer (``<pointee>*``)."""

    _cache: dict[IRType, "PointerType"] = {}

    def __new__(cls, pointee: IRType) -> "PointerType":
        inst = cls._cache.get(pointee)
        if inst is None:
            if pointee.is_void():
                raise IRError("pointer to void is not allowed; use i8*")
            inst = super().__new__(cls)
            inst._pointee = pointee
            cls._cache[pointee] = inst
        return inst

    @property
    def pointee(self) -> IRType:
        return self._pointee

    def __str__(self) -> str:
        return f"{self._pointee}*"


class ArrayType(IRType):
    """A fixed-length array ``[N x T]`` used by globals and allocas."""

    _cache: dict[tuple[int, IRType], "ArrayType"] = {}

    def __new__(cls, count: int, element: IRType) -> "ArrayType":
        key = (count, element)
        inst = cls._cache.get(key)
        if inst is None:
            if count < 0:
                raise IRError(f"invalid array length: {count}")
            inst = super().__new__(cls)
            inst._count = count
            inst._element = element
            cls._cache[key] = inst
        return inst

    @property
    def count(self) -> int:
        return self._count

    @property
    def element(self) -> IRType:
        return self._element

    def base_element(self) -> IRType:
        """The scalar element type after peeling all array dimensions."""
        ty: IRType = self
        while isinstance(ty, ArrayType):
            ty = ty.element
        return ty

    def __str__(self) -> str:
        return f"[{self._count} x {self._element}]"


class FunctionType(IRType):
    """A function signature ``ret(params...)``."""

    _cache: dict[tuple, "FunctionType"] = {}

    def __new__(cls, ret: IRType, params: tuple[IRType, ...] | list) -> "FunctionType":
        params = tuple(params)
        key = (ret, params)
        inst = cls._cache.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst._ret = ret
            inst._params = params
            cls._cache[key] = inst
        return inst

    @property
    def ret(self) -> IRType:
        return self._ret

    @property
    def params(self) -> tuple[IRType, ...]:
        return self._params

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self._params)
        return f"{self._ret} ({params})"


# Commonly used singletons.
VOID = VoidType()
LABEL = LabelType()
I1 = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def ptr(ty: IRType) -> PointerType:
    """Shorthand for :class:`PointerType`."""
    return PointerType(ty)


def parse_type(text: str) -> IRType:
    """Parse a type from its textual form (inverse of ``str``).

    Supports scalars, pointers and arrays, e.g. ``"double*"``,
    ``"[4 x [8 x float]]"``.
    """
    text = text.strip()
    stars = 0
    while text.endswith("*"):
        stars += 1
        text = text[:-1].strip()
    base = _parse_base_type(text)
    for _ in range(stars):
        base = PointerType(base)
    return base


def _parse_base_type(text: str) -> IRType:
    if text == "void":
        return VOID
    if text == "label":
        return LABEL
    if text == "float":
        return F32
    if text == "double":
        return F64
    if text.startswith("i") and text[1:].isdigit():
        return IntType(int(text[1:]))
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1]
        # Split "N x T" at the first 'x' that is not inside brackets.
        depth = 0
        for i, ch in enumerate(inner):
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == "x" and depth == 0:
                count = int(inner[:i].strip())
                elem = parse_type(inner[i + 1:])
                return ArrayType(count, elem)
        raise IRError(f"malformed array type: {text!r}")
    raise IRError(f"unknown type: {text!r}")
