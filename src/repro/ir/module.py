"""Module / Function / BasicBlock containers for the LLVM-like IR."""

from __future__ import annotations

from typing import Iterator

from ..errors import IRError
from .instructions import BranchInst, Instruction, PhiInst
from .types import LABEL, FunctionType, IRType
from .values import Argument, GlobalVariable, Value


class BasicBlock(Value):
    """A straight-line instruction sequence ending in one terminator.

    Blocks are :class:`Value` subclasses (with label type) so branch
    instructions can hold them as operands and the use-list machinery tracks
    predecessor edges automatically.
    """

    def __init__(self, name: str, parent: "Function | None" = None):
        super().__init__(LABEL, name)
        self.parent = parent
        self.instructions: list[Instruction] = []

    # -- structure -------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        if inst.parent is not None:
            raise IRError(f"instruction {inst.ref()} already has a parent")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        if inst.parent is not None:
            raise IRError(f"instruction {inst.ref()} already has a parent")
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def phis(self) -> list[PhiInst]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, PhiInst):
                result.append(inst)
            else:
                break
        return result

    def first_non_phi(self) -> Instruction | None:
        for inst in self.instructions:
            if not isinstance(inst, PhiInst):
                return inst
        return None

    # -- CFG edges ---------------------------------------------------------------
    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        if isinstance(term, BranchInst):
            # Deduplicate (cond branch may target the same block twice).
            seen: list[BasicBlock] = []
            for target in term.targets():
                if target not in seen:
                    seen.append(target)
            return seen
        return []

    def predecessors(self) -> list["BasicBlock"]:
        preds: list[BasicBlock] = []
        for use in self.uses:
            user = use.user
            if isinstance(user, BranchInst) and user.parent is not None:
                if user.parent not in preds:
                    preds.append(user.parent)
        return preds

    def ref(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"


class Function:
    """A function: argument list plus a list of basic blocks."""

    def __init__(self, name: str, ftype: FunctionType,
                 module: "Module | None" = None,
                 arg_names: list[str] | None = None):
        self.name = name
        self.type = ftype
        self.module = module
        self.blocks: list[BasicBlock] = []
        names = arg_names or [f"arg{i}" for i in range(len(ftype.params))]
        if len(names) != len(ftype.params):
            raise IRError("argument name count mismatch")
        self.args = [Argument(ty, nm, self, i)
                     for i, (ty, nm) in enumerate(zip(ftype.params, names))]
        self._name_counter = 0

    @property
    def return_type(self) -> IRType:
        return self.type.ret

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def is_declaration(self) -> bool:
        return not self.blocks

    def append_block(self, name: str = "") -> BasicBlock:
        block = BasicBlock(self.unique_name(name or "bb"), self)
        self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def unique_name(self, base: str) -> str:
        """Generate a name unique within this function."""
        existing = {b.name for b in self.blocks}
        for inst in self.instructions():
            if inst.name:
                existing.add(inst.name)
        for arg in self.args:
            existing.add(arg.name)
        if base and base not in existing:
            return base
        while True:
            candidate = f"{base}{self._name_counter}"
            self._name_counter += 1
            if candidate not in existing:
                return candidate

    def __repr__(self) -> str:
        return f"<Function @{self.name}: {self.type}>"


class Module:
    """Top-level container: functions and global variables."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function @{function.name}")
        function.module = self
        self.functions[function.name] = function
        return function

    def create_function(self, name: str, ftype: FunctionType,
                        arg_names: list[str] | None = None) -> Function:
        return self.add_function(Function(name, ftype, arg_names=arg_names))

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function @{name} in module") from None

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self.globals:
            raise IRError(f"duplicate global @{gv.name}")
        self.globals[gv.name] = gv
        return gv

    def instructions(self) -> Iterator[Instruction]:
        for function in self.functions.values():
            yield from function.instructions()

    def __repr__(self) -> str:
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
