"""IRBuilder: convenience layer for constructing instructions in order.

Mirrors llvm::IRBuilder — keeps an insertion point and exposes one method
per instruction kind, auto-assigning names from the parent function.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import IRError
from .instructions import (
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .types import FloatType, IntType, IRType
from .values import Value


class IRBuilder:
    """Builds instructions at the end of a block (or before an instruction)."""

    def __init__(self, block=None):
        self.block = block
        self.before: Instruction | None = None

    def position_at_end(self, block) -> None:
        self.block = block
        self.before = None

    def position_before(self, inst: Instruction) -> None:
        self.block = inst.parent
        self.before = inst

    def insert(self, inst: Instruction, name: str = "") -> Instruction:
        if self.block is None:
            raise IRError("builder has no insertion block")
        if not inst.type.is_void() and not inst.name:
            inst.name = self.block.parent.unique_name(name or "t")
        if self.before is None:
            self.block.append(inst)
        else:
            self.block.insert(self.before.index_in_block(), inst)
        return inst

    # -- arithmetic ------------------------------------------------------------
    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.insert(BinaryOperator(opcode, lhs, rhs), name)

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("srem", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fdiv", lhs, rhs, name)

    # -- comparisons ------------------------------------------------------------
    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.insert(ICmpInst(pred, lhs, rhs), name or "cmp")

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.insert(FCmpInst(pred, lhs, rhs), name or "fcmp")

    # -- memory -----------------------------------------------------------------
    def alloca(self, ty: IRType, name: str = "") -> Value:
        return self.insert(AllocaInst(ty), name or "slot")

    def load(self, pointer: Value, name: str = "") -> Value:
        return self.insert(LoadInst(pointer), name or "ld")

    def store(self, value: Value, pointer: Value) -> Instruction:
        return self.insert(StoreInst(value, pointer))

    def gep(self, pointer: Value, indices: Sequence[Value], name: str = "") -> Value:
        return self.insert(GEPInst(pointer, indices), name or "addr")

    # -- control flow -------------------------------------------------------------
    def br(self, target) -> Instruction:
        return self.insert(BranchInst(target))

    def cond_br(self, cond: Value, then_block, else_block) -> Instruction:
        return self.insert(BranchInst(cond, then_block, else_block))

    def ret(self, value: Value | None = None) -> Instruction:
        return self.insert(RetInst(value))

    def unreachable(self) -> Instruction:
        return self.insert(UnreachableInst())

    def phi(self, ty: IRType, name: str = "") -> PhiInst:
        phi = PhiInst(ty)
        block = self.block
        if block is None:
            raise IRError("builder has no insertion block")
        if not phi.name:
            phi.name = block.parent.unique_name(name or "phi")
        # Phis always go to the start of the block, after existing phis.
        index = len(block.phis())
        block.insert(index, phi)
        return phi

    # -- misc ----------------------------------------------------------------------
    def select(self, cond: Value, tval: Value, fval: Value, name: str = "") -> Value:
        return self.insert(SelectInst(cond, tval, fval), name or "sel")

    def cast(self, opcode: str, value: Value, dest: IRType, name: str = "") -> Value:
        return self.insert(CastInst(opcode, value, dest), name or "cast")

    def sext(self, value: Value, dest: IRType, name: str = "") -> Value:
        return self.cast("sext", value, dest, name)

    def zext(self, value: Value, dest: IRType, name: str = "") -> Value:
        return self.cast("zext", value, dest, name)

    def trunc(self, value: Value, dest: IRType, name: str = "") -> Value:
        return self.cast("trunc", value, dest, name)

    def sitofp(self, value: Value, dest: IRType, name: str = "") -> Value:
        return self.cast("sitofp", value, dest, name)

    def fptosi(self, value: Value, dest: IRType, name: str = "") -> Value:
        return self.cast("fptosi", value, dest, name)

    def call(self, callee: str, args: Sequence[Value], ret: IRType,
             name: str = "") -> Value:
        return self.insert(CallInst(callee, args, ret), name or "call")

    # -- automatic numeric conversion (used by the C front end) --------------------
    def coerce(self, value: Value, dest: IRType, name: str = "") -> Value:
        """Insert whatever cast converts ``value`` to ``dest`` (or no-op)."""
        src = value.type
        if src is dest:
            return value
        if isinstance(src, IntType) and isinstance(dest, IntType):
            if src.bits < dest.bits:
                op = "zext" if src.bits == 1 else "sext"
                return self.cast(op, value, dest, name)
            return self.trunc(value, dest, name)
        if isinstance(src, IntType) and isinstance(dest, FloatType):
            return self.sitofp(value, dest, name)
        if isinstance(src, FloatType) and isinstance(dest, IntType):
            return self.fptosi(value, dest, name)
        if isinstance(src, FloatType) and isinstance(dest, FloatType):
            op = "fpext" if src.bits < dest.bits else "fptrunc"
            return self.cast(op, value, dest, name)
        if src.is_pointer() and dest.is_pointer():
            return self.cast("bitcast", value, dest, name)
        raise IRError(f"cannot coerce {src} to {dest}")
