"""Value hierarchy for the LLVM-like IR.

A :class:`Value` is anything that may appear as an instruction operand:
constants, function arguments, global variables, basic blocks (for branch
targets) and instructions themselves. Values maintain explicit use lists so
def-use chains — which the IDL ``data flow`` atoms traverse — are O(1) to
query and so ``replace_all_uses_with`` works during transformation.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import IRError
from .types import F32, F64, I1, ArrayType, FloatType, IntType, IRType, PointerType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .instructions import Instruction
    from .module import Function


class Use:
    """One operand slot: ``user.operands[index] is value``."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int):
        self.user = user
        self.index = index

    def __repr__(self) -> str:
        return f"<Use {self.user!r}[{self.index}]>"


class Value:
    """Base class for everything that can be used as an operand."""

    def __init__(self, ty: IRType, name: str = ""):
        self.type = ty
        self.name = name
        self.uses: list[Use] = []

    # -- use-list management -------------------------------------------------
    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, use: Use) -> None:
        for i, u in enumerate(self.uses):
            if u is use:
                del self.uses[i]
                return
        raise IRError(f"use not found on {self!r}")

    def users(self) -> Iterator["User"]:
        """Iterate over distinct users of this value."""
        seen: set[int] = set()
        for use in list(self.uses):
            if id(use.user) not in seen:
                seen.add(id(use.user))
                yield use.user

    def is_used(self) -> bool:
        return bool(self.uses)

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every operand slot referring to ``self`` to ``new``."""
        if new is self:
            return
        for use in list(self.uses):
            use.user.set_operand(use.index, new)

    # -- printing -------------------------------------------------------------
    def ref(self) -> str:
        """The operand reference used when printing (e.g. ``%x``, ``42``)."""
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class User(Value):
    """A value that holds operands (instructions and constant expressions)."""

    def __init__(self, ty: IRType, operands: Iterable[Value] = (), name: str = ""):
        super().__init__(ty, name)
        self.operands: list[Value] = []
        self._uses: list[Use] = []
        for op in operands:
            self.append_operand(op)

    def append_operand(self, value: Value) -> None:
        use = Use(self, len(self.operands))
        self.operands.append(value)
        self._uses.append(use)
        value.add_use(use)

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        use = self._uses[index]
        old.remove_use(use)
        self.operands[index] = value
        value.add_use(use)

    def drop_all_operands(self) -> None:
        """Detach this user from its operands (before deletion)."""
        for i, op in enumerate(self.operands):
            op.remove_use(self._uses[i])
        self.operands = []
        self._uses = []


class Constant(Value):
    """Base class for compile-time constants."""

    def is_zero(self) -> bool:
        return False


class ConstantInt(Constant):
    """An integer constant of a specific width, stored two's-complement."""

    def __init__(self, ty: IntType, value: int):
        if not isinstance(ty, IntType):
            raise IRError(f"ConstantInt requires an integer type, got {ty}")
        super().__init__(ty)
        mask = (1 << ty.bits) - 1
        v = value & mask
        # Interpret as signed.
        if ty.bits > 1 and v >= (1 << (ty.bits - 1)):
            v -= 1 << ty.bits
        self.value = v

    def is_zero(self) -> bool:
        return self.value == 0

    def ref(self) -> str:
        if self.type is I1:
            return "true" if self.value else "false"
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("cint", self.type, self.value))


class ConstantFloat(Constant):
    """A floating point constant (float or double)."""

    def __init__(self, ty: FloatType, value: float):
        if not isinstance(ty, FloatType):
            raise IRError(f"ConstantFloat requires a float type, got {ty}")
        super().__init__(ty)
        self.value = float(value)

    def is_zero(self) -> bool:
        return self.value == 0.0 and not math.copysign(1.0, self.value) < 0

    def ref(self) -> str:
        if math.isinf(self.value):
            return "inf" if self.value > 0 else "-inf"
        if math.isnan(self.value):
            return "nan"
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantFloat)
            and other.type is self.type
            and (other.value == self.value
                 or (math.isnan(other.value) and math.isnan(self.value)))
        )

    def __hash__(self) -> int:
        return hash(("cfloat", self.type, self.value))


class UndefValue(Constant):
    """An undefined value of a given type."""

    def __init__(self, ty: IRType):
        super().__init__(ty)

    def ref(self) -> str:
        return "undef"


class ConstantPointerNull(Constant):
    """The null pointer of a given pointer type."""

    def __init__(self, ty: PointerType):
        if not isinstance(ty, PointerType):
            raise IRError("null constant requires pointer type")
        super().__init__(ty)

    def is_zero(self) -> bool:
        return True

    def ref(self) -> str:
        return "null"


class GlobalVariable(Constant):
    """A module-level variable; its value is the *address* (a pointer).

    ``initializer`` may be a python scalar/list used by the interpreter to
    materialise initial memory contents.
    """

    def __init__(self, name: str, value_type: IRType, initializer=None,
                 constant: bool = False):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.constant = constant

    def ref(self) -> str:
        return f"@{self.name}"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, ty: IRType, name: str, function: "Function | None" = None,
                 index: int = 0):
        super().__init__(ty, name)
        self.function = function
        self.index = index


def const_int(value: int, ty: IntType | None = None) -> ConstantInt:
    """Convenience constructor, defaulting to i64 (the index type)."""
    from .types import I64

    return ConstantInt(ty or I64, value)


def const_float(value: float, ty: FloatType | None = None) -> ConstantFloat:
    """Convenience constructor, defaulting to double."""
    return ConstantFloat(ty or F64, value)


def const_bool(value: bool) -> ConstantInt:
    return ConstantInt(I1, 1 if value else 0)


def is_constant_zero(value: Value) -> bool:
    """True if ``value`` is a constant equal to zero (int, float or null)."""
    return isinstance(value, Constant) and value.is_zero()


def default_initializer(ty: IRType):
    """The zero value the interpreter uses for uninitialised memory."""
    if isinstance(ty, IntType):
        return 0
    if isinstance(ty, FloatType):
        return 0.0
    if isinstance(ty, PointerType):
        return None
    if isinstance(ty, ArrayType):
        return [default_initializer(ty.element) for _ in range(ty.count)]
    raise IRError(f"no default initializer for type {ty}")
