"""Parser for the textual IR format produced by :mod:`.printer`.

Round-tripping (``parse(print(m)) == m`` structurally) is property-tested.
The parser is line-oriented: one instruction per line, blocks introduced by
``name:`` labels, functions by ``define``/``declare`` headers.

Forward references (branches to later blocks, phis over later values) are
resolved with placeholder values that are patched after the function body
has been read.
"""

from __future__ import annotations

import re

from ..errors import IRError
from .instructions import (
    BINARY_OPS,
    CAST_OPS,
    FCMP_PREDICATES,
    ICMP_PREDICATES,
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .module import BasicBlock, Function, Module
from .types import FunctionType, IRType, IntType, FloatType, PointerType, parse_type
from .values import (
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Value,
)

_DEFINE_RE = re.compile(
    r"^(define|declare)\s+(?P<ret>.+?)\s+@(?P<name>[\w.$-]+)\s*\((?P<params>.*)\)\s*(\{)?\s*$")
_LABEL_RE = re.compile(r"^([\w.$-]+):$")
_GLOBAL_RE = re.compile(
    r"^@(?P<name>[\w.$-]+)\s*=\s*(?P<kind>global|constant)\s+(?P<type>.+)$")


class _Placeholder(Value):
    """Stands in for a not-yet-defined local value during parsing."""

    def __init__(self, ty: IRType, name: str):
        super().__init__(ty, name)


class _FunctionParser:
    def __init__(self, module: Module, function: Function):
        self.module = module
        self.function = function
        self.values: dict[str, Value] = {f"%{a.name}": a for a in function.args}
        self.blocks: dict[str, BasicBlock] = {}
        self.placeholders: dict[str, _Placeholder] = {}
        self.current: BasicBlock | None = None

    # -- scaffolding ------------------------------------------------------------
    def get_block(self, name: str) -> BasicBlock:
        block = self.blocks.get(name)
        if block is None:
            block = BasicBlock(name, self.function)
            self.blocks[name] = block
        return block

    def define(self, name: str, value: Value) -> None:
        key = f"%{name}"
        if key in self.values and not isinstance(self.values[key], _Placeholder):
            raise IRError(f"redefinition of {key}")
        self.values[key] = value

    def operand(self, text: str, ty: IRType) -> Value:
        """Resolve an operand reference of a known type."""
        text = text.strip()
        if text.startswith("%"):
            existing = self.values.get(text)
            if existing is not None:
                return existing
            ph = self.placeholders.get(text)
            if ph is None:
                ph = _Placeholder(ty, text[1:])
                self.placeholders[text] = ph
            return ph
        if text.startswith("@"):
            gv = self.module.globals.get(text[1:])
            if gv is None:
                raise IRError(f"unknown global {text}")
            return gv
        if text == "undef":
            return UndefValue(ty)
        if text == "null":
            if not isinstance(ty, PointerType):
                raise IRError("null requires pointer type")
            return ConstantPointerNull(ty)
        if text == "true":
            return ConstantInt(IntType(1), 1)
        if text == "false":
            return ConstantInt(IntType(1), 0)
        if isinstance(ty, IntType):
            return ConstantInt(ty, int(text, 0))
        if isinstance(ty, FloatType):
            return ConstantFloat(ty, float(text))
        raise IRError(f"cannot parse operand {text!r} of type {ty}")

    def finish(self) -> None:
        """Patch placeholders and attach blocks in definition order."""
        for key, ph in self.placeholders.items():
            real = self.values.get(key)
            if real is None or isinstance(real, _Placeholder):
                raise IRError(f"undefined value {key} in @{self.function.name}")
            ph.replace_all_uses_with(real)

    # -- per-line parsing ----------------------------------------------------------
    def parse_line(self, line: str) -> None:
        label = _LABEL_RE.match(line)
        if label:
            block = self.get_block(label.group(1))
            if block in self.function.blocks:
                raise IRError(f"duplicate block {label.group(1)}")
            self.function.blocks.append(block)
            self.current = block
            return
        if self.current is None:
            raise IRError(f"instruction outside block: {line!r}")
        inst, name = self._parse_instruction(line)
        self.current.append(inst)
        if name is not None:
            inst.name = name
            self.define(name, inst)

    def _parse_instruction(self, line: str):
        name = None
        if "=" in line and not line.startswith(("store", "br", "ret", "call")):
            lhs, line = line.split("=", 1)
            lhs = lhs.strip()
            if not lhs.startswith("%"):
                raise IRError(f"bad assignment target {lhs!r}")
            name = lhs[1:]
            line = line.strip()
        parts = line.split(None, 1)
        op = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if op in BINARY_OPS:
            return self._parse_binop(op, rest), name
        if op == "icmp":
            return self._parse_cmp(rest, ICMP_PREDICATES, ICmpInst), name
        if op == "fcmp":
            return self._parse_cmp(rest, FCMP_PREDICATES, FCmpInst), name
        if op == "alloca":
            return AllocaInst(parse_type(rest)), name
        if op == "load":
            return self._parse_load(rest), name
        if op == "store":
            return self._parse_store(rest), name
        if op == "gep":
            return self._parse_gep(rest), name
        if op == "br":
            return self._parse_br(rest), name
        if op == "ret":
            return self._parse_ret(rest), name
        if op == "unreachable":
            return UnreachableInst(), name
        if op == "phi":
            return self._parse_phi(rest), name
        if op == "select":
            return self._parse_select(rest), name
        if op in CAST_OPS:
            return self._parse_cast(op, rest), name
        if op == "call":
            return self._parse_call(rest), name
        raise IRError(f"unknown instruction {line!r}")

    def _split_typed(self, text: str) -> tuple[IRType, str]:
        """Split ``"double* %p"`` into (type, operand-text)."""
        text = text.strip()
        idx = text.rfind(" ")
        if idx < 0:
            raise IRError(f"expected 'type value', got {text!r}")
        return parse_type(text[:idx]), text[idx + 1:]

    def _parse_binop(self, op: str, rest: str):
        ty_text, operands = rest.split(None, 1)
        # Type may contain spaces only for arrays, which binops never use.
        ty = parse_type(ty_text)
        lhs_text, rhs_text = _split_top_commas(operands, 2)
        lhs = self.operand(lhs_text, ty)
        rhs = self.operand(rhs_text, ty)
        return BinaryOperator(op, lhs, rhs)

    def _parse_cmp(self, rest: str, predicates, cls):
        pred, rest = rest.split(None, 1)
        if pred not in predicates:
            raise IRError(f"unknown predicate {pred!r}")
        ty_text, operands = rest.split(None, 1)
        ty = parse_type(ty_text)
        lhs_text, rhs_text = _split_top_commas(operands, 2)
        return cls(pred, self.operand(lhs_text, ty), self.operand(rhs_text, ty))

    def _parse_load(self, rest: str):
        val_ty_text, ptr_part = _split_top_commas(rest, 2)
        parse_type(val_ty_text)  # validated, value type is implied by pointer
        ptr_ty, ptr_text = self._split_typed(ptr_part)
        return LoadInst(self.operand(ptr_text, ptr_ty))

    def _parse_store(self, rest: str):
        val_part, ptr_part = _split_top_commas(rest, 2)
        val_ty, val_text = self._split_typed(val_part)
        ptr_ty, ptr_text = self._split_typed(ptr_part)
        return StoreInst(self.operand(val_text, val_ty),
                         self.operand(ptr_text, ptr_ty))

    def _parse_gep(self, rest: str):
        parts = _split_top_commas(rest)
        ptr_ty, ptr_text = self._split_typed(parts[0])
        pointer = self.operand(ptr_text, ptr_ty)
        indices = []
        for part in parts[1:]:
            idx_ty, idx_text = self._split_typed(part)
            indices.append(self.operand(idx_text, idx_ty))
        return GEPInst(pointer, indices)

    def _parse_br(self, rest: str):
        parts = _split_top_commas(rest)
        if len(parts) == 1:
            label = parts[0].split()
            if label[0] != "label":
                raise IRError(f"bad branch {rest!r}")
            return BranchInst(self.get_block(label[1].lstrip("%")))
        if len(parts) == 3:
            cond_ty, cond_text = self._split_typed(parts[0])
            cond = self.operand(cond_text, cond_ty)
            then_name = parts[1].split()[1].lstrip("%")
            else_name = parts[2].split()[1].lstrip("%")
            return BranchInst(cond, self.get_block(then_name),
                              self.get_block(else_name))
        raise IRError(f"bad branch {rest!r}")

    def _parse_ret(self, rest: str):
        rest = rest.strip()
        if rest == "void":
            return RetInst()
        ty, text = self._split_typed(rest)
        return RetInst(self.operand(text, ty))

    def _parse_phi(self, rest: str):
        ty_text, arms_text = rest.split(None, 1)
        ty = parse_type(ty_text)
        phi = PhiInst(ty)
        for arm in re.finditer(r"\[\s*([^,\]]+)\s*,\s*%([\w.$-]+)\s*\]", arms_text):
            value = self.operand(arm.group(1).strip(), ty)
            block = self.get_block(arm.group(2))
            phi.add_incoming(value, block)
        if not phi.incoming:
            raise IRError(f"phi with no incoming arms: {rest!r}")
        return phi

    def _parse_select(self, rest: str):
        parts = _split_top_commas(rest, 3)
        cond_ty, cond_text = self._split_typed(parts[0])
        tty, ttext = self._split_typed(parts[1])
        fty, ftext = self._split_typed(parts[2])
        return SelectInst(self.operand(cond_text, cond_ty),
                          self.operand(ttext, tty),
                          self.operand(ftext, fty))

    def _parse_cast(self, op: str, rest: str):
        src_part, dest_part = rest.rsplit(" to ", 1)
        src_ty, src_text = self._split_typed(src_part)
        return CastInst(op, self.operand(src_text, src_ty),
                        parse_type(dest_part))

    def _parse_call(self, rest: str):
        match = re.match(r"^(?P<ret>.+?)\s+@(?P<callee>[\w.$-]+)\((?P<args>.*)\)$",
                         rest.strip())
        if not match:
            raise IRError(f"bad call {rest!r}")
        ret = parse_type(match.group("ret"))
        args = []
        args_text = match.group("args").strip()
        if args_text:
            for part in _split_top_commas(args_text):
                ty, text = self._split_typed(part)
                args.append(self.operand(text, ty))
        return CallInst(match.group("callee"), args, ret)


def _split_top_commas(text: str, expected: int | None = None) -> list[str]:
    """Split on commas not inside brackets/parens."""
    parts: list[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current).strip())
    if expected is not None and len(parts) != expected:
        raise IRError(f"expected {expected} comma-separated parts in {text!r}")
    return parts


def parse_module(text: str, name: str = "module") -> Module:
    """Parse a whole module from its textual form."""
    module = Module(name)
    lines = [_strip_comment(line) for line in text.splitlines()]
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        if not line:
            i += 1
            continue
        gmatch = _GLOBAL_RE.match(line)
        if gmatch:
            module.add_global(GlobalVariable(
                gmatch.group("name"), parse_type(gmatch.group("type")),
                constant=gmatch.group("kind") == "constant"))
            i += 1
            continue
        dmatch = _DEFINE_RE.match(line)
        if dmatch:
            i = _parse_function(module, lines, i, dmatch)
            continue
        raise IRError(f"unexpected top-level line: {line!r}")
    return module


def _strip_comment(line: str) -> str:
    idx = line.find(";")
    return line[:idx] if idx >= 0 else line


def _parse_function(module: Module, lines: list[str], i: int, match) -> int:
    ret = parse_type(match.group("ret"))
    params_text = match.group("params").strip()
    param_types: list[IRType] = []
    param_names: list[str] = []
    if params_text:
        for part in _split_top_commas(params_text):
            ty, text = part.rsplit(" ", 1) if " " in part else (part, "")
            param_types.append(parse_type(ty))
            param_names.append(text.lstrip("%") or f"arg{len(param_names)}")
    function = module.create_function(
        match.group("name"), FunctionType(ret, param_types), param_names)
    if match.group(1) == "declare":
        return i + 1
    fparser = _FunctionParser(module, function)
    i += 1
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line:
            continue
        if line == "}":
            fparser.finish()
            return i
        fparser.parse_line(line)
    raise IRError(f"unterminated function @{function.name}")
