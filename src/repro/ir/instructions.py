"""Instruction set of the LLVM-like IR.

The opcodes cover what the paper's IDL atomic constraints can name
(``store load return branch add sub mul fadd fsub fmul fdiv select gep
icmp``) plus the rest of what a C front end needs (casts, phi, call,
alloca, remaining integer/float arithmetic, fcmp).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import IRError, SourceLocation
from .types import (
    I1,
    I64,
    VOID,
    ArrayType,
    FloatType,
    IntType,
    IRType,
    PointerType,
)
from .values import User, Value

if TYPE_CHECKING:  # pragma: no cover
    from .module import BasicBlock, Function


#: Integer binary opcodes.
INT_BINARY_OPS = ("add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
                  "and", "or", "xor", "shl", "lshr", "ashr")
#: Floating point binary opcodes.
FLOAT_BINARY_OPS = ("fadd", "fsub", "fmul", "fdiv", "frem")
BINARY_OPS = INT_BINARY_OPS + FLOAT_BINARY_OPS

#: Cast opcodes, mapping to (source kind, destination kind).
CAST_OPS = ("sext", "zext", "trunc", "sitofp", "fptosi", "fpext", "fptrunc",
            "bitcast", "ptrtoint", "inttoptr")

ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge",
                   "ult", "ule", "ugt", "uge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge",
                   "ueq", "une", "ult", "ule", "ugt", "uge")

#: Commutative binary opcodes (used by instcombine and idiom atoms).
COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})


class Instruction(User):
    """Base class for all instructions.

    ``opcode`` is a plain string; IDL atoms match on it directly. ``parent``
    is the containing :class:`BasicBlock` (set on insertion).
    """

    def __init__(self, opcode: str, ty: IRType, operands: Iterable[Value] = (),
                 name: str = ""):
        super().__init__(ty, operands, name)
        self.opcode = opcode
        self.parent: "BasicBlock | None" = None
        self.location: SourceLocation | None = None

    # -- structural helpers ----------------------------------------------------
    @property
    def function(self) -> "Function | None":
        return self.parent.parent if self.parent is not None else None

    def is_terminator(self) -> bool:
        return isinstance(self, (BranchInst, RetInst, UnreachableInst))

    def has_side_effects(self) -> bool:
        """Conservatively, may this instruction write memory / do IO?"""
        if isinstance(self, (StoreInst, RetInst)):
            return True
        if isinstance(self, CallInst):
            return not self.is_pure()
        return False

    def may_read_memory(self) -> bool:
        if isinstance(self, LoadInst):
            return True
        if isinstance(self, CallInst):
            return not self.is_pure()
        return False

    def erase_from_parent(self) -> None:
        """Remove from block and drop operands. The value must be unused."""
        if self.uses:
            raise IRError(
                f"cannot erase {self.ref()}: still has {len(self.uses)} uses")
        if self.parent is None:
            raise IRError("instruction has no parent")
        self.parent.remove(self)
        self.drop_all_operands()

    def index_in_block(self) -> int:
        if self.parent is None:
            raise IRError("instruction has no parent")
        return self.parent.instructions.index(self)

    def __repr__(self) -> str:
        return f"<{self.opcode} {self.ref()}>"


class BinaryOperator(Instruction):
    """Two-operand arithmetic/logic: ``%r = add i32 %a, %b``."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPS:
            raise IRError(f"unknown binary opcode {opcode!r}")
        if lhs.type is not rhs.type:
            raise IRError(
                f"binary operand type mismatch: {lhs.type} vs {rhs.type}")
        if opcode in FLOAT_BINARY_OPS and not lhs.type.is_float():
            raise IRError(f"{opcode} requires float operands, got {lhs.type}")
        if opcode in INT_BINARY_OPS and not lhs.type.is_integer():
            raise IRError(f"{opcode} requires integer operands, got {lhs.type}")
        super().__init__(opcode, lhs.type, (lhs, rhs), name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPS


class ICmpInst(Instruction):
    """Integer/pointer comparison producing i1."""

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise IRError(f"unknown icmp predicate {predicate!r}")
        if lhs.type is not rhs.type:
            raise IRError(
                f"icmp operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__("icmp", I1, (lhs, rhs), name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class FCmpInst(Instruction):
    """Floating-point comparison producing i1."""

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise IRError(f"unknown fcmp predicate {predicate!r}")
        if lhs.type is not rhs.type:
            raise IRError(
                f"fcmp operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__("fcmp", I1, (lhs, rhs), name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class AllocaInst(Instruction):
    """Stack allocation; yields a pointer to ``allocated_type``."""

    def __init__(self, allocated_type: IRType, name: str = ""):
        super().__init__("alloca", PointerType(allocated_type), (), name)
        self.allocated_type = allocated_type


class LoadInst(Instruction):
    """``%v = load T, T* %p``."""

    def __init__(self, pointer: Value, name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"load requires pointer operand, got {pointer.type}")
        super().__init__("load", pointer.type.pointee, (pointer,), name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class StoreInst(Instruction):
    """``store T %v, T* %p`` — void result."""

    def __init__(self, value: Value, pointer: Value):
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"store requires pointer operand, got {pointer.type}")
        if pointer.type.pointee is not value.type:
            raise IRError(
                f"store type mismatch: {value.type} into {pointer.type}")
        super().__init__("store", VOID, (value, pointer))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


def gep_result_type(base: IRType, num_indices: int) -> IRType:
    """Compute the value type a GEP with ``num_indices`` indices points to."""
    if not isinstance(base, PointerType):
        raise IRError(f"gep base must be a pointer, got {base}")
    ty: IRType = base.pointee
    # The first index steps *through* the pointer and does not change type.
    for _ in range(num_indices - 1):
        if isinstance(ty, ArrayType):
            ty = ty.element
        else:
            raise IRError(f"gep indexes into non-aggregate type {ty}")
    return PointerType(ty)


class GEPInst(Instruction):
    """``getelementptr`` address arithmetic.

    ``gep T* %p, i64 %i`` is ``&p[i]``; for arrays
    ``gep [N x T]* %p, i64 0, i64 %i`` is ``&(*p)[i]``.
    """

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = ""):
        if not indices:
            raise IRError("gep requires at least one index")
        for idx in indices:
            if not idx.type.is_integer():
                raise IRError(f"gep index must be integer, got {idx.type}")
        result = gep_result_type(pointer.type, len(indices))
        super().__init__("gep", result, (pointer, *indices), name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> list[Value]:
        return self.operands[1:]


class BranchInst(Instruction):
    """Conditional or unconditional branch.

    Unconditional: operands = (target,). Conditional: (cond, then, else).
    Block operands are :class:`BasicBlock` values (they have LabelType).
    """

    def __init__(self, *args: Value):
        if len(args) == 1:
            super().__init__("br", VOID, args)
        elif len(args) == 3:
            cond = args[0]
            if cond.type is not I1:
                raise IRError(f"branch condition must be i1, got {cond.type}")
            super().__init__("br", VOID, args)
        else:
            raise IRError("branch takes 1 (target) or 3 (cond, then, else) operands")

    def is_conditional(self) -> bool:
        return len(self.operands) == 3

    @property
    def condition(self) -> Value:
        if not self.is_conditional():
            raise IRError("unconditional branch has no condition")
        return self.operands[0]

    def targets(self) -> list["BasicBlock"]:
        if self.is_conditional():
            return [self.operands[1], self.operands[2]]  # type: ignore[list-item]
        return [self.operands[0]]  # type: ignore[list-item]


class RetInst(Instruction):
    """``ret T %v`` or ``ret void``."""

    def __init__(self, value: Value | None = None):
        super().__init__("ret", VOID, (value,) if value is not None else ())

    @property
    def value(self) -> Value | None:
        return self.operands[0] if self.operands else None


class UnreachableInst(Instruction):
    def __init__(self) -> None:
        super().__init__("unreachable", VOID, ())


class PhiInst(Instruction):
    """SSA phi node. Operands alternate value0, block0, value1, block1, ...

    The paper identifies a phi's incoming blocks with their *terminating
    branch instruction*; :meth:`incoming_branch` exposes that view for the
    IDL ``reaches phi node ... from`` atom.
    """

    def __init__(self, ty: IRType, name: str = ""):
        super().__init__("phi", ty, (), name)

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type is not self.type:
            raise IRError(
                f"phi incoming type mismatch: {value.type} vs {self.type}")
        self.append_operand(value)
        self.append_operand(block)

    @property
    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        pairs = []
        for i in range(0, len(self.operands), 2):
            pairs.append((self.operands[i], self.operands[i + 1]))
        return pairs  # type: ignore[return-value]

    def incoming_value_for(self, block: "BasicBlock") -> Value:
        for value, blk in self.incoming:
            if blk is block:
                return value
        raise IRError(f"phi has no incoming value for block {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i in range(0, len(self.operands), 2):
            if self.operands[i + 1] is block:
                # Drop both operand slots, rebuilding use records.
                values = [(v, b) for v, b in self.incoming if b is not block]
                self.drop_all_operands()
                for v, b in values:
                    self.append_operand(v)
                    self.append_operand(b)
                return
        raise IRError(f"phi has no incoming edge from {block.name}")


class SelectInst(Instruction):
    """``%r = select i1 %c, T %a, T %b``."""

    def __init__(self, cond: Value, true_value: Value, false_value: Value,
                 name: str = ""):
        if cond.type is not I1:
            raise IRError(f"select condition must be i1, got {cond.type}")
        if true_value.type is not false_value.type:
            raise IRError("select arm types differ")
        super().__init__("select", true_value.type,
                         (cond, true_value, false_value), name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]


class CastInst(Instruction):
    """Type conversion (sext/zext/trunc/sitofp/fptosi/fpext/fptrunc/...)."""

    def __init__(self, opcode: str, value: Value, dest: IRType, name: str = ""):
        if opcode not in CAST_OPS:
            raise IRError(f"unknown cast opcode {opcode!r}")
        _check_cast(opcode, value.type, dest)
        super().__init__(opcode, dest, (value,), name)

    @property
    def value(self) -> Value:
        return self.operands[0]


def _check_cast(opcode: str, src: IRType, dest: IRType) -> None:
    def need(cond: bool, msg: str) -> None:
        if not cond:
            raise IRError(f"invalid {opcode}: {src} -> {dest} ({msg})")

    if opcode in ("sext", "zext"):
        need(src.is_integer() and dest.is_integer(), "int->int")
        need(src.bits < dest.bits, "must widen")  # type: ignore[union-attr]
    elif opcode == "trunc":
        need(src.is_integer() and dest.is_integer(), "int->int")
        need(src.bits > dest.bits, "must narrow")  # type: ignore[union-attr]
    elif opcode == "sitofp":
        need(src.is_integer() and dest.is_float(), "int->float")
    elif opcode == "fptosi":
        need(src.is_float() and dest.is_integer(), "float->int")
    elif opcode == "fpext":
        need(src.is_float() and dest.is_float(), "float->float")
        need(src.bits < dest.bits, "must widen")  # type: ignore[union-attr]
    elif opcode == "fptrunc":
        need(src.is_float() and dest.is_float(), "float->float")
        need(src.bits > dest.bits, "must narrow")  # type: ignore[union-attr]
    elif opcode == "ptrtoint":
        need(src.is_pointer() and dest.is_integer(), "ptr->int")
    elif opcode == "inttoptr":
        need(src.is_integer() and dest.is_pointer(), "int->ptr")
    elif opcode == "bitcast":
        need(src.is_pointer() and dest.is_pointer(), "ptr->ptr only")


#: Math intrinsics the interpreter understands; all are pure.
PURE_INTRINSICS = frozenset({
    "sqrt", "fabs", "exp", "log", "pow", "sin", "cos", "tan", "floor",
    "ceil", "fmax", "fmin", "abs", "max", "min", "rand",
})


class CallInst(Instruction):
    """Direct call to a named callee.

    The callee is referenced by name (our IR has no function pointers). After
    idiom replacement, calls whose name starts with ``"repro.api."`` are
    runtime API dispatches handled by :mod:`repro.runtime`.
    """

    def __init__(self, callee: str, args: Sequence[Value], ret: IRType,
                 name: str = ""):
        super().__init__("call", ret, tuple(args), name)
        self.callee = callee

    @property
    def args(self) -> list[Value]:
        return list(self.operands)

    def is_intrinsic(self) -> bool:
        return self.callee in PURE_INTRINSICS

    def is_api_call(self) -> bool:
        return self.callee.startswith("repro.api.")

    def is_pure(self) -> bool:
        # rand is "pure" for data-flow purposes (no memory writes).
        return self.is_intrinsic()
