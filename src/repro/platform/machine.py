"""Machine models for the paper's three evaluation platforms.

The paper measures on an AMD A10-7850K (4-core CPU + integrated Radeon R7
on one die) and an Nvidia GTX Titan X over PCIe. Here each platform is an
analytic model — peak flops, memory bandwidth, transfer bandwidth, launch
latency — with values chosen of the same order as the real parts. All
times produced from these models are labelled *simulated*.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Machine:
    """One execution platform."""

    name: str                 # 'cpu' | 'igpu' | 'gpu'
    description: str
    peak_gflops: float        # double-precision-ish sustained peak
    mem_bandwidth_gbs: float  # device memory bandwidth
    transfer_gbs: float       # host<->device bandwidth (inf for host)
    transfer_latency_us: float
    cores: int
    #: Cost in nanoseconds of one *sequential scalar* IR instruction class
    #: when interpreted as single-threaded host execution (used for the
    #: sequential baseline only, hence present only on the CPU).
    scalar_ns: dict | None = None


#: Per-opcode-class sequential cost in nanoseconds (single CPU core).
_SEQ_COSTS = {
    "load": 1.2, "store": 1.2, "gep": 0.4,
    "fadd": 0.8, "fsub": 0.8, "fmul": 1.0, "fdiv": 6.0, "frem": 10.0,
    "add": 0.3, "sub": 0.3, "mul": 0.9, "sdiv": 7.0, "srem": 7.0,
    "and": 0.3, "or": 0.3, "xor": 0.3, "shl": 0.3, "ashr": 0.3,
    "lshr": 0.3,
    "icmp": 0.3, "fcmp": 0.8, "select": 0.5, "phi": 0.2, "br": 0.4,
    "ret": 0.5, "call": 15.0, "sext": 0.2, "zext": 0.2, "trunc": 0.2,
    "sitofp": 1.0, "fptosi": 1.0, "fpext": 0.5, "fptrunc": 0.5,
    "bitcast": 0.0, "alloca": 1.0, "unreachable": 0.0,
}

CPU = Machine(
    name="cpu",
    description="AMD A10-7850K 4-core CPU (simulated)",
    peak_gflops=55.0,
    mem_bandwidth_gbs=21.0,
    transfer_gbs=float("inf"),
    transfer_latency_us=0.0,
    cores=4,
    scalar_ns=_SEQ_COSTS,
)

IGPU = Machine(
    name="igpu",
    description="AMD Radeon R7 integrated GPU (simulated)",
    peak_gflops=737.0 * 0.25,     # fp64-equivalent throughput slice
    mem_bandwidth_gbs=21.0,       # shares the DDR3 memory system
    transfer_gbs=40.0,            # same-die: coherence traffic only
    transfer_latency_us=15.0,
    cores=512,
)

GPU = Machine(
    name="gpu",
    description="Nvidia GTX Titan X discrete GPU (simulated)",
    peak_gflops=6600.0 * 0.25,
    mem_bandwidth_gbs=336.0,
    transfer_gbs=12.0,            # PCIe 3.0 x16 effective
    transfer_latency_us=90.0,
    cores=3072,
)

MACHINES: dict[str, Machine] = {m.name: m for m in (CPU, IGPU, GPU)}


def sequential_time_seconds(opcode_counts: dict[str, int],
                            scalar_ns: dict | None = None) -> float:
    """Simulated single-core time for the given dynamic opcode counts.

    Summed in sorted opcode order so the result is independent of dict
    insertion order — the execution engines tally identical counts but
    discover blocks in different orders, and float addition is not
    associative.

    ``scalar_ns`` overrides the static per-opcode table — calibration
    (:mod:`repro.platform.calibrate`) passes its anchored, measured
    reweighting here; the default stays the documented static model.
    """
    costs = scalar_ns if scalar_ns is not None else (CPU.scalar_ns or {})
    total_ns = 0.0
    for opcode in sorted(opcode_counts):
        total_ns += opcode_counts[opcode] * costs.get(opcode, 1.0)
    return total_ns * 1e-9
