"""Whole-module offload planner over a buffer-residency graph.

The seed cost layer picked the best API **per call site in isolation**
(:func:`repro.platform.cost.best_api_cost`) and approximated the paper's
§8.3 lazy-copying optimisation by dividing a site's transferred bytes by
its call count — which undercharges whenever a buffer is written between
two calls. This module replaces both with a global model:

1. The :class:`~repro.backends.api.ApiRuntime` records a **residency
   event log** during accelerated execution: one entry per dynamic API
   call, listing (buffer identity, size, access mode) for every pointer
   argument.
2. :class:`ResidencyState` replays that log under a candidate assignment
   of (API, device) per site, maintaining per-buffer *validity sets*
   (which memories hold a current copy) and charging a host↔device
   transfer **only on an actual residency change along the execution
   order** — a write on one device invalidates every other copy, so
   interleaved writers are charged exactly. A final epilogue copies
   device-only buffers back to the host (program outputs must land in
   host memory).
3. :func:`plan_module` searches assignments globally: ``greedy`` is the
   seed per-site policy (the baseline the planner must beat), ``beam``
   is a beam search refined by coordinate descent, ``exhaustive`` fully
   enumerates small search spaces. Every strategy also evaluates the
   greedy assignment under the exact model, so the planner is **never
   worse than per-site greedy** by construction.

Every evaluation accepts an optional measured
:class:`~repro.platform.calibrate.CalibrationProfile`; the greedy
*picks* deliberately stay on the static constants (that is the seed
policy under test), while the profile replaces efficiencies, launch
overheads and link parameters in the replay itself.

The **multi-request regime** extends the replay to concurrent tenants
(the traffic shape the service layer creates):
:func:`evaluate_concurrent` replays several requests' event logs against
shared per-device compute queues and per-device transfer links — host
compute stays per-tenant (each tenant is its own client), accelerators
and their links serialise — and :func:`plan_concurrent` assigns all
requests' sites **jointly**, starting from the per-request independent
optima and descending on the sum of completion times, so joint placement
is never worse than independent-per-request placement by construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..backends.api import ApiCallSite, ApiDescriptor
from ..backends.registry import BackendRegistry, default_registry
from ..errors import PlacementError
from .cost import compute_launch_cost, site_cost, transfer_link
from .machine import MACHINES, Machine

HOST = "host"

STRATEGIES = ("greedy", "beam", "exhaustive")

#: Event-log prefix used to *rank* partial assignments during beam
#: search. Final candidates (and coordinate descent) are always costed
#: over the full log, so this only bounds search effort on huge logs —
#: never the reported numbers.
BEAM_RANK_EVENT_CAP = 5_000


def location_of(machine: Machine) -> str:
    """Machines with infinite transfer bandwidth share host memory."""
    return HOST if machine.transfer_gbs == float("inf") else machine.name


class ResidencyState:
    """Validity-set simulation of buffer residency.

    Shared by the planner's replay and the runtime's live tracker
    (:meth:`repro.backends.api.ApiRuntime.set_placement`), so measured
    transfer counts and planned ones come from one state machine.
    """

    __slots__ = ("valid",)

    def __init__(self) -> None:
        #: buffer key -> set of locations holding a current copy.
        self.valid: dict = {}

    def access(self, location: str, key, nbytes: float,
               mode: str) -> list[tuple[str, float]]:
        """Record one access; return the link transfers it forces as
        ``(device_location, bytes)`` pairs (each pair crosses that
        device's host link once)."""
        moves: list[tuple[str, float]] = []
        valid = self.valid.get(key)
        if valid is None:
            valid = {HOST}
            self.valid[key] = valid
        if location not in valid:
            if location == HOST:
                # Copy back from whichever device holds the only copy.
                moves.append((sorted(valid)[0], nbytes))
            else:
                if HOST not in valid:
                    # Device-to-device moves stage through host memory.
                    moves.append((sorted(valid)[0], nbytes))
                    valid.add(HOST)
                moves.append((location, nbytes))
            valid.add(location)
        if "w" in mode:
            valid.clear()
            valid.add(location)
        return moves

    def device_only(self) -> dict:
        """buffer key -> device location, for buffers the host copy of
        which is stale (epilogue copy-back set)."""
        return {key: sorted(valid)[0] for key, valid in self.valid.items()
                if HOST not in valid}


@dataclass(frozen=True)
class SitePlacement:
    """One site's assignment: which API executes it on which machine."""

    api: ApiDescriptor
    machine: Machine

    @property
    def device(self) -> str:
        return self.machine.name

    @property
    def location(self) -> str:
        return location_of(self.machine)

    def describe(self) -> str:
        return f"{self.api.name}@{self.machine.name}"


@dataclass
class PlacedSite:
    """A site with its assignment and exact simulated cost breakdown."""

    site: ApiCallSite
    placement: SitePlacement
    compute_s: float = 0.0
    launch_s: float = 0.0
    transfer_s: float = 0.0
    transfer_bytes: float = 0.0
    transfer_events: int = 0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.launch_s + self.transfer_s


@dataclass
class PlacementPlan:
    """A whole-module assignment plus its simulated cost."""

    strategy: str
    placed: list[PlacedSite] = field(default_factory=list)
    host_seconds: float = 0.0      # uncovered (non-idiom) host time
    epilogue_s: float = 0.0        # final device→host copy-back
    epilogue_bytes: float = 0.0
    exact: bool = True             # False when the event log overflowed

    @property
    def offload_s(self) -> float:
        return sum(p.total_s for p in self.placed) + self.epilogue_s

    @property
    def total_s(self) -> float:
        return self.host_seconds + self.offload_s

    def assignment(self) -> dict:
        return {p.site.call_id: p.placement for p in self.placed}

    def locations(self) -> dict:
        """call_id -> location name, the runtime tracker's input."""
        return {p.site.call_id: p.placement.location for p in self.placed}

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "total_ms": self.total_s * 1e3,
            "host_ms": self.host_seconds * 1e3,
            "epilogue_ms": self.epilogue_s * 1e3,
            "exact": self.exact,
            "sites": [
                {
                    "call_id": p.site.call_id,
                    "idiom": p.site.idiom,
                    "category": p.site.category,
                    "api": p.placement.api.name,
                    "device": p.placement.device,
                    "compute_ms": p.compute_s * 1e3,
                    "launch_ms": p.launch_s * 1e3,
                    "transfer_ms": p.transfer_s * 1e3,
                    "transfer_events": p.transfer_events,
                }
                for p in self.placed
            ],
        }


def scaled_stats(site: ApiCallSite, scale: float) -> dict:
    """Extrapolate dynamic statistics to paper-scale problem sizes.

    GEMM's data grows as N² while its work grows as N³, so its bytes
    scale with the 2/3 power of the element factor; everything else is
    linear.
    """
    stats = dict(site.stats)
    stats["elements"] = stats.get("elements", 0) * scale
    stats["bytes"] = stats.get("bytes", 0) * byte_scale_of(site, scale)
    return stats


def byte_scale_of(site: ApiCallSite, scale: float) -> float:
    return scale ** (2.0 / 3.0) if site.category == "matrix_op" else scale


def site_at_scale(site: ApiCallSite, scale: float) -> ApiCallSite:
    """A field-preserving clone of ``site`` with paper-scale statistics
    (the site itself when ``scale`` is 1)."""
    if scale == 1.0:
        return site
    clone = ApiCallSite(site.call_id, site.idiom, site.category,
                        site.handler, site.description, kind=site.kind,
                        backend=site.backend, reads=site.reads,
                        writes=site.writes, guarded=site.guarded)
    clone.stats = scaled_stats(site, scale)
    return clone


# ---------------------------------------------------------------------------
# Exact evaluation of one assignment
# ---------------------------------------------------------------------------

def _link_seconds(machines: dict, location: str, nbytes: float,
                  profile=None) -> float:
    gbs, latency_us = transfer_link(machines[location], profile)
    return nbytes / (gbs * 1e9) + latency_us * 1e-6


def evaluate_assignment(sites: list[ApiCallSite], events: list,
                        assignment: dict, *, machines: dict | None = None,
                        strategy: str = "custom", host_seconds: float = 0.0,
                        scale: float = 1.0,
                        exact: bool = True,
                        fallback_lazy: bool = True,
                        profile=None) -> PlacementPlan:
    """Exact simulated cost of ``assignment`` over the event log.

    ``assignment`` maps call_id -> :class:`SitePlacement`. When the event
    log is unusable (``exact=False``), transfers fall back to the legacy
    per-site formula of :func:`repro.platform.cost.site_cost` under the
    ``fallback_lazy`` policy (matching the seed's lazy applicability).
    ``profile`` substitutes measured calibration parameters everywhere
    the replay charges costs.
    """
    machines = machines or MACHINES
    plan = PlacementPlan(strategy, host_seconds=host_seconds, exact=exact)
    placed: dict[int, PlacedSite] = {}
    for site in sites:
        placement = assignment[site.call_id]
        scaled = site_at_scale(site, scale)
        if exact:
            compute, launch = compute_launch_cost(scaled, placement.api,
                                                  placement.machine,
                                                  profile)
            placed[site.call_id] = PlacedSite(site, placement, compute,
                                              launch)
        else:
            cost = site_cost(scaled, placement.api, placement.machine,
                             lazy_transfers=fallback_lazy, profile=profile)
            placed[site.call_id] = PlacedSite(site, placement,
                                              cost.compute_s, cost.launch_s,
                                              cost.transfer_s)
    if exact:
        state = ResidencyState()
        # A buffer's extrapolated size must be consistent across every
        # site that touches it — the scale factor is a property of the
        # buffer, not of the accessing site's category. Use the largest
        # factor among its accessors.
        key_factor: dict = {}
        for call_id, accesses in events:
            entry = placed.get(call_id)
            if entry is None:
                continue
            factor = byte_scale_of(entry.site, scale)
            for key, _, _ in accesses:
                key_factor[key] = max(key_factor.get(key, factor), factor)
        key_bytes: dict = {}
        for call_id, accesses in events:
            entry = placed.get(call_id)
            if entry is None:
                continue
            location = entry.placement.location
            for key, nbytes, mode in accesses:
                scaled_bytes = nbytes * key_factor[key]
                key_bytes[key] = scaled_bytes
                for link, moved in state.access(location, key, scaled_bytes,
                                                mode):
                    entry.transfer_bytes += moved
                    entry.transfer_events += 1
                    entry.transfer_s += _link_seconds(machines, link, moved,
                                                      profile)
        for key, device in state.device_only().items():
            nbytes = key_bytes.get(key, 0.0)
            plan.epilogue_bytes += nbytes
            plan.epilogue_s += _link_seconds(machines, device, nbytes,
                                             profile)
    plan.placed = [placed[s.call_id] for s in sites]
    return plan


# ---------------------------------------------------------------------------
# Assignment search
# ---------------------------------------------------------------------------

def candidate_placements(site: ApiCallSite, *,
                         registry: BackendRegistry | None = None,
                         backends: list[str] | None = None,
                         machines: dict | None = None
                         ) -> list[SitePlacement]:
    """All (API, device) pairs able to run this site's category."""
    registry = registry or default_registry()
    machines = machines or MACHINES
    out = []
    for machine in machines.values():
        for api in registry.apis_for(site.category, machine.name, backends):
            out.append(SitePlacement(api, machine))
    if not out:
        scope = "" if backends is None else \
            f" with backends limited to {', '.join(backends)}"
        raise PlacementError(
            f"no (API, device) can run category {site.category!r}{scope}")
    return out


def greedy_assignment(sites: list[ApiCallSite],
                      candidates: dict, *, scale: float = 1.0,
                      lazy: bool = True) -> dict:
    """The seed policy: per site in isolation, best legacy roofline cost
    (with the per-call lazy-transfer division when ``lazy``)."""
    assignment = {}
    for site in sites:
        scaled = site_at_scale(site, scale)
        best, best_cost = None, None
        for placement in candidates[site.call_id]:
            cost = site_cost(scaled, placement.api, placement.machine,
                             lazy_transfers=lazy).total_s
            if best_cost is None or cost < best_cost:
                best, best_cost = placement, cost
        assignment[site.call_id] = best
    return assignment


def _refine(sites, assignment, candidates, evaluate, max_passes=4):
    """Coordinate descent: re-place one site at a time until fixpoint."""
    best_plan = evaluate(assignment)
    for _ in range(max_passes):
        improved = False
        for site in sites:
            current = assignment[site.call_id]
            for placement in candidates[site.call_id]:
                if placement == current:
                    continue
                trial = dict(assignment)
                trial[site.call_id] = placement
                plan = evaluate(trial)
                if plan.total_s < best_plan.total_s:
                    best_plan, assignment = plan, trial
                    current = placement
                    improved = True
        if not improved:
            break
    return best_plan, assignment


def plan_module(sites: list[ApiCallSite], events: list, *,
                registry: BackendRegistry | None = None,
                backends: list[str] | None = None,
                machines: dict | None = None,
                strategy: str = "beam",
                host_seconds: float = 0.0,
                scale: float = 1.0,
                greedy_lazy: bool = True,
                beam_width: int = 8,
                exhaustive_limit: int = 4096,
                events_overflowed: bool = False,
                profile=None) -> PlacementPlan:
    """Assign (API, device) to every call site of a module, globally.

    ``sites``/``events`` come from an accelerated execution's
    :class:`~repro.backends.api.ApiRuntime` (``all_sites()`` /
    ``.events``). ``host_seconds`` is the uncovered sequential time added
    to every plan alike; ``scale`` extrapolates dynamic statistics to
    paper-scale problem sizes. ``profile`` substitutes measured
    calibration parameters into every *evaluation* — the greedy seed's
    picks deliberately stay on the static constants, since that is the
    baseline policy under test.

    The returned plan's sites are annotated (``site.placement``) with
    their chosen :class:`SitePlacement`. ``exhaustive`` falls back to the
    beam strategy when the search space exceeds ``exhaustive_limit``;
    the returned plan's ``strategy`` field reports what actually ran.
    """
    if strategy not in STRATEGIES:
        raise PlacementError(
            f"unknown strategy {strategy!r} (choose from "
            f"{', '.join(STRATEGIES)})")
    machines = machines or MACHINES
    sites = sorted((s for s in sites if s.kind == "call"),
                   key=lambda s: s.call_id)
    if not sites:
        return PlacementPlan(strategy, host_seconds=host_seconds)
    exact = bool(events) and not events_overflowed
    candidates = {
        site.call_id: candidate_placements(site, registry=registry,
                                           backends=backends,
                                           machines=machines)
        for site in sites
    }

    def evaluate(assignment, label=strategy):
        return evaluate_assignment(sites, events, assignment,
                                   machines=machines, strategy=label,
                                   host_seconds=host_seconds, scale=scale,
                                   exact=exact, fallback_lazy=greedy_lazy,
                                   profile=profile)

    def annotated(plan: PlacementPlan) -> PlacementPlan:
        for placed in plan.placed:
            placed.site.placement = placed.placement
        return plan

    greedy = greedy_assignment(sites, candidates, scale=scale,
                               lazy=greedy_lazy)
    if strategy == "greedy":
        return annotated(evaluate(greedy, "greedy"))

    space = 1
    for site in sites:
        space *= len(candidates[site.call_id])
        if space > exhaustive_limit:
            break
    if strategy == "exhaustive":
        if space > exhaustive_limit:
            # Too large to enumerate: degrade to beam, and say so in the
            # returned plan's strategy label.
            strategy = "beam"
        else:
            best = evaluate(greedy)
            for combo in itertools.product(
                    *(candidates[s.call_id] for s in sites)):
                assignment = {s.call_id: p for s, p in zip(sites, combo)}
                plan = evaluate(assignment)
                if plan.total_s < best.total_s:
                    best = plan
            return annotated(best)

    # Beam search over sites in execution order. Partial assignments are
    # ranked by exact simulation restricted to already-assigned sites; the
    # surviving beam plus the greedy seed are fully evaluated, and the
    # winner is polished by coordinate descent — which can only improve,
    # so the result is never worse than per-site greedy.
    rank_events = events[:BEAM_RANK_EVENT_CAP]
    beam: list[dict] = [{}]
    for site in sites:
        extended = []
        for partial in beam:
            for placement in candidates[site.call_id]:
                trial = dict(partial)
                trial[site.call_id] = placement
                extended.append(trial)
        assigned = [s for s in sites if s.call_id in extended[0]]

        def partial_cost(partial):
            part_events = [e for e in rank_events if e[0] in partial]
            plan = evaluate_assignment(assigned, part_events, partial,
                                       machines=machines,
                                       host_seconds=0.0, scale=scale,
                                       exact=exact,
                                       fallback_lazy=greedy_lazy,
                                       profile=profile)
            return plan.total_s
        extended.sort(key=partial_cost)
        beam = extended[:beam_width]

    finals = [evaluate(b) for b in beam] + [evaluate(greedy)]
    best = min(finals, key=lambda p: p.total_s)
    best, _ = _refine(sites, best.assignment(), candidates, evaluate)
    best.strategy = strategy
    return annotated(best)


# ---------------------------------------------------------------------------
# Multi-request (contention-aware) placement
# ---------------------------------------------------------------------------

@dataclass
class PlacementRequest:
    """One tenant's placement problem: a module's sites plus event log.

    ``host_seconds`` is the tenant's uncovered sequential time (charged
    after its last offload event); ``scale`` extrapolates statistics as
    in :func:`plan_module`; ``greedy_lazy`` selects the legacy transfer
    fallback used when the request carries no event log.
    """

    sites: list
    events: list = field(default_factory=list)
    host_seconds: float = 0.0
    scale: float = 1.0
    greedy_lazy: bool = True
    label: str = ""

    def call_sites(self) -> list:
        return sorted((s for s in self.sites if s.kind == "call"),
                      key=lambda s: s.call_id)


@dataclass
class _Step:
    """One schedulable unit of a request: optional link transfers (in
    order) followed by optional compute service on one location."""

    __slots__ = ("transfers", "location", "service_s")

    transfers: list          # [(link_location, seconds), ...]
    location: str | None     # HOST, device name, or None (transfer-only)
    service_s: float


@dataclass
class ConcurrentPlan:
    """A joint assignment for several concurrent requests plus its
    simulated schedule under shared devices and transfer links."""

    strategy: str
    requests: list
    assignments: list        # per request: call_id -> SitePlacement
    completions: list        # per request completion time (seconds)
    wait_s: list             # per request time blocked on busy resources

    @property
    def sum_completion_s(self) -> float:
        return sum(self.completions)

    @property
    def makespan_s(self) -> float:
        return max(self.completions) if self.completions else 0.0

    def locations(self, index: int) -> dict:
        """call_id -> location for request ``index`` (runtime tracker
        input, same shape as :meth:`PlacementPlan.locations`)."""
        return {cid: p.location
                for cid, p in self.assignments[index].items()}

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "sum_completion_ms": self.sum_completion_s * 1e3,
            "makespan_ms": self.makespan_s * 1e3,
            "requests": [
                {
                    "label": req.label,
                    "completion_ms": self.completions[i] * 1e3,
                    "wait_ms": self.wait_s[i] * 1e3,
                    "sites": {
                        str(cid): p.describe()
                        for cid, p in sorted(self.assignments[i].items())
                    },
                }
                for i, req in enumerate(self.requests)
            ],
        }


def _request_schedule(request: PlacementRequest, assignment: dict,
                      machines: dict, profile=None) -> list:
    """Compile one request into an ordered list of :class:`_Step`.

    Exact mode replays the residency event log: each dynamic API call
    becomes one step carrying its share of the site's compute+launch and
    the link transfers its accesses force. Without an event log, each
    site becomes one synthetic step whose legacy per-site transfer
    occupies its device link. An epilogue step copies device-only
    buffers back through their links.
    """
    sites = request.call_sites()
    if not sites:
        return []
    exact = bool(request.events)
    service: dict = {}
    legacy_transfer: dict = {}
    for site in sites:
        placement = assignment[site.call_id]
        scaled = site_at_scale(site, request.scale)
        compute, launch = compute_launch_cost(scaled, placement.api,
                                              placement.machine, profile)
        service[site.call_id] = compute + launch
        if not exact and placement.location != HOST:
            legacy_transfer[site.call_id] = site_cost(
                scaled, placement.api, placement.machine,
                lazy_transfers=request.greedy_lazy,
                profile=profile).transfer_s

    events = list(request.events)
    seen = {call_id for call_id, _ in events}
    # Sites absent from the log still execute in the model (their compute
    # comes from accumulated stats); give each a synthetic event so the
    # schedule charges them.
    events.extend((s.call_id, []) for s in sites if s.call_id not in seen)

    n_ev: dict = {}
    for call_id, _ in events:
        n_ev[call_id] = n_ev.get(call_id, 0) + 1

    by_id = {s.call_id: s for s in sites}
    key_factor: dict = {}
    for call_id, accesses in events:
        site = by_id.get(call_id)
        if site is None:
            continue
        factor = byte_scale_of(site, request.scale)
        for key, _, _ in accesses:
            key_factor[key] = max(key_factor.get(key, factor), factor)

    steps: list = []
    state = ResidencyState()
    key_bytes: dict = {}
    for call_id, accesses in events:
        site = by_id.get(call_id)
        if site is None:
            continue
        placement = assignment[call_id]
        location = placement.location
        transfers = []
        for key, nbytes, mode in accesses:
            scaled_bytes = nbytes * key_factor[key]
            key_bytes[key] = scaled_bytes
            for link, moved in state.access(location, key, scaled_bytes,
                                            mode):
                transfers.append(
                    (link, _link_seconds(machines, link, moved, profile)))
        if call_id in legacy_transfer:
            transfers.append((location, legacy_transfer.pop(call_id)))
        steps.append(_Step(transfers, location,
                           service[call_id] / n_ev[call_id]))
    epilogue = [(device, _link_seconds(machines, device,
                                       key_bytes.get(key, 0.0), profile))
                for key, device in state.device_only().items()]
    if epilogue:
        steps.append(_Step(epilogue, None, 0.0))
    return steps


def evaluate_concurrent(requests: list, assignments: list, *,
                        machines: dict | None = None,
                        profile=None,
                        strategy: str = "custom") -> ConcurrentPlan:
    """Deterministic list-scheduler replay of concurrent requests.

    Host compute is per-tenant (each request models its own client
    machine), while accelerator devices and their host links are shared:
    a step needing a busy device or link waits for it. Events are
    dispatched in global time order — always the request with the
    smallest local clock, ties broken by request index — so the schedule
    is a pure function of its inputs. Completion of a request is its
    last offload event plus its uncovered ``host_seconds``; the plan
    reports per-request completions, the sum (the objective
    :func:`plan_concurrent` descends on) and the makespan.
    """
    if len(requests) != len(assignments):
        raise PlacementError("one assignment per request required")
    machines = machines or MACHINES
    schedules = [_request_schedule(req, asg, machines, profile)
                 for req, asg in zip(requests, assignments)]
    clocks = [0.0] * len(requests)
    waits = [0.0] * len(requests)
    index = [0] * len(requests)
    device_free: dict = {}
    link_free: dict = {}
    while True:
        ready = [r for r in range(len(requests))
                 if index[r] < len(schedules[r])]
        if not ready:
            break
        r = min(ready, key=lambda i: (clocks[i], i))
        step = schedules[r][index[r]]
        index[r] += 1
        t = clocks[r]
        for link, seconds in step.transfers:
            start = max(t, link_free.get(link, 0.0))
            waits[r] += start - t
            t = start + seconds
            link_free[link] = t
        if step.location is not None and step.service_s > 0.0:
            if step.location == HOST:
                t += step.service_s      # per-tenant host, no sharing
            else:
                start = max(t, device_free.get(step.location, 0.0))
                waits[r] += start - t
                t = start + step.service_s
                device_free[step.location] = t
        clocks[r] = t
    completions = [clocks[r] + requests[r].host_seconds
                   for r in range(len(requests))]
    return ConcurrentPlan(strategy, list(requests),
                          [dict(a) for a in assignments],
                          completions, waits)


def plan_concurrent(requests: list, *,
                    registry: BackendRegistry | None = None,
                    backends: list[str] | None = None,
                    machines: dict | None = None,
                    profile=None,
                    independent: list | None = None,
                    max_passes: int = 4) -> ConcurrentPlan:
    """Jointly place every site of every concurrent request.

    Starts from the per-request *independent* optima (each request
    planned alone by :func:`plan_module`, passed in via ``independent``
    or computed here) and from per-request static greedy, evaluates both
    under the shared-resource replay, then runs coordinate descent —
    re-placing one (request, site) at a time against the full joint
    objective (sum of completion times). Descent only ever accepts
    strict improvements, so the result is **never worse than independent
    per-request placement** by construction.
    """
    machines = machines or MACHINES
    registry = registry or default_registry()
    if independent is None:
        independent = [
            plan_module(req.call_sites(), req.events, registry=registry,
                        backends=backends, machines=machines,
                        host_seconds=req.host_seconds, scale=req.scale,
                        greedy_lazy=req.greedy_lazy,
                        profile=profile).assignment()
            for req in requests
        ]
    candidates = [
        {site.call_id: candidate_placements(site, registry=registry,
                                            backends=backends,
                                            machines=machines)
         for site in req.call_sites()}
        for req in requests
    ]
    greedy = [
        greedy_assignment(req.call_sites(), candidates[i],
                          scale=req.scale, lazy=req.greedy_lazy)
        for i, req in enumerate(requests)
    ]

    def joint(assignments, label="joint"):
        return evaluate_concurrent(requests, assignments,
                                   machines=machines, profile=profile,
                                   strategy=label)

    best = joint([dict(a) for a in independent])
    greedy_plan = joint([dict(a) for a in greedy])
    if greedy_plan.sum_completion_s < best.sum_completion_s:
        best = greedy_plan
    assignments = [dict(a) for a in best.assignments]
    for _ in range(max_passes):
        improved = False
        for r, req in enumerate(requests):
            for site in req.call_sites():
                current = assignments[r][site.call_id]
                for placement in candidates[r][site.call_id]:
                    if placement == current:
                        continue
                    trial = [dict(a) for a in assignments]
                    trial[r][site.call_id] = placement
                    plan = joint(trial)
                    if plan.sum_completion_s < best.sum_completion_s:
                        best, assignments = plan, trial
                        current = placement
                        improved = True
        if not improved:
            break
    best.strategy = "joint"
    return best
