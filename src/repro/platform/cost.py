"""Roofline-style cost model for accelerated idiom execution.

For an API call site with accumulated dynamic statistics (elements, flops,
bytes) the model charges, per call::

    T = launch + transfer(bytes_moved) + max(flops/peak·eff, bytes/bw·eff)

where ``eff`` is the API's efficiency for the idiom category. Two sources
feed that number:

* **Static constants** (Table 3's calibration constants, see
  :mod:`repro.backends.api`) — the documented *fallback*. They were chosen
  to reproduce the paper's who-beats-whom ordering, not measured, so a
  planner trusting them inherits their guesses. APIs with no constant for
  a category fall back to :data:`DEFAULT_EFFICIENCY`.
* **A measured :class:`~repro.platform.calibrate.CalibrationProfile`** —
  when a ``profile`` is passed, per-(API, category, device) efficiencies,
  per-(API, device) launch overheads and per-device transfer link
  parameters derived from seeded microbench probes on *this* machine
  override the static constants. Anything the profile does not cover
  falls back to the static value, so a partial profile degrades
  gracefully.

Transfer is charged on discrete devices only, and only for buffers not
already resident — the paper's "lazy copying" optimisation (§8.3, red
bars in Figure 18) is the ``lazy_transfers`` flag.

.. note::
   The ``lazy_transfers`` division (``bytes_touched / calls``) is the
   *documented fallback* transfer model: it assumes buffers stay resident
   between calls, which **undercharges** whenever another call site (or
   host code) writes a buffer between two calls of this site. The exact
   accounting replays the runtime's residency event log and charges a
   transfer only on an actual residency change — see
   :func:`repro.platform.placement.plan_module`. This formula is kept for
   the legacy Table 3 / Figure 18 reproduction paths and as the fallback
   when no event log is available (e.g. the log overflowed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.api import ApiCallSite, ApiDescriptor
from .machine import Machine

#: Efficiency assumed for an (API, category) pair with no static
#: calibration constant. Shared with the calibration subsystem
#: (:mod:`repro.platform.calibrate` uses it as the prior for unknown
#: pairs), so the measured and fallback models agree on what "no
#: information" means.
DEFAULT_EFFICIENCY = 0.3


@dataclass
class AcceleratedCost:
    """Simulated cost breakdown of one call site on one (API, machine)."""

    compute_s: float
    transfer_s: float
    launch_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.transfer_s + self.launch_s


def _site_stats(site: ApiCallSite) -> tuple[int, float, float]:
    """(calls, flops, bytes_touched) with the model's defaults applied."""
    stats = site.stats
    calls = max(1, int(stats.get("calls", 1)))
    elements = float(stats.get("elements", 0))
    flops = elements * float(stats.get("flops_per_element", 1.0))
    bytes_touched = float(stats.get("bytes", 8 * elements))
    return calls, flops, bytes_touched


def effective_efficiency(site: ApiCallSite, api: ApiDescriptor,
                         machine: Machine, profile=None) -> float:
    """The efficiency the model charges for this (site, API, machine).

    Calibrated value when the profile covers the triple, else the API's
    static constant, else :data:`DEFAULT_EFFICIENCY`."""
    static = api.efficiency.get(site.category, DEFAULT_EFFICIENCY)
    if profile is not None:
        measured = profile.efficiency_for(api.name, site.category,
                                          machine.name)
        if measured is not None:
            return measured
    return static


def launch_overhead_us(api: ApiDescriptor, machine: Machine,
                       profile=None) -> float:
    """Per-call launch overhead in microseconds, calibrated when known."""
    if profile is not None:
        measured = profile.launch_us_for(api.name, machine.name)
        if measured is not None:
            return measured
    return api.launch_overhead_us


def transfer_link(machine: Machine, profile=None) -> tuple[float, float]:
    """(bandwidth GB/s, latency µs) of the machine's host link,
    calibrated when known. Host-memory machines keep infinite bandwidth
    regardless of the profile."""
    if machine.transfer_gbs == float("inf"):
        return machine.transfer_gbs, machine.transfer_latency_us
    if profile is not None:
        link = profile.link_for(machine.name)
        if link is not None:
            return link
    return machine.transfer_gbs, machine.transfer_latency_us


def compute_launch_cost(site: ApiCallSite, api: ApiDescriptor,
                        machine: Machine, profile=None
                        ) -> tuple[float, float]:
    """(compute_s, launch_s) of all dynamic executions of ``site`` —
    the transfer-free part of the roofline, used by the offload planner
    (which charges transfers from the residency event log instead)."""
    calls, flops, bytes_touched = _site_stats(site)
    efficiency = effective_efficiency(site, api, machine, profile)
    compute = max(flops / (machine.peak_gflops * 1e9 * efficiency),
                  bytes_touched / (machine.mem_bandwidth_gbs * 1e9 *
                                   efficiency))
    launch = calls * launch_overhead_us(api, machine, profile) * 1e-6
    return compute, launch


def site_cost(site: ApiCallSite, api: ApiDescriptor, machine: Machine,
              lazy_transfers: bool = False, profile=None
              ) -> AcceleratedCost:
    """Cost of all dynamic executions of ``site`` on the given target.

    ``lazy_transfers`` uses the per-call division fallback documented in
    the module docstring; exact transfer accounting lives in
    :mod:`repro.platform.placement`. ``profile`` substitutes measured
    calibration parameters where available.
    """
    calls, _, bytes_touched = _site_stats(site)
    compute, launch = compute_launch_cost(site, api, machine, profile)

    link_gbs, link_latency_us = transfer_link(machine, profile)
    if link_gbs == float("inf"):
        transfer = 0.0
    elif lazy_transfers:
        # Resident data moves once, not per call; one upload + one
        # download latency bracket the whole sequence.
        transfer = bytes_touched / calls / (link_gbs * 1e9) + \
            2 * link_latency_us * 1e-6
    else:
        transfer = bytes_touched / (link_gbs * 1e9) + \
            calls * link_latency_us * 1e-6

    return AcceleratedCost(compute, transfer, launch)


def best_api_cost(site: ApiCallSite, apis: list[ApiDescriptor],
                  machine: Machine,
                  lazy_transfers: bool = False, profile=None
                  ) -> tuple[ApiDescriptor, AcceleratedCost] | None:
    """The fastest applicable API for this site on this machine.

    Ties break toward the earliest API in ``apis`` (strict ``<``), so
    the result is deterministic for any fixed candidate order."""
    best: tuple[ApiDescriptor, AcceleratedCost] | None = None
    for api in apis:
        if not api.supports(machine.name, site.category):
            continue
        cost = site_cost(site, api, machine, lazy_transfers, profile)
        if best is None or cost.total_s < best[1].total_s:
            best = (api, cost)
    return best


#: Reference handwritten-parallel models for Figure 19: the speedup factor
#: over sequential that the benchmark suites' OpenMP (4-core CPU) and
#: OpenCL (discrete GPU) reference implementations achieve on covered +
#: uncovered code. Benchmarks whose reference versions change the
#: algorithm outright (paper: EP, IS, MG, tpacf parallelise the entire
#: application) carry an extra algorithmic factor.
@dataclass(frozen=True)
class ReferenceImplementation:
    name: str  # 'OpenMP' | 'OpenCL'
    machine_name: str
    base_factor: float  # parallel speedup on parallelisable fraction


OPENMP = ReferenceImplementation("OpenMP", "cpu", 3.4)
OPENCL = ReferenceImplementation("OpenCL", "gpu", 30.0)


def reference_time(seq_seconds: float, coverage: float,
                   ref: ReferenceImplementation,
                   whole_program: bool = False,
                   algorithmic_factor: float = 1.0) -> float:
    """Amdahl-style reference implementation time.

    ``coverage`` is the idiom-covered fraction; handwritten versions
    parallelise the *whole* program (coverage → 1.0) when
    ``whole_program`` is set.
    """
    fraction = 1.0 if whole_program else max(0.0, min(coverage, 1.0))
    parallel_part = seq_seconds * fraction
    serial_part = seq_seconds - parallel_part
    return serial_part + parallel_part / (ref.base_factor *
                                          algorithmic_factor)
