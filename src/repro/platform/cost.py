"""Roofline-style cost model for accelerated idiom execution.

For an API call site with accumulated dynamic statistics (elements, flops,
bytes) the model charges, per call::

    T = launch + transfer(bytes_moved) + max(flops/peak·eff, bytes/bw)

where ``eff`` is the API's efficiency for the idiom category (Table 3's
calibration constants, see :mod:`repro.backends.api`). Transfer is charged
on discrete devices only, and only for buffers not already resident — the
paper's "lazy copying" optimisation (§8.3, red bars in Figure 18) is the
``lazy_transfers`` flag.

.. note::
   The ``lazy_transfers`` division (``bytes_touched / calls``) is the
   *documented fallback* transfer model: it assumes buffers stay resident
   between calls, which **undercharges** whenever another call site (or
   host code) writes a buffer between two calls of this site. The exact
   accounting replays the runtime's residency event log and charges a
   transfer only on an actual residency change — see
   :func:`repro.platform.placement.plan_module`. This formula is kept for
   the legacy Table 3 / Figure 18 reproduction paths and as the fallback
   when no event log is available (e.g. the log overflowed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.api import ApiCallSite, ApiDescriptor
from .machine import Machine


@dataclass
class AcceleratedCost:
    """Simulated cost breakdown of one call site on one (API, machine)."""

    compute_s: float
    transfer_s: float
    launch_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.transfer_s + self.launch_s


def _site_stats(site: ApiCallSite) -> tuple[int, float, float]:
    """(calls, flops, bytes_touched) with the model's defaults applied."""
    stats = site.stats
    calls = max(1, int(stats.get("calls", 1)))
    elements = float(stats.get("elements", 0))
    flops = elements * float(stats.get("flops_per_element", 1.0))
    bytes_touched = float(stats.get("bytes", 8 * elements))
    return calls, flops, bytes_touched


def compute_launch_cost(site: ApiCallSite, api: ApiDescriptor,
                        machine: Machine) -> tuple[float, float]:
    """(compute_s, launch_s) of all dynamic executions of ``site`` —
    the transfer-free part of the roofline, used by the offload planner
    (which charges transfers from the residency event log instead)."""
    calls, flops, bytes_touched = _site_stats(site)
    efficiency = api.efficiency.get(site.category, 0.3)
    compute = max(flops / (machine.peak_gflops * 1e9 * efficiency),
                  bytes_touched / (machine.mem_bandwidth_gbs * 1e9 *
                                   efficiency))
    launch = calls * api.launch_overhead_us * 1e-6
    return compute, launch


def site_cost(site: ApiCallSite, api: ApiDescriptor, machine: Machine,
              lazy_transfers: bool = False) -> AcceleratedCost:
    """Cost of all dynamic executions of ``site`` on the given target.

    ``lazy_transfers`` uses the per-call division fallback documented in
    the module docstring; exact transfer accounting lives in
    :mod:`repro.platform.placement`.
    """
    calls, _, bytes_touched = _site_stats(site)
    compute, launch = compute_launch_cost(site, api, machine)

    if machine.transfer_gbs == float("inf"):
        transfer = 0.0
    else:
        moved = bytes_touched if not lazy_transfers else \
            bytes_touched / calls  # resident data moves once, not per call
        transfer = moved / (machine.transfer_gbs * 1e9) + \
            calls * machine.transfer_latency_us * 1e-6
        if lazy_transfers:
            transfer = moved / (machine.transfer_gbs * 1e9) + \
                2 * machine.transfer_latency_us * 1e-6

    return AcceleratedCost(compute, transfer, launch)


def best_api_cost(site: ApiCallSite, apis: list[ApiDescriptor],
                  machine: Machine,
                  lazy_transfers: bool = False
                  ) -> tuple[ApiDescriptor, AcceleratedCost] | None:
    """The fastest applicable API for this site on this machine."""
    best: tuple[ApiDescriptor, AcceleratedCost] | None = None
    for api in apis:
        if not api.supports(machine.name, site.category):
            continue
        cost = site_cost(site, api, machine, lazy_transfers)
        if best is None or cost.total_s < best[1].total_s:
            best = (api, cost)
    return best


#: Reference handwritten-parallel models for Figure 19: the speedup factor
#: over sequential that the benchmark suites' OpenMP (4-core CPU) and
#: OpenCL (discrete GPU) reference implementations achieve on covered +
#: uncovered code. Benchmarks whose reference versions change the
#: algorithm outright (paper: EP, IS, MG, tpacf parallelise the entire
#: application) carry an extra algorithmic factor.
@dataclass(frozen=True)
class ReferenceImplementation:
    name: str  # 'OpenMP' | 'OpenCL'
    machine_name: str
    base_factor: float  # parallel speedup on parallelisable fraction


OPENMP = ReferenceImplementation("OpenMP", "cpu", 3.4)
OPENCL = ReferenceImplementation("OpenCL", "gpu", 30.0)


def reference_time(seq_seconds: float, coverage: float,
                   ref: ReferenceImplementation,
                   whole_program: bool = False,
                   algorithmic_factor: float = 1.0) -> float:
    """Amdahl-style reference implementation time.

    ``coverage`` is the idiom-covered fraction; handwritten versions
    parallelise the *whole* program (coverage → 1.0) when
    ``whole_program`` is set.
    """
    fraction = 1.0 if whole_program else max(0.0, min(coverage, 1.0))
    parallel_part = seq_seconds * fraction
    serial_part = seq_seconds - parallel_part
    return serial_part + parallel_part / (ref.base_factor *
                                          algorithmic_factor)
