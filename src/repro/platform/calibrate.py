"""Measured cost calibration: microbench probes → per-machine profiles.

The static efficiency constants in :mod:`repro.backends.api` were chosen
to reproduce the paper's Table 3 ordering — they are priors, not
measurements, and `BENCH_offload.json` showed the planner gaining only
~3% suite-wide while trusting them. This module derives the cost model's
parameters from what this machine actually does:

1. **Seeded microbench probes** measure host anchors (GEMM flops rate,
   streaming/copy bandwidth, per-call dispatch and kernel-launch
   overhead) and, per idiom category, the rate its representative kernel
   achieves — a dense matrix multiply, a streaming reduction, a
   ``bincount`` histogram, a 3-point stencil, an index-gather sparse dot.
   All inputs come from a fixed-seed RNG; timings take the best of
   several repeats.
2. **VM telemetry probes** reweight the per-opcode sequential-time table:
   three tiny C loops (memory-, float- and integer/branch-dominated) are
   compiled and run on the register VM, and the ratio between measured
   wall time and the static table's prediction per probe yields anchored
   relative class factors (geomean-normalised, so the overall time scale
   of the static model is preserved — this is a *reweighting*, not a
   rescale).
3. The measurements are projected into the simulated platform's frame:

   * ``fraction[cat]`` — the measured kernel rate over the model CPU's
     roofline for the category's binding resource (flops for
     ``matrix_op``, bytes otherwise), clamped to (0.05, 1.0]. Low
     fractions mean the category's access pattern (gathers, atomically
     merged bins) wastes most of the machine.
   * ``efficiency(api, cat, dev) = clamp(prior · fraction^w, 0.02, 1.0)``
     where the prior is the API's static constant
     (:data:`~repro.platform.cost.DEFAULT_EFFICIENCY` for unknown pairs)
     and ``w`` is 1 on narrow hosts but 2 on wide accelerators
     (``cores >= 64``): irregularity measured on the host compounds on a
     wide device, where every divergent lane and serialised atomic stalls
     hundreds of siblings.
   * Link bandwidth/latency scale the machines' static link constants by
     the measured copy bandwidth/latency relative to the model host
     memory system; launch overheads scale by the measured small-kernel
     intercept against a 10µs prior.

Profiles are **content-fingerprinted** by machine identity + a signature
over the backend registry and machine constants, persisted in the PR-5
:class:`~repro.cache.ArtifactStore` (atomic writes, corruption-tolerant
reads) and/or as a plain JSON file suitable for checking in per CI
machine class. Everything downstream of a loaded profile is
deterministic simulation, so a checked-in profile gives reproducible
planner decisions on any runner.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as _platform
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import CalibrationError
from .cost import DEFAULT_EFFICIENCY
from .machine import CPU, MACHINES, _SEQ_COSTS, sequential_time_seconds

#: Bump on any change to the profile schema or the derivation model —
#: stale persisted profiles are then treated as misses, like the store's
#: own versioning.
PROFILE_VERSION = 1

#: Efficiency clamp: even a catastrophic measured fraction leaves a
#: device 2% effective (the probes measure one kernel shape, not the
#: backend's best), and nothing measured may beat the roofline.
EFFICIENCY_FLOOR = 0.02

#: ``fraction^w`` exponent per device width: wide accelerators pay the
#: measured irregularity twice (divergence × serialisation).
WIDE_DEVICE_CORES = 64

#: Launch-intercept prior (µs): the static launch constants assume
#: roughly this per-call fixed cost; the measured intercept scales them.
LAUNCH_INTERCEPT_PRIOR_US = 10.0

_CLAMP_FRACTION = (0.05, 1.0)
_CLAMP_LAUNCH = (0.1, 4.0)
_CLAMP_LINK = (0.1, 4.0)
_CLAMP_LATENCY = (0.25, 4.0)
_CLAMP_SCALAR = (0.5, 2.0)

#: Opcode → reweighting class for the scalar_ns calibration.
_OPCODE_CLASS = {}
for _op in ("load", "store", "gep", "alloca"):
    _OPCODE_CLASS[_op] = "mem"
for _op in ("fadd", "fsub", "fmul", "fdiv", "frem", "fcmp",
            "sitofp", "fptosi", "fpext", "fptrunc"):
    _OPCODE_CLASS[_op] = "float"
# Everything else (int ALU, compares, branches, casts, calls) → "other".


def _clamp(value: float, bounds: tuple[float, float]) -> float:
    lo, hi = bounds
    return max(lo, min(hi, float(value)))


def machine_identity() -> str:
    """A stable identity for the calibration target: hardware class and
    core count, not hostname — profiles are per machine *class*."""
    return "|".join([
        _platform.system(), _platform.machine(),
        _platform.python_implementation(),
        f"cpus={os.cpu_count() or 1}",
    ])


def registry_signature(registry=None, machines: dict | None = None) -> str:
    """Fingerprint of everything that can change what a profile means:
    the backend registry's descriptors (name, kind, platforms, static
    efficiencies, launch overheads) and the machine model constants."""
    if registry is None:
        from ..backends.registry import default_registry
        registry = default_registry()
    machines = machines or MACHINES
    blob: list = [PROFILE_VERSION]
    for descriptor in sorted(registry.descriptors(), key=lambda d: d.name):
        blob.append([descriptor.name, descriptor.kind,
                     list(descriptor.platforms),
                     sorted(descriptor.efficiency.items()),
                     descriptor.launch_overhead_us])
    for name in sorted(machines):
        m = machines[name]
        blob.append([m.name, m.peak_gflops, m.mem_bandwidth_gbs,
                     repr(m.transfer_gbs), m.transfer_latency_us, m.cores])
    return hashlib.sha256(
        json.dumps(blob, sort_keys=True).encode("utf-8")).hexdigest()


def profile_store_key(machine_id: str, signature: str) -> str:
    """The ArtifactStore key a profile lives under (hex, content-style)."""
    return hashlib.sha256(
        f"calibration|{machine_id}|{signature}".encode("utf-8")).hexdigest()


@dataclass
class CalibrationProfile:
    """Per-machine measured cost parameters for the simulated platform.

    Keys are flattened for JSON friendliness: ``efficiency`` maps
    ``"api|category|device"``, ``launch_us`` maps ``"api|device"``,
    ``link_gbs``/``link_latency_us`` map device names. ``scalar_ns`` is
    the reweighted per-opcode table (None → keep the static one). Lookup
    misses return None so :mod:`repro.platform.cost` can fall back to the
    static constants — a partial profile degrades gracefully.
    """

    machine_id: str
    registry_signature: str
    created_at: float = 0.0
    host: dict = field(default_factory=dict)
    category_fraction: dict = field(default_factory=dict)
    efficiency: dict = field(default_factory=dict)
    launch_us: dict = field(default_factory=dict)
    link_gbs: dict = field(default_factory=dict)
    link_latency_us: dict = field(default_factory=dict)
    scalar_ns: dict | None = None
    probes: dict = field(default_factory=dict)

    # -- cost-model lookups (duck-typed by repro.platform.cost) ---------
    def efficiency_for(self, api: str, category: str,
                       device: str) -> float | None:
        return self.efficiency.get(f"{api}|{category}|{device}")

    def launch_us_for(self, api: str, device: str) -> float | None:
        return self.launch_us.get(f"{api}|{device}")

    def link_for(self, device: str) -> tuple[float, float] | None:
        gbs = self.link_gbs.get(device)
        if gbs is None:
            return None
        latency = self.link_latency_us.get(device)
        if latency is None:
            return None
        return float(gbs), float(latency)

    def sequential_seconds(self, opcode_counts: dict) -> float:
        """Host sequential time under the calibrated opcode table."""
        return sequential_time_seconds(opcode_counts, self.scalar_ns)

    def matches(self, signature: str) -> bool:
        return self.registry_signature == signature

    # -- (de)serialisation ---------------------------------------------
    def as_dict(self) -> dict:
        return {
            "profile_version": PROFILE_VERSION,
            "machine_id": self.machine_id,
            "registry_signature": self.registry_signature,
            "created_at": self.created_at,
            "host": dict(self.host),
            "category_fraction": dict(self.category_fraction),
            "efficiency": dict(self.efficiency),
            "launch_us": dict(self.launch_us),
            "link_gbs": dict(self.link_gbs),
            "link_latency_us": dict(self.link_latency_us),
            "scalar_ns": None if self.scalar_ns is None
            else dict(self.scalar_ns),
            "probes": dict(self.probes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationProfile":
        if not isinstance(payload, dict):
            raise CalibrationError("profile payload must be an object")
        if payload.get("profile_version") != PROFILE_VERSION:
            raise CalibrationError(
                f"profile version {payload.get('profile_version')!r} "
                f"!= {PROFILE_VERSION}")
        try:
            scalar = payload.get("scalar_ns")
            return cls(
                machine_id=str(payload["machine_id"]),
                registry_signature=str(payload["registry_signature"]),
                created_at=float(payload.get("created_at", 0.0)),
                host={str(k): float(v)
                      for k, v in payload.get("host", {}).items()},
                category_fraction={
                    str(k): float(v) for k, v in
                    payload.get("category_fraction", {}).items()},
                efficiency={str(k): float(v)
                            for k, v in payload["efficiency"].items()},
                launch_us={str(k): float(v)
                           for k, v in payload.get("launch_us",
                                                   {}).items()},
                link_gbs={str(k): float(v)
                          for k, v in payload.get("link_gbs", {}).items()},
                link_latency_us={
                    str(k): float(v) for k, v in
                    payload.get("link_latency_us", {}).items()},
                scalar_ns=None if scalar is None
                else {str(k): float(v) for k, v in scalar.items()},
                probes=dict(payload.get("probes", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(f"malformed profile payload: {exc}") \
                from exc


# ---------------------------------------------------------------------------
# Persistence: ArtifactStore (per-machine) and JSON files (checked in)
# ---------------------------------------------------------------------------

def save_profile(profile: CalibrationProfile, store) -> bool:
    """Persist in the artifact store under the content fingerprint of
    (machine identity, registry signature). Atomic and versioned — a
    torn or stale entry reads back as a miss, never as garbage."""
    key = profile_store_key(profile.machine_id,
                            profile.registry_signature)
    return store.put(key, {"profile": profile.as_dict()})


def load_profile(store, registry=None,
                 machines: dict | None = None) -> CalibrationProfile | None:
    """The store entry for *this* machine under the *current* registry,
    or None on miss, corruption, or a signature that no longer matches
    (the registry or machine constants changed since calibration)."""
    signature = registry_signature(registry, machines)
    payload = store.get(profile_store_key(machine_identity(), signature))
    if payload is None:
        return None
    try:
        profile = CalibrationProfile.from_dict(payload.get("profile"))
    except CalibrationError:
        return None
    return profile if profile.matches(signature) else None


def write_profile_json(profile: CalibrationProfile, path: str) -> None:
    """Write a standalone profile file (the check-in format for CI
    machine classes). Atomic via rename, like the store's writes."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump({"profile": profile.as_dict()}, fh, indent=2,
                  sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def read_profile_json(path: str, *, strict: bool = False
                      ) -> CalibrationProfile | None:
    """Load a profile file. A file loaded by explicit path is trusted
    for its machine class (no identity check — CI checks in profiles
    measured elsewhere); a stale schema, unreadable file or malformed
    payload returns None (or raises when ``strict``)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
        return CalibrationProfile.from_dict(payload.get("profile"))
    except (OSError, ValueError, CalibrationError) as exc:
        if strict:
            raise CalibrationError(
                f"cannot load calibration profile {path!r}: {exc}") \
                from exc
        return None


# ---------------------------------------------------------------------------
# Probes
# ---------------------------------------------------------------------------

class Calibrator:
    """Runs the probe suite and derives a :class:`CalibrationProfile`.

    ``fast=True`` shrinks every probe ~16x for tests; the derivation is
    identical, only noisier. All inputs are seeded; timings take the
    minimum over ``repeats`` runs (the classic best-of-N noise filter).
    """

    def __init__(self, seed: int = 1234, fast: bool = False,
                 repeats: int = 3, registry=None,
                 machines: dict | None = None):
        self.seed = seed
        self.fast = fast
        self.repeats = max(1, repeats)
        self.registry = registry
        self.machines = machines or MACHINES
        self._scale = 16 if fast else 1

    # -- timing helpers -------------------------------------------------
    def _best_of(self, fn, *args) -> float:
        best = float("inf")
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - t0)
        return best

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    # -- host anchor probes ---------------------------------------------
    def probe_gemm_gflops(self) -> float:
        n = 192 if not self.fast else 96
        rng = self._rng()
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        seconds = self._best_of(np.dot, a, b)
        return 2.0 * n ** 3 / seconds / 1e9

    def probe_stream_gbs(self) -> float:
        n = 4_000_000 // self._scale
        rng = self._rng()
        a = rng.standard_normal(n)
        b = rng.standard_normal(n)
        out = np.empty(n)

        def triad():
            np.multiply(b, 0.5, out=out)
            np.add(out, a, out=out)
        seconds = self._best_of(triad)
        return 3 * 8 * n / seconds / 1e9

    def probe_copy(self) -> tuple[float, float]:
        """(bandwidth GB/s from a large copy, latency µs from a tiny
        one): t(n) = latency + n/bandwidth, solved at two sizes."""
        big = 2_000_000 // self._scale
        rng = self._rng()
        src = rng.standard_normal(big)
        dst = np.empty(big)
        t_big = self._best_of(np.copyto, dst, src)
        gbs = 8 * big / t_big / 1e9
        small = 64
        s_src, s_dst = src[:small], dst[:small]
        reps = 200 if self.fast else 2000

        def small_copies():
            for _ in range(reps):
                np.copyto(s_dst, s_src)
        t_small = self._best_of(small_copies) / reps
        latency_us = max(0.01, (t_small - 8 * small / (gbs * 1e9)) * 1e6)
        return gbs, latency_us

    def probe_dispatch_us(self) -> float:
        """Per-call overhead of a trivial python handler — the floor any
        simulated API call pays on this interpreter."""
        reps = 2000 if self.fast else 20000
        sink = []

        def handler(args, engine):
            return None

        def loop():
            for _ in range(reps):
                handler(sink, None)
        return self._best_of(loop) / reps * 1e6

    def probe_kernel_intercept_us(self) -> float:
        """Fixed per-invocation cost of a numpy kernel, from its small-n
        runtime — the measured analogue of the launch-overhead prior."""
        n = 256
        rng = self._rng()
        a = rng.standard_normal(n)
        out = np.empty(n)
        reps = 200 if self.fast else 2000

        def small_kernels():
            for _ in range(reps):
                np.multiply(a, 1.5, out=out)
        return self._best_of(small_kernels) / reps * 1e6

    # -- per-category kernel probes --------------------------------------
    def probe_category_rates(self) -> dict:
        """category → measured rate: GFLOP/s for matrix_op, GB/s of
        touched data for the memory-bound categories. Each kernel is the
        category's canonical shape, so the ratio to the roofline captures
        how much of the machine that access pattern wastes."""
        n = 2_000_000 // self._scale
        rng = self._rng()
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        rates: dict[str, float] = {}

        rates["matrix_op"] = self.probe_gemm_gflops()

        seconds = self._best_of(np.add.reduce, x)
        rates["scalar_reduction"] = 8 * n / seconds / 1e9

        bins = rng.integers(0, 256, n // 2, dtype=np.int64)
        seconds = self._best_of(np.bincount, bins)
        rates["histogram_reduction"] = 8 * (n // 2) / seconds / 1e9

        out = np.empty(n - 2)
        tmp = np.empty(n - 2)

        def stencil3():
            np.multiply(x[1:-1], 0.5, out=out)
            np.multiply(x[:-2], 0.25, out=tmp)
            np.add(out, tmp, out=out)
            np.multiply(x[2:], 0.25, out=tmp)
            np.add(out, tmp, out=out)
        seconds = self._best_of(stencil3)
        rates["stencil"] = 4 * 8 * n / seconds / 1e9

        idx = rng.integers(0, n, n // 2)

        def gather_dot():
            np.dot(x[idx], y[: n // 2])
        seconds = self._best_of(gather_dot)
        rates["sparse_matrix_op"] = 8 * (n // 2) * 3 / seconds / 1e9

        z = x[: max(1024, n // 4)]
        seconds = self._best_of(np.fft.rfft, z)
        rates["spectral_op"] = 8 * z.size / seconds / 1e9
        return rates

    # -- VM telemetry probes ----------------------------------------------
    _VM_PROBES = {
        "mem": """
double probe_mem(int n, double *a, double *b) {
  for (int i = 0; i < n; i++)
    b[i] = a[i];
  return b[0];
}
""",
        "float": """
double probe_float(int n, double x) {
  double t = x;
  double u = 0.0;
  for (int i = 0; i < n; i++) {
    t = t * 1.0000001 + 0.5;
    u = u + t * t;
  }
  return u;
}
""",
        "other": """
int probe_other(int n) {
  int s = 1;
  for (int i = 0; i < n; i++) {
    s = s + (i & 7);
    if (s > 1000000)
      s = s - 999999;
  }
  return s;
}
""",
    }

    def probe_scalar_classes(self) -> dict:
        """class → measured/predicted wall ratio from the register VM.

        Each probe loop is dominated by one opcode class; the ratio of
        its measured VM wall time to the static table's prediction says
        how this machine weights that class relative to the model."""
        from ..frontend import compile_c
        from ..passes import optimize
        from ..runtime.memory import Buffer, Pointer
        from ..runtime.vm import VirtualMachine

        n = 30_000 // self._scale
        ratios: dict[str, float] = {}
        for cls, source in self._VM_PROBES.items():
            module = compile_c(source, f"calibrate-{cls}")
            optimize(module, verify=False)
            entry = next(f.name for f in module.functions.values()
                         if not f.is_declaration())
            vm = VirtualMachine(module)
            if cls == "mem":
                a = Buffer.from_numpy("a", np.ones(n))
                b = Buffer.from_numpy("b", np.zeros(n))
                args = [n, Pointer(a, 0), Pointer(b, 0)]
            elif cls == "float":
                args = [n, 1.5]
            else:
                args = [n]
            vm.call(entry, list(args))  # warm: bytecode lowered once
            before = dict(vm.profile.opcode_counts())
            t0 = time.perf_counter()
            vm.call(entry, list(args))
            wall = time.perf_counter() - t0
            after = vm.profile.opcode_counts()
            counts = {op: after[op] - before.get(op, 0) for op in after}
            predicted = sequential_time_seconds(counts)
            ratios[cls] = wall / predicted if predicted > 0 else 1.0
        return ratios

    # -- derivation -------------------------------------------------------
    def run(self) -> CalibrationProfile:
        stream_gbs = self.probe_stream_gbs()
        copy_gbs, copy_latency_us = self.probe_copy()
        dispatch_us = self.probe_dispatch_us()
        intercept_us = self.probe_kernel_intercept_us()
        rates = self.probe_category_rates()
        class_ratios = self.probe_scalar_classes()

        host = {
            "gflops": rates["matrix_op"],
            "stream_gbs": stream_gbs,
            "copy_gbs": copy_gbs,
            "copy_latency_us": copy_latency_us,
            "dispatch_us": dispatch_us,
            "kernel_intercept_us": intercept_us,
        }

        # Measured achieved fraction of the model host's roofline, per
        # category: flops-bound matrix_op against peak_gflops, everything
        # else against the memory system.
        fraction = {}
        for category, rate in rates.items():
            if category == "matrix_op":
                ideal = CPU.peak_gflops
            else:
                ideal = CPU.mem_bandwidth_gbs
            fraction[category] = _clamp(rate / ideal, _CLAMP_FRACTION)

        registry = self.registry
        if registry is None:
            from ..backends.registry import default_registry
            registry = default_registry()

        efficiency: dict[str, float] = {}
        launch_us: dict[str, float] = {}
        launch_factor = _clamp(intercept_us / LAUNCH_INTERCEPT_PRIOR_US,
                               _CLAMP_LAUNCH)
        categories = set(fraction)
        for descriptor in registry.descriptors():
            for machine in self.machines.values():
                if machine.name not in descriptor.platforms:
                    continue
                launch_us[f"{descriptor.name}|{machine.name}"] = \
                    descriptor.launch_overhead_us * launch_factor
                wide = machine.cores >= WIDE_DEVICE_CORES
                for category in categories:
                    prior = descriptor.efficiency.get(
                        category, DEFAULT_EFFICIENCY)
                    if category not in descriptor.efficiency:
                        # Not a supported pair: no calibrated entry, the
                        # cost model's static fallback handles it.
                        continue
                    frac = fraction[category]
                    eff = prior * (frac * frac if wide else frac)
                    efficiency[
                        f"{descriptor.name}|{category}|{machine.name}"
                    ] = _clamp(eff, (EFFICIENCY_FLOOR, 1.0))

        link_gbs: dict[str, float] = {}
        link_latency: dict[str, float] = {}
        bw_factor = _clamp(copy_gbs / CPU.mem_bandwidth_gbs, _CLAMP_LINK)
        lat_factor = _clamp(copy_latency_us / 1.0, _CLAMP_LATENCY)
        for machine in self.machines.values():
            if machine.transfer_gbs == float("inf"):
                continue
            link_gbs[machine.name] = machine.transfer_gbs * bw_factor
            link_latency[machine.name] = \
                machine.transfer_latency_us * lat_factor

        # Anchored per-opcode reweighting: scale each class by its
        # measured ratio over the geometric mean of all three, so the
        # overall sequential time scale is preserved — the VM's absolute
        # speed is an interpreter property, not a model input.
        values = [max(1e-9, v) for v in class_ratios.values()]
        geomean = float(np.exp(np.mean(np.log(values))))
        class_factor = {
            cls: _clamp(ratio / geomean, _CLAMP_SCALAR)
            for cls, ratio in class_ratios.items()
        }
        scalar_ns = {
            op: ns * class_factor.get(_OPCODE_CLASS.get(op, "other"), 1.0)
            for op, ns in _SEQ_COSTS.items()
        }

        return CalibrationProfile(
            machine_id=machine_identity(),
            registry_signature=registry_signature(registry, self.machines),
            created_at=time.time(),
            host=host,
            category_fraction=fraction,
            efficiency=efficiency,
            launch_us=launch_us,
            link_gbs=link_gbs,
            link_latency_us=link_latency,
            scalar_ns=scalar_ns,
            probes={
                "category_rates": rates,
                "scalar_class_ratios": class_ratios,
                "launch_factor": launch_factor,
                "bw_factor": bw_factor,
                "lat_factor": lat_factor,
            },
        )


def calibrate(seed: int = 1234, fast: bool = False, store=None,
              registry=None, machines: dict | None = None
              ) -> CalibrationProfile:
    """Run the probe suite; persist in ``store`` when given."""
    profile = Calibrator(seed=seed, fast=fast, registry=registry,
                         machines=machines).run()
    if store is not None:
        save_profile(profile, store)
    return profile
