"""Platform models: machines, roofline costs, transfer modelling."""

from .cost import (
    OPENCL,
    OPENMP,
    AcceleratedCost,
    ReferenceImplementation,
    best_api_cost,
    reference_time,
    site_cost,
)
from .machine import CPU, GPU, IGPU, MACHINES, Machine, sequential_time_seconds

__all__ = [
    "OPENCL", "OPENMP", "AcceleratedCost", "ReferenceImplementation",
    "best_api_cost", "reference_time", "site_cost",
    "CPU", "GPU", "IGPU", "MACHINES", "Machine", "sequential_time_seconds",
]
