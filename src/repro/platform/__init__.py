"""Platform models: machines, roofline costs, calibration, residency-aware
placement (single- and multi-request)."""

from .calibrate import (
    CalibrationProfile,
    Calibrator,
    calibrate,
    load_profile,
    machine_identity,
    read_profile_json,
    registry_signature,
    save_profile,
    write_profile_json,
)
from .cost import (
    DEFAULT_EFFICIENCY,
    OPENCL,
    OPENMP,
    AcceleratedCost,
    ReferenceImplementation,
    best_api_cost,
    compute_launch_cost,
    effective_efficiency,
    launch_overhead_us,
    reference_time,
    site_cost,
    transfer_link,
)
from .machine import CPU, GPU, IGPU, MACHINES, Machine, sequential_time_seconds
from .placement import (
    HOST,
    STRATEGIES,
    ConcurrentPlan,
    PlacedSite,
    PlacementPlan,
    PlacementRequest,
    ResidencyState,
    SitePlacement,
    candidate_placements,
    evaluate_assignment,
    evaluate_concurrent,
    plan_concurrent,
    plan_module,
)

__all__ = [
    "CalibrationProfile", "Calibrator", "calibrate", "load_profile",
    "machine_identity", "read_profile_json", "registry_signature",
    "save_profile", "write_profile_json",
    "DEFAULT_EFFICIENCY", "OPENCL", "OPENMP", "AcceleratedCost",
    "ReferenceImplementation", "best_api_cost", "compute_launch_cost",
    "effective_efficiency", "launch_overhead_us", "reference_time",
    "site_cost", "transfer_link",
    "CPU", "GPU", "IGPU", "MACHINES", "Machine", "sequential_time_seconds",
    "HOST", "STRATEGIES", "ConcurrentPlan", "PlacedSite", "PlacementPlan",
    "PlacementRequest", "ResidencyState", "SitePlacement",
    "candidate_placements", "evaluate_assignment", "evaluate_concurrent",
    "plan_concurrent", "plan_module",
]
