"""Platform models: machines, roofline costs, residency-aware placement."""

from .cost import (
    OPENCL,
    OPENMP,
    AcceleratedCost,
    ReferenceImplementation,
    best_api_cost,
    compute_launch_cost,
    reference_time,
    site_cost,
)
from .machine import CPU, GPU, IGPU, MACHINES, Machine, sequential_time_seconds
from .placement import (
    HOST,
    STRATEGIES,
    PlacedSite,
    PlacementPlan,
    ResidencyState,
    SitePlacement,
    candidate_placements,
    evaluate_assignment,
    plan_module,
)

__all__ = [
    "OPENCL", "OPENMP", "AcceleratedCost", "ReferenceImplementation",
    "best_api_cost", "compute_launch_cost", "reference_time", "site_cost",
    "CPU", "GPU", "IGPU", "MACHINES", "Machine", "sequential_time_seconds",
    "HOST", "STRATEGIES", "PlacedSite", "PlacementPlan", "ResidencyState",
    "SitePlacement", "candidate_placements", "evaluate_assignment",
    "plan_module",
]
