"""Recursive-descent parser for the mini-C language."""

from __future__ import annotations

from ..errors import ParseError
from .cast import (
    AssignExpr,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CompoundStmt,
    ConditionalExpr,
    ContinueStmt,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLiteral,
    ForStmt,
    FunctionDef,
    GlobalDecl,
    IfStmt,
    IncDecExpr,
    IndexExpr,
    IntLiteral,
    NameRef,
    Param,
    ReturnStmt,
    Stmt,
    TranslationUnit,
    UnaryExpr,
    WhileStmt,
)
from .lexer import Token, tokenize

_BASE_TYPES = ("void", "char", "int", "long", "float", "double")

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, text: str) -> Token | None:
        if self.current.text == text and self.current.kind in ("op", "keyword"):
            return self.advance()
        return None

    def expect(self, text: str) -> Token:
        tok = self.accept(text)
        if tok is None:
            raise ParseError(
                f"expected {text!r}, got {self.current.text!r}",
                self.current.location)
        return tok

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise ParseError(f"expected identifier, got {self.current.text!r}",
                             self.current.location)
        return self.advance()

    # -- types -------------------------------------------------------------------
    def at_type(self) -> bool:
        tok = self.current
        if tok.kind != "keyword":
            return False
        return tok.text in _BASE_TYPES + ("const", "static", "unsigned", "signed")

    def parse_type_prefix(self) -> tuple[str, bool]:
        """Parse qualifiers + base type; returns (base, is_const)."""
        is_const = False
        base: str | None = None
        while True:
            tok = self.current
            if tok.kind != "keyword":
                break
            if tok.text in ("const", "static"):
                is_const = is_const or tok.text == "const"
                self.advance()
            elif tok.text in ("unsigned", "signed"):
                self.advance()  # signedness is ignored (all ints signed)
                if base is None:
                    base = "int"
            elif tok.text in _BASE_TYPES:
                if base is not None and not (base == "long" and tok.text == "long"):
                    raise ParseError(f"unexpected type keyword {tok.text!r}",
                                     tok.location)
                base = tok.text
                self.advance()
            else:
                break
        if base is None:
            raise ParseError(f"expected type, got {self.current.text!r}",
                             self.current.location)
        return base, is_const

    def parse_declarator(self, base: str) -> tuple[CType, str]:
        """Parse ``*``* name followed by array dims."""
        pointers = 0
        while self.accept("*"):
            pointers += 1
        name = self.expect_ident().text
        dims: list[int] = []
        while self.accept("["):
            if self.accept("]"):
                dims.append(-1)
            else:
                dims.append(self._parse_const_dim())
                self.expect("]")
        return CType(base, pointers, tuple(dims)), name

    def _parse_const_dim(self) -> int:
        """Array dimensions must fold to an integer constant."""
        expr = self.parse_expression()
        value = _fold_int(expr)
        if value is None:
            raise ParseError("array dimension must be a constant expression",
                             self.current.location)
        return value

    # -- top level ------------------------------------------------------------------
    def parse_translation_unit(self) -> TranslationUnit:
        unit = TranslationUnit()
        while self.current.kind != "eof":
            base, is_const = self.parse_type_prefix()
            ctype, name = self.parse_declarator(base)
            loc = self.current.location
            if self.current.text == "(":
                unit.functions.append(self._parse_function(ctype, name, loc))
            else:
                init = None
                if self.accept("="):
                    init = self.parse_assignment()
                self.expect(";")
                unit.globals.append(GlobalDecl(ctype, name, init, is_const, loc))
        return unit

    def _parse_function(self, ret: CType, name: str, loc) -> FunctionDef:
        self.expect("(")
        params: list[Param] = []
        if not self.accept(")"):
            if self.current.text == "void" and self.peek().text == ")":
                self.advance()
            else:
                while True:
                    base, _ = self.parse_type_prefix()
                    ptype, pname = self.parse_declarator(base)
                    params.append(Param(ptype, pname))
                    if not self.accept(","):
                        break
            self.expect(")")
        if self.accept(";"):
            return FunctionDef(ret, name, params, None, loc)
        body = self.parse_compound()
        return FunctionDef(ret, name, params, body, loc)

    # -- statements --------------------------------------------------------------
    def parse_compound(self) -> CompoundStmt:
        self.expect("{")
        body: list[Stmt] = []
        while not self.accept("}"):
            if self.current.kind == "eof":
                raise ParseError("unterminated block", self.current.location)
            body.append(self.parse_statement())
        return CompoundStmt(body)

    def parse_statement(self) -> Stmt:
        tok = self.current
        if tok.text == "{":
            return self.parse_compound()
        if tok.text == "if":
            return self._parse_if()
        if tok.text == "for":
            return self._parse_for()
        if tok.text == "while":
            return self._parse_while()
        if tok.text == "do":
            return self._parse_do_while()
        if tok.text == "return":
            self.advance()
            value = None if self.current.text == ";" else self.parse_expression()
            self.expect(";")
            return ReturnStmt(value, location=tok.location)
        if tok.text == "break":
            self.advance()
            self.expect(";")
            return BreakStmt(location=tok.location)
        if tok.text == "continue":
            self.advance()
            self.expect(";")
            return ContinueStmt(location=tok.location)
        if self.at_type():
            stmt = self._parse_decl()
            self.expect(";")
            return stmt
        if self.accept(";"):
            return CompoundStmt([])
        expr = self.parse_expression()
        self.expect(";")
        return ExprStmt(expr, location=tok.location)

    def _parse_decl(self) -> DeclStmt:
        loc = self.current.location
        base, _ = self.parse_type_prefix()
        ctype, name = self.parse_declarator(base)
        init = None
        if self.accept("="):
            init = self.parse_assignment()
        return DeclStmt(ctype, name, init, location=loc)

    def _parse_if(self) -> IfStmt:
        loc = self.expect("if").location
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self.parse_statement()
        other = self.parse_statement() if self.accept("else") else None
        return IfStmt(cond, then, other, location=loc)

    def _parse_for(self) -> ForStmt:
        loc = self.expect("for").location
        self.expect("(")
        init: Stmt | None = None
        if not self.accept(";"):
            if self.at_type():
                init = self._parse_decl()
            else:
                init = ExprStmt(self.parse_expression())
            self.expect(";")
        cond = None if self.current.text == ";" else self.parse_expression()
        self.expect(";")
        step = None if self.current.text == ")" else self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return ForStmt(init, cond, step, body, location=loc)

    def _parse_while(self) -> WhileStmt:
        loc = self.expect("while").location
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return WhileStmt(cond, body, location=loc)

    def _parse_do_while(self) -> WhileStmt:
        loc = self.expect("do").location
        body = self.parse_statement()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        self.expect(";")
        return WhileStmt(cond, body, do_while=True, location=loc)

    # -- expressions ---------------------------------------------------------------
    def parse_expression(self) -> Expr:
        expr = self.parse_assignment()
        while self.accept(","):
            expr = BinaryExpr(",", expr, self.parse_assignment())
        return expr

    def parse_assignment(self) -> Expr:
        lhs = self.parse_conditional()
        tok = self.current
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.advance()
            rhs = self.parse_assignment()
            return AssignExpr(tok.text, lhs, rhs, location=tok.location)
        return lhs

    def parse_conditional(self) -> Expr:
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_assignment()
            self.expect(":")
            other = self.parse_conditional()
            return ConditionalExpr(cond, then, other)
        return cond

    def parse_binary(self, min_prec: int) -> Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.current
            prec = _PRECEDENCE.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = BinaryExpr(tok.text, lhs, rhs, location=tok.location)

    def parse_unary(self) -> Expr:
        tok = self.current
        if tok.kind == "op" and tok.text in ("-", "+", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return UnaryExpr(tok.text, operand, location=tok.location)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.advance()
            return IncDecExpr(tok.text, self.parse_unary(), prefix=True,
                              location=tok.location)
        # Cast: '(' type ')' unary
        if tok.text == "(" and self._peek_is_type_after_paren():
            self.expect("(")
            base, _ = self.parse_type_prefix()
            pointers = 0
            while self.accept("*"):
                pointers += 1
            self.expect(")")
            return CastExpr(CType(base, pointers), self.parse_unary(),
                            location=tok.location)
        return self.parse_postfix()

    def _peek_is_type_after_paren(self) -> bool:
        nxt = self.peek()
        return nxt.kind == "keyword" and nxt.text in _BASE_TYPES + (
            "const", "unsigned", "signed")

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            tok = self.current
            if tok.text == "[":
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                expr = IndexExpr(expr, index, location=tok.location)
            elif tok.text == "(" and isinstance(expr, NameRef):
                self.advance()
                args: list[Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                    self.expect(")")
                expr = CallExpr(expr.name, args, location=tok.location)
            elif tok.kind == "op" and tok.text in ("++", "--"):
                self.advance()
                expr = IncDecExpr(tok.text, expr, prefix=False,
                                  location=tok.location)
            else:
                return expr

    def parse_primary(self) -> Expr:
        tok = self.current
        if tok.kind == "int":
            self.advance()
            text = tok.text.rstrip("uUlL")
            return IntLiteral(int(text, 0), location=tok.location)
        if tok.kind == "float":
            self.advance()
            is_single = tok.text[-1] in "fF"
            text = tok.text.rstrip("fF")
            return FloatLiteral(float(text), is_single, location=tok.location)
        if tok.kind == "ident":
            self.advance()
            return NameRef(tok.text, location=tok.location)
        if tok.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.location)


def _fold_int(expr: Expr) -> int | None:
    """Constant-fold an integer expression (for array dimensions)."""
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, UnaryExpr) and expr.op == "-":
        inner = _fold_int(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, BinaryExpr):
        lhs = _fold_int(expr.lhs)
        rhs = _fold_int(expr.rhs)
        if lhs is None or rhs is None:
            return None
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b, "/": lambda a, b: a // b,
               "%": lambda a, b: a % b, "<<": lambda a, b: a << b,
               ">>": lambda a, b: a >> b}
        fn = ops.get(expr.op)
        return fn(lhs, rhs) if fn else None
    return None


def parse_c(source: str, filename: str = "<input>") -> TranslationUnit:
    """Parse mini-C source text into a translation unit."""
    return Parser(tokenize(source, filename)).parse_translation_unit()
