"""Mini-C front end: lexer, parser and IR code generator.

The public entry point is :func:`compile_c`, which takes C source text and
returns an (unoptimised) IR module. Run :func:`repro.passes.optimize` on the
result to obtain the canonical SSA form the idiom detector matches on::

    from repro.frontend import compile_c
    from repro.passes import optimize

    module = compile_c(open("kernel.c").read())
    optimize(module)
"""

from .cast import CType, FunctionDef, GlobalDecl, TranslationUnit
from .codegen import CodeGen, resolve_type
from .lexer import Token, preprocess, strip_comments, tokenize
from .parser import Parser, parse_c


def compile_c(source: str, module_name: str = "module"):
    """Compile mini-C source text to an IR module (unoptimised)."""
    unit = parse_c(source, module_name)
    return CodeGen(module_name).generate(unit)


__all__ = [
    "CType", "FunctionDef", "GlobalDecl", "TranslationUnit",
    "CodeGen", "resolve_type",
    "Token", "preprocess", "strip_comments", "tokenize",
    "Parser", "parse_c", "compile_c",
]
