"""Abstract syntax tree for the mini-C front end.

Plain dataclasses; semantic information (types) is attached during code
generation rather than a separate sema pass — the language is small enough
that a single typed-codegen walk stays readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SourceLocation


# ---------------------------------------------------------------------------
# Type expressions (syntactic; resolved to IR types in codegen)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CType:
    """A C type: base name + pointer depth + array dimensions.

    ``dims`` entries are int sizes; a leading dim of -1 means an unsized
    array parameter (``double a[]``), which decays to a pointer.
    """

    base: str  # 'void' | 'char' | 'int' | 'long' | 'float' | 'double'
    pointers: int = 0
    dims: tuple[int, ...] = ()

    def __str__(self) -> str:
        text = self.base + "*" * self.pointers
        for d in self.dims:
            text += f"[{d if d >= 0 else ''}]"
        return text


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    location: SourceLocation | None = field(default=None, kw_only=True)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0
    is_single: bool = False  # 1.0f


@dataclass
class NameRef(Expr):
    name: str = ""


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass
class UnaryExpr(Expr):
    op: str = ""  # '-', '!', '~', '*', '&'
    operand: Expr | None = None


@dataclass
class IncDecExpr(Expr):
    op: str = "++"
    operand: Expr | None = None
    prefix: bool = True


@dataclass
class AssignExpr(Expr):
    op: str = "="  # '=', '+=', '-=', '*=', '/='
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class ConditionalExpr(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    other: Expr | None = None


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class IndexExpr(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class CastExpr(Expr):
    ctype: CType | None = None
    operand: Expr | None = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    location: SourceLocation | None = field(default=None, kw_only=True)


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class DeclStmt(Stmt):
    ctype: CType | None = None
    name: str = ""
    init: Expr | None = None


@dataclass
class CompoundStmt(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    other: Stmt | None = None


@dataclass
class ForStmt(Stmt):
    init: Stmt | None = None  # DeclStmt or ExprStmt or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None
    do_while: bool = False


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

@dataclass
class Param:
    ctype: CType
    name: str


@dataclass
class FunctionDef:
    ret: CType
    name: str
    params: list[Param]
    body: CompoundStmt | None  # None for declarations
    location: SourceLocation | None = None


@dataclass
class GlobalDecl:
    ctype: CType
    name: str
    init: Expr | None = None
    const: bool = False
    location: SourceLocation | None = None


@dataclass
class TranslationUnit:
    functions: list[FunctionDef] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
