"""Code generation: mini-C AST → LLVM-like IR.

Classic clang-style lowering: every local lives in an entry-block alloca
and is loaded/stored on access; :mod:`repro.passes.mem2reg` later promotes
them to SSA registers, which produces the phi-based loop shapes the paper's
Figure 4 shows (and that the IDL idioms match).
"""

from __future__ import annotations

import math

from ..errors import SemanticError
from ..ir import (
    F32,
    F64,
    I1,
    I8,
    I32,
    I64,
    VOID,
    ArrayType,
    BasicBlock,
    ConstantFloat,
    ConstantInt,
    FloatType,
    Function,
    FunctionType,
    GlobalVariable,
    IntType,
    IRBuilder,
    IRType,
    Module,
    PointerType,
    Value,
)
from . import cast as A

_BASE_IR_TYPES: dict[str, IRType] = {
    "void": VOID, "char": I8, "int": I32, "long": I64,
    "float": F32, "double": F64,
}

#: Math intrinsics: name -> (arity). All take/return double.
_INTRINSICS = {
    "sqrt": 1, "fabs": 1, "exp": 1, "log": 1, "sin": 1, "cos": 1, "tan": 1,
    "floor": 1, "ceil": 1, "pow": 2, "fmax": 2, "fmin": 2,
}
_INT_INTRINSICS = {"abs": 1, "max": 2, "min": 2, "rand": 0}


def resolve_type(ctype: A.CType, decay: bool = False) -> IRType:
    """Resolve a syntactic C type to an IR type.

    ``decay=True`` applies parameter decay: the outermost array dimension
    becomes a pointer (``double a[]`` → ``double*``,
    ``double a[][64]`` → ``[64 x double]*``).
    """
    base = _BASE_IR_TYPES.get(ctype.base)
    if base is None:
        raise SemanticError(f"unknown type {ctype.base!r}")
    ty: IRType = base
    for _ in range(ctype.pointers):
        ty = PointerType(ty)
    dims = list(ctype.dims)
    if decay and dims:
        dims = dims[1:]
        for d in reversed(dims):
            if d < 0:
                raise SemanticError("only the first array dimension may be empty")
            ty = ArrayType(d, ty)
        return PointerType(ty)
    for d in reversed(dims):
        if d < 0:
            raise SemanticError("unsized array outside parameter position")
        ty = ArrayType(d, ty)
    return ty


def _rank(ty: IRType) -> int:
    """Numeric conversion rank for usual arithmetic conversions."""
    if isinstance(ty, FloatType):
        return 100 + ty.bits
    if isinstance(ty, IntType):
        return ty.bits
    raise SemanticError(f"non-arithmetic type {ty} in arithmetic expression")


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.symbols: dict[str, Value] = {}

    def lookup(self, name: str) -> Value | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def define(self, name: str, value: Value) -> None:
        if name in self.symbols:
            raise SemanticError(f"redefinition of {name!r}")
        self.symbols[name] = value


class CodeGen:
    """Generates IR for one translation unit."""

    def __init__(self, module_name: str = "module"):
        self.module = Module(module_name)
        self.function: Function | None = None
        self.builder = IRBuilder()
        self.scope = _Scope()
        self.loop_stack: list[tuple[BasicBlock, BasicBlock]] = []  # (step, end)
        self._terminated = False

    # -- entry point -------------------------------------------------------------
    def generate(self, unit: A.TranslationUnit) -> Module:
        for decl in unit.globals:
            self._gen_global(decl)
        # Declare all functions first so forward calls type-check.
        signatures: dict[str, FunctionType] = {}
        for fdef in unit.functions:
            ret = resolve_type(fdef.ret)
            params = tuple(resolve_type(p.ctype, decay=True) for p in fdef.params)
            sig = FunctionType(ret, params)
            prior = signatures.get(fdef.name)
            if prior is not None and prior is not sig:
                raise SemanticError(f"conflicting signatures for {fdef.name!r}")
            signatures[fdef.name] = sig
        for fdef in unit.functions:
            if fdef.name not in self.module.functions:
                self.module.create_function(
                    fdef.name, signatures[fdef.name],
                    [p.name for p in fdef.params])
        for fdef in unit.functions:
            if fdef.body is not None:
                self._gen_function(fdef)
        return self.module

    # -- globals -------------------------------------------------------------------
    def _gen_global(self, decl: A.GlobalDecl) -> None:
        ty = resolve_type(decl.ctype)
        init = None
        if decl.init is not None:
            init = _fold_constant(decl.init)
            if init is None:
                raise SemanticError(
                    f"global initializer for {decl.name!r} must be constant")
        gv = GlobalVariable(decl.name, ty, init, decl.const)
        self.module.add_global(gv)
        self.scope.define(decl.name, gv)

    # -- functions -----------------------------------------------------------------
    def _gen_function(self, fdef: A.FunctionDef) -> None:
        function = self.module.get_function(fdef.name)
        if function.blocks:
            raise SemanticError(f"redefinition of function {fdef.name!r}")
        self.function = function
        entry = function.append_block("entry")
        self.builder.position_at_end(entry)
        self._terminated = False
        self.scope = _Scope(self.scope)
        try:
            for arg in function.args:
                slot = self.builder.alloca(arg.type, name=f"{arg.name}.addr")
                self.builder.store(arg, slot)
                self.scope.define(arg.name, slot)
            self._gen_stmt(fdef.body)
            if not self._terminated:
                if function.return_type.is_void():
                    self.builder.ret()
                elif function.return_type.is_float():
                    self.builder.ret(ConstantFloat(function.return_type, 0.0))
                elif function.return_type.is_integer():
                    self.builder.ret(ConstantInt(function.return_type, 0))
                else:
                    self.builder.unreachable()
        finally:
            self.scope = self.scope.parent
            self.function = None

    # -- statements -----------------------------------------------------------------
    def _start_block(self, block: BasicBlock) -> None:
        self.builder.position_at_end(block)
        self._terminated = False

    def _branch_to(self, block: BasicBlock) -> None:
        if not self._terminated:
            self.builder.br(block)
        self._start_block(block)

    def _gen_stmt(self, stmt: A.Stmt) -> None:
        if self._terminated:
            # Unreachable code: emit into a dead block so IR stays well formed.
            dead = self.function.append_block("dead")
            self._start_block(dead)
        method = getattr(self, f"_gen_{type(stmt).__name__}", None)
        if method is None:
            raise SemanticError(f"cannot generate {type(stmt).__name__}")
        method(stmt)

    def _gen_CompoundStmt(self, stmt: A.CompoundStmt) -> None:
        self.scope = _Scope(self.scope)
        try:
            for child in stmt.body:
                self._gen_stmt(child)
        finally:
            self.scope = self.scope.parent

    def _gen_ExprStmt(self, stmt: A.ExprStmt) -> None:
        self._rvalue(stmt.expr)

    def _gen_DeclStmt(self, stmt: A.DeclStmt) -> None:
        ty = resolve_type(stmt.ctype)
        slot = self._entry_alloca(ty, stmt.name)
        self.scope.define(stmt.name, slot)
        if stmt.init is not None:
            value = self._rvalue(stmt.init)
            self.builder.store(self._coerce(value, ty), slot)

    def _entry_alloca(self, ty: IRType, name: str) -> Value:
        """Allocas go at the top of the entry block (clang style)."""
        entry = self.function.entry
        saved_block, saved_before = self.builder.block, self.builder.before
        insert_at = 0
        for i, inst in enumerate(entry.instructions):
            if inst.opcode == "alloca":
                insert_at = i + 1
            else:
                break
        if insert_at < len(entry.instructions):
            self.builder.position_before(entry.instructions[insert_at])
        else:
            self.builder.position_at_end(entry)
        slot = self.builder.alloca(ty, name=name)
        self.builder.block, self.builder.before = saved_block, saved_before
        return slot

    def _gen_ReturnStmt(self, stmt: A.ReturnStmt) -> None:
        function = self.function
        if stmt.value is None:
            if not function.return_type.is_void():
                raise SemanticError("return without value in non-void function")
            self.builder.ret()
        else:
            value = self._rvalue(stmt.value)
            self.builder.ret(self._coerce(value, function.return_type))
        self._terminated = True

    def _gen_IfStmt(self, stmt: A.IfStmt) -> None:
        cond = self._condition(stmt.cond)
        then_block = self.function.append_block("if.then")
        end_block = self.function.append_block("if.end")
        else_block = (self.function.append_block("if.else")
                      if stmt.other is not None else end_block)
        self.builder.cond_br(cond, then_block, else_block)
        self._start_block(then_block)
        self._gen_stmt(stmt.then)
        then_terminated = self._terminated
        if not then_terminated:
            self.builder.br(end_block)
        else_terminated = False
        if stmt.other is not None:
            self._start_block(else_block)
            self._gen_stmt(stmt.other)
            else_terminated = self._terminated
            if not else_terminated:
                self.builder.br(end_block)
        self._start_block(end_block)
        self._terminated = then_terminated and else_terminated and \
            stmt.other is not None
        if self._terminated:
            # Both arms returned: end block is dead, terminate it.
            self.builder.unreachable()

    def _gen_ForStmt(self, stmt: A.ForStmt) -> None:
        self.scope = _Scope(self.scope)
        try:
            if stmt.init is not None:
                self._gen_stmt(stmt.init)
            cond_block = self.function.append_block("for.cond")
            body_block = self.function.append_block("for.body")
            step_block = self.function.append_block("for.step")
            end_block = self.function.append_block("for.end")
            self._branch_to(cond_block)
            if stmt.cond is not None:
                cond = self._condition(stmt.cond)
                self.builder.cond_br(cond, body_block, end_block)
            else:
                self.builder.br(body_block)
            self._start_block(body_block)
            self.loop_stack.append((step_block, end_block))
            self._gen_stmt(stmt.body)
            self.loop_stack.pop()
            if not self._terminated:
                self.builder.br(step_block)
            self._start_block(step_block)
            if stmt.step is not None:
                self._rvalue(stmt.step)
            self.builder.br(cond_block)
            self._start_block(end_block)
        finally:
            self.scope = self.scope.parent

    def _gen_WhileStmt(self, stmt: A.WhileStmt) -> None:
        cond_block = self.function.append_block("while.cond")
        body_block = self.function.append_block("while.body")
        end_block = self.function.append_block("while.end")
        if stmt.do_while:
            self._branch_to(body_block)
        else:
            self._branch_to(cond_block)
        if not stmt.do_while:
            cond = self._condition(stmt.cond)
            self.builder.cond_br(cond, body_block, end_block)
            self._start_block(body_block)
        self.loop_stack.append((cond_block, end_block))
        self._gen_stmt(stmt.body)
        self.loop_stack.pop()
        if not self._terminated:
            self.builder.br(cond_block)
        if stmt.do_while:
            self._start_block(cond_block)
            cond = self._condition(stmt.cond)
            self.builder.cond_br(cond, body_block, end_block)
        self._start_block(end_block)

    def _gen_BreakStmt(self, stmt: A.BreakStmt) -> None:
        if not self.loop_stack:
            raise SemanticError("break outside loop")
        self.builder.br(self.loop_stack[-1][1])
        self._terminated = True

    def _gen_ContinueStmt(self, stmt: A.ContinueStmt) -> None:
        if not self.loop_stack:
            raise SemanticError("continue outside loop")
        self.builder.br(self.loop_stack[-1][0])
        self._terminated = True

    # -- expressions: lvalues ----------------------------------------------------
    def _lvalue(self, expr: A.Expr) -> Value:
        if isinstance(expr, A.NameRef):
            slot = self.scope.lookup(expr.name)
            if slot is None:
                raise SemanticError(f"use of undeclared name {expr.name!r}")
            return slot
        if isinstance(expr, A.UnaryExpr) and expr.op == "*":
            return self._rvalue(expr.operand)
        if isinstance(expr, A.IndexExpr):
            return self._index_address(expr)
        raise SemanticError(f"expression is not an lvalue: {type(expr).__name__}")

    def _index_address(self, expr: A.IndexExpr) -> Value:
        base = self._rvalue_decayed(expr.base)
        if not isinstance(base.type, PointerType):
            raise SemanticError("indexed expression is not a pointer or array")
        index = self._rvalue(expr.index)
        if not index.type.is_integer():
            raise SemanticError("array index must be an integer")
        if isinstance(base.type.pointee, ArrayType):
            zero = ConstantInt(I64, 0)
            return self.builder.gep(base, [zero, index])
        return self.builder.gep(base, [index])

    def _rvalue_decayed(self, expr: A.Expr) -> Value:
        """Evaluate; arrays decay to a pointer to their first element."""
        if isinstance(expr, (A.NameRef, A.IndexExpr)):
            addr = self._lvalue(expr)
            if isinstance(addr.type, PointerType) and \
                    isinstance(addr.type.pointee, ArrayType):
                return addr  # pointer-to-array: indexable via [0, i] gep
            return self.builder.load(addr)
        return self._rvalue(expr)

    # -- expressions: rvalues ------------------------------------------------------
    def _rvalue(self, expr: A.Expr) -> Value:
        method = getattr(self, f"_rv_{type(expr).__name__}", None)
        if method is None:
            raise SemanticError(f"cannot evaluate {type(expr).__name__}")
        return method(expr)

    def _rv_IntLiteral(self, expr: A.IntLiteral) -> Value:
        ty = I32 if -(2**31) <= expr.value < 2**31 else I64
        return ConstantInt(ty, expr.value)

    def _rv_FloatLiteral(self, expr: A.FloatLiteral) -> Value:
        return ConstantFloat(F32 if expr.is_single else F64, expr.value)

    def _rv_NameRef(self, expr: A.NameRef) -> Value:
        addr = self._lvalue(expr)
        if isinstance(addr.type, PointerType) and \
                isinstance(addr.type.pointee, ArrayType):
            zero = ConstantInt(I64, 0)
            return self.builder.gep(addr, [zero, zero])
        return self.builder.load(addr, name=expr.name)

    def _rv_IndexExpr(self, expr: A.IndexExpr) -> Value:
        addr = self._index_address(expr)
        if isinstance(addr.type.pointee, ArrayType):
            zero = ConstantInt(I64, 0)
            return self.builder.gep(addr, [zero, zero])
        return self.builder.load(addr)

    def _rv_UnaryExpr(self, expr: A.UnaryExpr) -> Value:
        if expr.op == "&":
            return self._lvalue(expr.operand)
        if expr.op == "*":
            pointer = self._rvalue(expr.operand)
            if not isinstance(pointer.type, PointerType):
                raise SemanticError("cannot dereference non-pointer")
            return self.builder.load(pointer)
        if expr.op == "-":
            value = self._rvalue(expr.operand)
            if value.type.is_float():
                return self.builder.fsub(ConstantFloat(value.type, 0.0), value)
            return self.builder.sub(ConstantInt(value.type, 0), value)
        if expr.op == "!":
            cond = self._condition(expr.operand)
            as_int = self.builder.zext(cond, I32)
            return self.builder.icmp("eq", as_int, ConstantInt(I32, 0))
        if expr.op == "~":
            value = self._rvalue(expr.operand)
            return self.builder.binop("xor", value,
                                      ConstantInt(value.type, -1))
        raise SemanticError(f"unsupported unary operator {expr.op!r}")

    def _rv_IncDecExpr(self, expr: A.IncDecExpr) -> Value:
        addr = self._lvalue(expr.operand)
        old = self.builder.load(addr)
        one: Value
        if old.type.is_float():
            one = ConstantFloat(old.type, 1.0)
            op = "fadd" if expr.op == "++" else "fsub"
        else:
            one = ConstantInt(old.type, 1)
            op = "add" if expr.op == "++" else "sub"
        new = self.builder.binop(op, old, one)
        self.builder.store(new, addr)
        return new if expr.prefix else old

    def _rv_AssignExpr(self, expr: A.AssignExpr) -> Value:
        addr = self._lvalue(expr.target)
        if not isinstance(addr.type, PointerType):
            raise SemanticError("assignment target is not addressable")
        target_ty = addr.type.pointee
        if expr.op == "=":
            value = self._coerce(self._rvalue(expr.value), target_ty)
            self.builder.store(value, addr)
            return value
        old = self.builder.load(addr)
        rhs = self._rvalue(expr.value)
        base_op = expr.op[:-1]
        result = self._arith(base_op, old, rhs)
        result = self._coerce(result, target_ty)
        self.builder.store(result, addr)
        return result

    def _rv_BinaryExpr(self, expr: A.BinaryExpr) -> Value:
        if expr.op == ",":
            self._rvalue(expr.lhs)
            return self._rvalue(expr.rhs)
        if expr.op in ("&&", "||"):
            return self._short_circuit(expr)
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._comparison(expr)
        lhs = self._rvalue(expr.lhs)
        rhs = self._rvalue(expr.rhs)
        return self._arith(expr.op, lhs, rhs)

    def _arith(self, op: str, lhs: Value, rhs: Value) -> Value:
        # Pointer arithmetic.
        if isinstance(lhs.type, PointerType) and rhs.type.is_integer():
            if op == "+":
                return self.builder.gep(lhs, [rhs])
            if op == "-":
                neg = self.builder.sub(ConstantInt(rhs.type, 0), rhs)
                return self.builder.gep(lhs, [neg])
            raise SemanticError(f"invalid pointer operation {op!r}")
        if isinstance(rhs.type, PointerType) and lhs.type.is_integer() and op == "+":
            return self.builder.gep(rhs, [lhs])
        lhs, rhs = self._usual_conversions(lhs, rhs)
        is_float = lhs.type.is_float()
        table = {
            "+": "fadd" if is_float else "add",
            "-": "fsub" if is_float else "sub",
            "*": "fmul" if is_float else "mul",
            "/": "fdiv" if is_float else "sdiv",
            "%": "srem",
            "<<": "shl", ">>": "ashr",
            "&": "and", "|": "or", "^": "xor",
        }
        opcode = table.get(op)
        if opcode is None:
            raise SemanticError(f"unsupported binary operator {op!r}")
        if is_float and op in ("%", "<<", ">>", "&", "|", "^"):
            raise SemanticError(f"operator {op!r} requires integer operands")
        return self.builder.binop(opcode, lhs, rhs)

    def _comparison(self, expr: A.BinaryExpr) -> Value:
        lhs = self._rvalue(expr.lhs)
        rhs = self._rvalue(expr.rhs)
        if isinstance(lhs.type, PointerType) or isinstance(rhs.type, PointerType):
            raise SemanticError("pointer comparison is not supported")
        lhs, rhs = self._usual_conversions(lhs, rhs)
        if lhs.type.is_float():
            pred = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole",
                    ">": "ogt", ">=": "oge"}[expr.op]
            return self.builder.fcmp(pred, lhs, rhs)
        pred = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                ">": "sgt", ">=": "sge"}[expr.op]
        return self.builder.icmp(pred, lhs, rhs)

    def _short_circuit(self, expr: A.BinaryExpr) -> Value:
        lhs_cond = self._condition(expr.lhs)
        lhs_block = self.builder.block
        rhs_block = self.function.append_block("sc.rhs")
        end_block = self.function.append_block("sc.end")
        if expr.op == "&&":
            self.builder.cond_br(lhs_cond, rhs_block, end_block)
        else:
            self.builder.cond_br(lhs_cond, end_block, rhs_block)
        self._start_block(rhs_block)
        rhs_cond = self._condition(expr.rhs)
        rhs_exit = self.builder.block
        self.builder.br(end_block)
        self._start_block(end_block)
        phi = self.builder.phi(I1, name="sc")
        from ..ir import const_bool

        phi.add_incoming(const_bool(expr.op == "||"), lhs_block)
        phi.add_incoming(rhs_cond, rhs_exit)
        return phi

    def _rv_ConditionalExpr(self, expr: A.ConditionalExpr) -> Value:
        if _is_pure(expr.then) and _is_pure(expr.other):
            cond = self._condition(expr.cond)
            tval = self._rvalue(expr.then)
            fval = self._rvalue(expr.other)
            tval, fval = self._usual_conversions(tval, fval)
            return self.builder.select(cond, tval, fval)
        cond = self._condition(expr.cond)
        then_block = self.function.append_block("cond.then")
        else_block = self.function.append_block("cond.else")
        end_block = self.function.append_block("cond.end")
        self.builder.cond_br(cond, then_block, else_block)
        self._start_block(then_block)
        tval = self._rvalue(expr.then)
        then_exit = self.builder.block
        self._start_block(else_block)
        fval = self._rvalue(expr.other)
        else_exit = self.builder.block
        # Unify types before the phi (conversions go in the arms).
        target = tval.type
        if _rank(fval.type) > _rank(tval.type):
            target = fval.type
        self.builder.position_at_end(then_exit)
        tval = self._coerce(tval, target)
        self.builder.br(end_block)
        self.builder.position_at_end(else_exit)
        fval = self._coerce(fval, target)
        self.builder.br(end_block)
        self._start_block(end_block)
        phi = self.builder.phi(target, name="cond")
        phi.add_incoming(tval, then_exit)
        phi.add_incoming(fval, else_exit)
        return phi

    def _rv_CastExpr(self, expr: A.CastExpr) -> Value:
        value = self._rvalue(expr.operand)
        return self._coerce(value, resolve_type(expr.ctype))

    def _rv_CallExpr(self, expr: A.CallExpr) -> Value:
        name = expr.callee
        if name in _INTRINSICS:
            arity = _INTRINSICS[name]
            if len(expr.args) != arity:
                raise SemanticError(f"{name} expects {arity} argument(s)")
            args = [self._coerce(self._rvalue(a), F64) for a in expr.args]
            return self.builder.call(name, args, F64)
        if name in _INT_INTRINSICS:
            arity = _INT_INTRINSICS[name]
            if len(expr.args) != arity:
                raise SemanticError(f"{name} expects {arity} argument(s)")
            args = [self._coerce(self._rvalue(a), I32) for a in expr.args]
            return self.builder.call(name, args, I32)
        callee = self.module.functions.get(name)
        if callee is None:
            raise SemanticError(f"call to undeclared function {name!r}")
        params = callee.type.params
        if len(expr.args) != len(params):
            raise SemanticError(
                f"{name} expects {len(params)} argument(s), got {len(expr.args)}")
        args = []
        for arg_expr, pty in zip(expr.args, params):
            value = self._rvalue_decayed(arg_expr)
            if isinstance(value.type, PointerType) and \
                    isinstance(value.type.pointee, ArrayType) and \
                    isinstance(pty, PointerType) and \
                    not isinstance(pty.pointee, ArrayType):
                zero = ConstantInt(I64, 0)
                value = self.builder.gep(value, [zero, zero])
            args.append(self._coerce(value, pty))
        return self.builder.call(name, args, callee.return_type)

    # -- helpers --------------------------------------------------------------------
    def _condition(self, expr: A.Expr) -> Value:
        """Evaluate as an i1 truth value."""
        value = self._rvalue(expr)
        if value.type is I1:
            return value
        if value.type.is_integer():
            return self.builder.icmp("ne", value,
                                     ConstantInt(value.type, 0))
        if value.type.is_float():
            return self.builder.fcmp("une", value,
                                     ConstantFloat(value.type, 0.0))
        raise SemanticError(f"cannot convert {value.type} to boolean")

    def _usual_conversions(self, lhs: Value, rhs: Value) -> tuple[Value, Value]:
        if lhs.type is rhs.type:
            return lhs, rhs
        if _rank(lhs.type) < _rank(rhs.type):
            return self._coerce(lhs, rhs.type), rhs
        return lhs, self._coerce(rhs, lhs.type)

    def _coerce(self, value: Value, ty: IRType) -> Value:
        if value.type is ty:
            return value
        # Fold constant conversions immediately (clang does too).
        if isinstance(value, ConstantInt):
            if isinstance(ty, IntType):
                return ConstantInt(ty, value.value)
            if isinstance(ty, FloatType):
                return ConstantFloat(ty, float(value.value))
        if isinstance(value, ConstantFloat):
            if isinstance(ty, FloatType):
                return ConstantFloat(ty, value.value)
            if isinstance(ty, IntType):
                return ConstantInt(ty, int(value.value))
        return self.builder.coerce(value, ty)


def _is_pure(expr: A.Expr) -> bool:
    """Side-effect-free expressions may be evaluated eagerly for select."""
    if isinstance(expr, (A.IntLiteral, A.FloatLiteral, A.NameRef)):
        return True
    if isinstance(expr, A.UnaryExpr):
        return expr.op in ("-", "!", "~", "*") and _is_pure(expr.operand)
    if isinstance(expr, A.BinaryExpr):
        return expr.op not in ("&&", "||", ",") and \
            _is_pure(expr.lhs) and _is_pure(expr.rhs)
    if isinstance(expr, A.IndexExpr):
        return _is_pure(expr.base) and _is_pure(expr.index)
    if isinstance(expr, A.CastExpr):
        return _is_pure(expr.operand)
    return False


def _fold_constant(expr: A.Expr):
    """Fold a global initializer to a python scalar."""
    if isinstance(expr, A.IntLiteral):
        return expr.value
    if isinstance(expr, A.FloatLiteral):
        return expr.value
    if isinstance(expr, A.UnaryExpr) and expr.op == "-":
        inner = _fold_constant(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, A.BinaryExpr):
        lhs = _fold_constant(expr.lhs)
        rhs = _fold_constant(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            return {
                "+": lambda: lhs + rhs, "-": lambda: lhs - rhs,
                "*": lambda: lhs * rhs,
                "/": lambda: lhs / rhs if isinstance(lhs, float) or
                isinstance(rhs, float) else lhs // rhs,
            }[expr.op]()
        except (KeyError, ZeroDivisionError):
            return None
    return None
