"""Lexer for the mini-C language the workloads are written in.

Supports the C subset that the NAS/Parboil kernel recreations need:
numeric literals, identifiers/keywords, all arithmetic/logic/assignment
operators, comments and a tiny preprocessor (``#define NAME <number>``
object-like macros only; ``#include`` lines are ignored).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import LexError, SourceLocation

KEYWORDS = frozenset({
    "void", "char", "int", "long", "float", "double", "unsigned", "signed",
    "const", "static", "struct", "if", "else", "for", "while", "do",
    "return", "break", "continue", "sizeof",
})

# Longest-match-first operator table.
OPERATORS = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
)

_FLOAT_RE = re.compile(
    r"(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fF]?")
_INT_RE = re.compile(r"(?:0[xX][0-9a-fA-F]+|\d+)[uUlL]*")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'keyword', 'int', 'float', 'op', 'eof'
    text: str
    location: SourceLocation

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def strip_comments(source: str) -> str:
    """Remove // and /* */ comments, preserving line structure."""
    out: list[str] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment")
            out.append("\n" * source.count("\n", i, end + 2))
            i = end + 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def preprocess(source: str) -> str:
    """Apply the tiny preprocessor: object-like numeric #defines.

    ``#include`` lines are dropped. Macro bodies may reference earlier
    macros. Non-numeric or function-like macros are rejected.
    """
    source = strip_comments(source)
    macros: dict[str, str] = {}
    lines_out: list[str] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("#include"):
            lines_out.append("")
            continue
        if stripped.startswith("#define"):
            body = stripped[len("#define"):].strip()
            match = re.match(r"([A-Za-z_]\w*)(\(.*?\))?\s*(.*)$", body)
            if not match:
                raise LexError("malformed #define",
                               SourceLocation(lineno, 1))
            if match.group(2):
                raise LexError("function-like macros are not supported",
                               SourceLocation(lineno, 1))
            name, value = match.group(1), match.group(3).strip()
            value = _expand_macros(value, macros)
            macros[name] = value
            lines_out.append("")
            continue
        if stripped.startswith("#"):
            raise LexError(f"unsupported preprocessor directive: {stripped}",
                           SourceLocation(lineno, 1))
        lines_out.append(_expand_macros(line, macros))
    return "\n".join(lines_out)


def _expand_macros(text: str, macros: dict[str, str]) -> str:
    if not macros:
        return text

    def replace(match: re.Match) -> str:
        word = match.group(0)
        expansion = macros.get(word)
        return f"({expansion})" if expansion is not None else word

    # Iterate to support macros referencing macros (bounded to avoid cycles).
    for _ in range(8):
        new = _IDENT_RE.sub(replace, text)
        if new == text:
            return new
        text = new
    return text


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Tokenize preprocessed mini-C source."""
    source = preprocess(source)
    tokens: list[Token] = []
    line = 1
    line_start = 0
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        loc = SourceLocation(line, i - line_start + 1, filename)
        fmatch = _FLOAT_RE.match(source, i)
        if fmatch:
            tokens.append(Token("float", fmatch.group(0), loc))
            i = fmatch.end()
            continue
        imatch = _INT_RE.match(source, i)
        if imatch:
            tokens.append(Token("int", imatch.group(0), loc))
            i = imatch.end()
            continue
        idmatch = _IDENT_RE.match(source, i)
        if idmatch:
            text = idmatch.group(0)
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, loc))
            i = idmatch.end()
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, loc))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", loc)
    tokens.append(Token("eof", "", SourceLocation(line, 1, filename)))
    return tokens
